#ifndef SECO_REPAIR_REPAIR_H_
#define SECO_REPAIR_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "optimizer/optimizer.h"
#include "service/registry.h"

namespace seco {

/// What an executor does when a service is declared permanently lost
/// mid-query (see docs/RELIABILITY.md, "Failover & plan repair").
enum class RepairPolicy {
  /// PR-3 behaviour: the reliability policy alone decides (degrade or abort).
  kOff,
  /// Force degradation on: permanent losses yield partial answers, never a
  /// replan. Equivalent to `ReliabilityPolicy::degrade = true`.
  kDegrade,
  /// Replan lost services onto registry replicas; fail the query if any lost
  /// service has no feasible replica or the repaired run is still incomplete.
  kFailover,
  /// Replan what can be replanned, degrade the rest to partial answers.
  kFailoverThenDegrade,
};

const char* RepairPolicyToString(RepairPolicy policy);
Result<RepairPolicy> ParseRepairPolicy(const std::string& text);

/// One line of the repair log: a lost interface and what became of it.
struct RepairEvent {
  std::string lost;         ///< Interface declared permanently lost.
  std::string replacement;  ///< Replica it was replanned onto; empty if none.
  std::string reason;       ///< "failover", or why no replacement was found.
};

/// Repair telemetry for one execution, reported next to `ReliabilityStats`.
struct RepairStats {
  int events = 0;    ///< Lost services that triggered repair consideration.
  int replans = 0;   ///< Successful re-optimizations grafted into the run.
  /// Wall-clock milliseconds spent inside the repair planner. Never added to
  /// `latency_ms` or the simulated clock — replanning is optimizer work, not
  /// service time.
  double replan_ms = 0.0;
  /// Cache hits of the final (post-repair) round: prefix chunks materialized
  /// by abandoned rounds and replayed for free. 0 when no repair happened.
  int64_t salvaged_calls = 0;
  /// Simulated ms of abandoned partial rounds (diagnostic; the surviving
  /// round's clock is what the result reports).
  double abandoned_ms = 0.0;
  std::vector<RepairEvent> log;

  bool any() const { return events != 0 || replans != 0 || !log.empty(); }
};

/// Executor-facing configuration of the repair layer.
struct RepairOptions {
  RepairPolicy policy = RepairPolicy::kOff;
  /// Required for the failover policies: where replicas are looked up
  /// (`ServiceRegistry::AlternativesFor`). Must outlive the execution.
  const ServiceRegistry* registry = nullptr;
  /// Options for re-optimization. Use the same options as the original
  /// optimization so an accepted repair equals planning against the replica
  /// from the start.
  OptimizerOptions optimizer;
  /// Upper bound on replanning rounds (distinct services can die in
  /// successive rounds); the loop also terminates naturally because a lost
  /// interface is never retried.
  int max_rounds = 3;

  bool active() const { return policy != RepairPolicy::kOff; }
  bool failover() const {
    return policy == RepairPolicy::kFailover ||
           policy == RepairPolicy::kFailoverThenDegrade;
  }
};

}  // namespace seco

#endif  // SECO_REPAIR_REPAIR_H_
