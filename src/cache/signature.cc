#include "cache/signature.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <tuple>

#include "service/access_pattern.h"
#include "service/schema.h"
#include "service/service_interface.h"

namespace seco {
namespace {

// Domain-separation salts so signatures from different spaces (queries,
// plans, bindings) can never collide structurally.
constexpr uint64_t kSaltAnswerQuery = 0xA11C0DE0A117ULL;
constexpr uint64_t kSaltContentQuery = 0xC057C0DE0C11ULL;
constexpr uint64_t kSaltPlan = 0x91A7C0DE0D1AULL;
constexpr uint64_t kSaltBindings = 0xB17D17650B17ULL;
constexpr uint64_t kSaltInterface = 0x1F5C0DE0F1F5ULL;

uint64_t Fnv64(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void AddPath(SignatureBuilder& b, const AttrPath& path) {
  b.AddInt(path.attr_index);
  b.AddInt(path.sub_index);
}

/// Full content signature of a service interface: name, behavioural
/// statistics, schema shape, and adornments. Two interfaces hash equal only
/// when the optimizer and engine would treat them identically, so memo
/// entries survive exactly as long as they are semantically valid.
Signature InterfaceSignature(const ServiceInterface& iface) {
  SignatureBuilder b(kSaltInterface);
  b.AddString(iface.name());
  b.AddInt(static_cast<int64_t>(iface.kind()));

  const ServiceStats& stats = iface.stats();
  b.AddDouble(stats.avg_tuples_per_call);
  b.AddInt(stats.chunk_size);
  b.AddBool(stats.chunked);
  b.AddDouble(stats.avg_matches_per_binding);
  b.AddDouble(stats.latency_ms);
  b.AddDouble(stats.cost_per_call);
  b.AddInt(static_cast<int64_t>(stats.decay));
  b.AddInt(stats.step_h);
  b.AddDouble(stats.step_high);
  b.AddDouble(stats.step_low);

  const ServiceSchema& schema = iface.schema();
  b.AddInt(schema.num_attributes());
  for (const AttributeDef& attr : schema.attributes()) {
    b.AddString(attr.name);
    b.AddInt(static_cast<int64_t>(attr.type));
    b.AddBool(attr.is_repeating_group);
    for (const SubAttributeDef& sub : attr.sub_attributes) {
      b.AddString(sub.name);
      b.AddInt(static_cast<int64_t>(sub.type));
    }
  }

  const AccessPattern& pattern = iface.pattern();
  for (const AttrPath& p : pattern.input_paths()) AddPath(b, p);
  b.Add(0x1A);  // section separator
  for (const AttrPath& p : pattern.output_paths()) AddPath(b, p);
  b.Add(0x1B);
  for (const AttrPath& p : pattern.ranked_paths()) AddPath(b, p);
  return b.Finish();
}

Signature AtomContentSignature(const BoundAtom& atom, bool include_alias) {
  SignatureBuilder b;
  if (include_alias) b.AddString(atom.alias);
  if (atom.iface) {
    b.AddBool(true);
    b.AddSignature(InterfaceSignature(*atom.iface));
  } else {
    // Mart-level atom: identity is the candidate set Phase 1 chooses among.
    b.AddBool(false);
    b.AddString(atom.service_name);
    b.AddString(atom.mart_name);
    b.AddInt(static_cast<int64_t>(atom.candidates.size()));
    for (const auto& cand : atom.candidates) {
      b.AddSignature(InterfaceSignature(*cand));
    }
  }
  return b.Finish();
}

void AddSelection(SignatureBuilder& b, const BoundSelection& sel) {
  b.AddInt(sel.atom);
  AddPath(b, sel.path);
  b.AddInt(static_cast<int64_t>(sel.op));
  if (sel.input_var.empty()) {
    b.AddBool(false);
    b.AddValue(sel.constant);
  } else {
    b.AddBool(true);
    b.AddString(sel.input_var);
  }
  b.AddDouble(sel.selectivity);
}

/// `a op b` is equivalent to `b Mirror(op) a` for every comparator except
/// kLike (patterns are not symmetric).
Comparator Mirror(Comparator op) {
  switch (op) {
    case Comparator::kLt:
      return Comparator::kGt;
    case Comparator::kLe:
      return Comparator::kGe;
    case Comparator::kGt:
      return Comparator::kLt;
    case Comparator::kGe:
      return Comparator::kLe;
    default:
      return op;
  }
}

/// Canonical orientation of a join clause: smaller (atom, path) side first,
/// comparator mirrored when the sides swap. `LIKE` keeps its written
/// orientation (it is genuinely asymmetric).
JoinClause Orient(JoinClause c) {
  if (c.op == Comparator::kLike) return c;
  auto key = [](int atom, const AttrPath& p) {
    return std::tuple(atom, p.attr_index, p.sub_index);
  };
  if (key(c.to_atom, c.to_path) < key(c.from_atom, c.from_path)) {
    std::swap(c.from_atom, c.to_atom);
    std::swap(c.from_path, c.to_path);
    c.op = Mirror(c.op);
  }
  return c;
}

Signature ClauseSignature(const JoinClause& clause) {
  SignatureBuilder b;
  b.AddInt(clause.from_atom);
  AddPath(b, clause.from_path);
  b.AddInt(static_cast<int64_t>(clause.op));
  b.AddInt(clause.to_atom);
  AddPath(b, clause.to_path);
  return b.Finish();
}

/// Canonical group signature: clauses oriented and combined commutatively;
/// the connection-pattern *name* is excluded (only semantics matter), the
/// combined selectivity is included (it drives plan choice).
Signature GroupSignature(const BoundJoinGroup& group) {
  CommutativeAccumulator clauses;
  for (const JoinClause& clause : group.clauses) {
    clauses.Add(ClauseSignature(Orient(clause)));
  }
  SignatureBuilder b;
  b.AddSignature(clauses.Finish());
  b.AddDouble(group.selectivity);
  return b.Finish();
}

void AddClauseOrdered(SignatureBuilder& b, const JoinClause& clause) {
  b.AddInt(clause.from_atom);
  AddPath(b, clause.from_path);
  b.AddInt(static_cast<int64_t>(clause.op));
  b.AddInt(clause.to_atom);
  AddPath(b, clause.to_path);
}

}  // namespace

void SignatureBuilder::AddDouble(double v) {
  Add(std::bit_cast<uint64_t>(v));
}

void SignatureBuilder::AddString(const std::string& s) {
  Add(Fnv64(s.data(), s.size()));
  Add(s.size());
}

void SignatureBuilder::AddValue(const Value& v) {
  Add(static_cast<uint64_t>(v.type()));
  Add(v.Hash());
}

Signature QueryAnswerSignature(const BoundQuery& query) {
  SignatureBuilder b(kSaltAnswerQuery);

  b.AddInt(static_cast<int64_t>(query.atoms.size()));
  for (const BoundAtom& atom : query.atoms) {
    b.AddSignature(AtomContentSignature(atom, /*include_alias=*/false));
  }

  // Selection order is execution-relevant (selectivity products and input
  // assembly walk the vector in order), so it stays ordered.
  b.AddInt(static_cast<int64_t>(query.selections.size()));
  for (const BoundSelection& sel : query.selections) AddSelection(b, sel);

  // Join groups commute: clauses are conjunctive and the canonical clause
  // orientation above makes `A.x < B.y` and `B.y > A.x` hash equal.
  CommutativeAccumulator joins;
  for (const BoundJoinGroup& group : query.joins) joins.Add(GroupSignature(group));
  b.AddSignature(joins.Finish());

  for (double w : query.explicit_weights) b.AddDouble(w);
  b.AddInt(static_cast<int64_t>(query.explicit_weights.size()));
  return b.Finish();
}

Signature QueryContentSignature(const BoundQuery& query, bool include_aliases) {
  SignatureBuilder b(kSaltContentQuery);

  b.AddInt(static_cast<int64_t>(query.atoms.size()));
  for (const BoundAtom& atom : query.atoms) {
    b.AddSignature(AtomContentSignature(atom, include_aliases));
  }

  b.AddInt(static_cast<int64_t>(query.selections.size()));
  for (const BoundSelection& sel : query.selections) AddSelection(b, sel);

  // Declaration order preserved everywhere: equal signatures must imply the
  // cost pipeline touches identical doubles in an identical order.
  b.AddInt(static_cast<int64_t>(query.joins.size()));
  for (const BoundJoinGroup& group : query.joins) {
    b.AddInt(static_cast<int64_t>(group.clauses.size()));
    for (const JoinClause& clause : group.clauses) AddClauseOrdered(b, clause);
    b.AddDouble(group.selectivity);
  }

  for (const std::string& var : query.input_vars) b.AddString(var);
  for (double w : query.explicit_weights) b.AddDouble(w);
  b.AddInt(static_cast<int64_t>(query.explicit_weights.size()));
  return b.Finish();
}

uint64_t ExactContentTag(const BoundQuery& query) {
  Signature s = QueryContentSignature(query, /*include_aliases=*/true);
  return Mix64(s.lo) ^ s.hi;
}

Signature PlanSignature(const QueryPlan& plan) {
  SignatureBuilder b(kSaltPlan);
  b.AddInt(plan.num_nodes());
  for (const PlanNode& node : plan.nodes()) {
    b.AddInt(node.id);
    b.AddInt(static_cast<int64_t>(node.kind));
    b.AddInt(node.atom);
    if (node.iface) b.AddString(node.iface->name());
    b.AddInt(node.fetch_factor);
    b.AddInt(node.keep_per_input);
    for (int g : node.pipe_groups) b.AddInt(g);
    b.Add(0x2A);
    for (int s : node.input_selections) b.AddInt(s);
    b.Add(0x2B);
    for (int g : node.join_groups) b.AddInt(g);
    b.AddInt(static_cast<int64_t>(node.strategy.invocation));
    b.AddInt(static_cast<int64_t>(node.strategy.completion));
    b.AddInt(node.strategy.ratio_x);
    b.AddInt(node.strategy.ratio_y);
    b.AddInt(node.join_upstream);
    for (int s : node.selections) b.AddInt(s);
    b.Add(0x2C);
    for (int g : node.residual_join_groups) b.AddInt(g);
    b.Add(0x2D);
    for (int e : node.inputs) b.AddInt(e);
    b.Add(0x2E);
    for (int e : node.outputs) b.AddInt(e);
    b.Add(0x2F);
  }
  return b.Finish();
}

Signature CombineBindings(const Signature& base,
                          const std::map<std::string, Value>& bindings) {
  SignatureBuilder b(kSaltBindings);
  b.AddSignature(base);
  b.AddInt(static_cast<int64_t>(bindings.size()));
  for (const auto& [name, value] : bindings) {
    b.AddString(name);
    b.AddValue(value);
  }
  return b.Finish();
}

}  // namespace seco
