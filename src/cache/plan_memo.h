#ifndef SECO_CACHE_PLAN_MEMO_H_
#define SECO_CACHE_PLAN_MEMO_H_

#include <cstdint>
#include <memory>

#include "cache/memo_table.h"
#include "cache/signature.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"

namespace seco {

/// Memoized result of building+annotating+costing one (assignment, topology,
/// fetch-factor) choice. `cost`/`answers` are valid for any query with the
/// same alias-free content signature; the materialized `plan` (which embeds
/// the bound query verbatim, aliases included) is only reused when
/// `exact_tag` also matches, and may be null for probe-only entries.
struct PlanCostEntry {
  double cost = 0.0;
  double answers = 0.0;
  uint64_t exact_tag = 0;
  std::shared_ptr<const QueryPlan> plan;
};

/// Aggregated per-table stats of a PlanMemo.
struct PlanMemoStats {
  MemoStats plans;
  MemoStats bounds;
  MemoStats feasibility;

  int64_t hits() const { return plans.hits + bounds.hits + feasibility.hits; }
  int64_t probes() const {
    return plans.probes + bounds.probes + feasibility.probes;
  }
};

/// Cross-query memoization for the §5 branch-and-bound optimizer: three
/// lock-free MemoTables over order-preserving content signatures —
///  - plans: full build+annotate+cost results per (assignment, spec, k),
///  - bounds: Phase-2 partial-plan lower bounds per (assignment, placed
///    stages, k),
///  - feasibility: Phase-1 feasibility verdicts per assignment.
/// Keys are *content* hashes (service statistics included), so a memo hit
/// replays a bit-identical pure floating-point computation — the optimizer
/// with a warm memo returns byte-identical OptimizationResults.
class PlanMemo {
 public:
  explicit PlanMemo(size_t byte_budget);

  MemoTable<PlanCostEntry>& plans() { return plans_; }
  MemoTable<double>& bounds() { return bounds_; }
  MemoTable<uint8_t>& feasibility() { return feasibility_; }

  /// Invalidates all three tables (registry change, replica failover).
  void BumpGeneration();
  uint64_t generation() const { return plans_.generation(); }

  PlanMemoStats stats() const;

 private:
  MemoTable<PlanCostEntry> plans_;
  MemoTable<double> bounds_;
  MemoTable<uint8_t> feasibility_;
};

/// Fingerprint of every OptimizerOptions field that changes optimization
/// *values* (metric, cost params, k, heuristics, phase-3 bounds, strategy
/// auto-selection). Excluded: `max_plans` (an anytime traversal budget that
/// never alters the value computed for a given key) and the memo pointer
/// itself.
uint64_t OptimizerFingerprint(const OptimizerOptions& options);

}  // namespace seco

#endif  // SECO_CACHE_PLAN_MEMO_H_
