#ifndef SECO_CACHE_SIGNATURE_H_
#define SECO_CACHE_SIGNATURE_H_

#include <cstdint>
#include <map>
#include <string>

#include "plan/plan.h"
#include "query/bound_query.h"
#include "service/value.h"

namespace seco {

/// A 128-bit canonical signature. `lo` indexes the memo table (slot
/// selection), `hi` feeds the packed-entry check word; the full pair is
/// verified against the stored record before any hit is served, so partial
/// collisions can cost a probe but never a wrong answer.
struct Signature {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Signature&) const = default;
  bool IsZero() const { return lo == 0 && hi == 0; }
};

/// SplitMix64 finalizer: the feature mixer behind every signature.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Order-sensitive 128-bit accumulator: `Add` folds one feature into both
/// lanes with a position-dependent tweak, so permuted sequences hash
/// differently. Use for anything whose order is execution-relevant (atom
/// positions, selection order, plan node lists).
class SignatureBuilder {
 public:
  SignatureBuilder() = default;
  explicit SignatureBuilder(uint64_t salt) { Add(salt); }

  void Add(uint64_t feature) {
    ++count_;
    lo_ = Mix64(lo_ ^ (feature * 0xC2B2AE3D27D4EB4FULL));
    hi_ = Mix64(hi_ + feature + count_ * 0xD6E8FEB86659FD93ULL);
  }
  void AddInt(int64_t v) { Add(static_cast<uint64_t>(v)); }
  void AddBool(bool v) { Add(v ? 0x2545F4914F6CDD1DULL : 0x9E6C63D0876A9A47ULL); }
  void AddDouble(double v);
  void AddString(const std::string& s);
  void AddSignature(const Signature& s) {
    Add(s.lo);
    Add(s.hi);
  }
  void AddValue(const Value& v);

  Signature Finish() const {
    Signature s;
    s.lo = Mix64(lo_ ^ count_);
    s.hi = Mix64(hi_ ^ (count_ * 0xA0761D6478BD642FULL));
    if (s.IsZero()) s.lo = 1;  // the all-zero signature means "empty entry"
    return s;
  }

 private:
  uint64_t lo_ = 0x5ECC0C0DE0000001ULL;
  uint64_t hi_ = 0x5ECC0C0DE0000002ULL;
  uint64_t count_ = 0;
};

/// Zobrist-style commutative accumulator: features XOR in and out in O(1),
/// so a backtracking search (the optimizer's topology enumeration) can
/// maintain the signature of its current partial state incrementally.
/// Order-free by construction — use only for sets whose order is NOT
/// execution-relevant (join groups, placed-atom stages keyed by position).
struct CommutativeAccumulator {
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint64_t count = 0;

  void Add(const Signature& s) {
    lo ^= s.lo;
    hi ^= s.hi;
    ++count;
  }
  /// Exact inverse of `Add` (XOR is an involution).
  void Remove(const Signature& s) {
    lo ^= s.lo;
    hi ^= s.hi;
    --count;
  }
  Signature Finish() const {
    SignatureBuilder b(0x5A17C0DEULL);
    b.Add(lo);
    b.Add(hi);
    b.Add(count);
    return b.Finish();
  }
};

/// Canonical *answer-mode* signature of a bound query: two queries hash
/// equal iff executing them yields the same answers.
///
/// Included (execution-relevant): atom positions and their resolved
/// interfaces (full content: schema, access pattern, statistics — not just
/// the name), selections in declaration order, join groups, INPUT variable
/// references, explicit ranking weights.
///
/// Excluded / canonicalized:
///  - atom aliases (pure names; renamed atoms hash equal),
///  - join order: groups combine commutatively, clauses within a group
///    combine commutatively, and each non-`like` clause is oriented
///    canonically with its comparator mirrored — `A.x < B.y` and
///    `B.y > A.x` hash equal,
///  - connection-pattern names (only their clauses + selectivity matter).
///
/// Atom *positions* stay significant: `Combination::components` is indexed
/// by atom, so reordering the select list changes the answer shape.
Signature QueryAnswerSignature(const BoundQuery& query);

/// Order-preserving content signature (cost mode): hashes the query exactly
/// as written — atoms, selections, and joins in declaration order, no
/// canonicalization — so two equal signatures guarantee bit-identical
/// floating-point results from the (pure) cost/cardinality pipeline.
/// `include_aliases` distinguishes the plan-reuse exact tag (true) from the
/// cost/feasibility memo keys (false: cost math never reads aliases).
Signature QueryContentSignature(const BoundQuery& query, bool include_aliases);

/// 64-bit alias-inclusive content tag used to gate memoized *plan* reuse:
/// costs and cardinalities are shared across renamed queries, but a stored
/// plan (which embeds the bound query, aliases and all) is only returned
/// verbatim when the requesting query matches exactly.
uint64_t ExactContentTag(const BoundQuery& query);

/// Ordered signature of a materialized plan DAG: nodes (kind, atom,
/// interface, fetch factor, strategy, selections) and edges in id order.
/// Annotations (`t_in`/`t_out`/`est_calls`) are excluded — the same plan
/// before and after AnnotatePlan hashes equal.
Signature PlanSignature(const QueryPlan& plan);

/// Folds a user binding map into `base` (std::map iterates in key order, so
/// the result is independent of insertion order).
Signature CombineBindings(const Signature& base,
                          const std::map<std::string, Value>& bindings);

}  // namespace seco

#endif  // SECO_CACHE_SIGNATURE_H_
