#include "cache/plan_memo.h"

namespace seco {

PlanMemo::PlanMemo(size_t byte_budget)
    : plans_(byte_budget / 2),
      bounds_(byte_budget / 4),
      feasibility_(byte_budget / 4) {}

void PlanMemo::BumpGeneration() {
  plans_.BumpGeneration();
  bounds_.BumpGeneration();
  feasibility_.BumpGeneration();
}

PlanMemoStats PlanMemo::stats() const {
  PlanMemoStats s;
  s.plans = plans_.stats();
  s.bounds = bounds_.stats();
  s.feasibility = feasibility_.stats();
  return s;
}

uint64_t OptimizerFingerprint(const OptimizerOptions& options) {
  SignatureBuilder b(0x0F71F1A65ULL);
  b.AddInt(static_cast<int64_t>(options.metric));
  b.AddDouble(options.cost_params.join_cpu_cost_per_candidate);
  b.AddInt(options.k);
  b.AddInt(static_cast<int64_t>(options.access_heuristic));
  b.AddInt(static_cast<int64_t>(options.topology_heuristic));
  b.AddInt(static_cast<int64_t>(options.fetch_heuristic));
  b.AddInt(options.max_fetch_iterations);
  b.AddInt(options.max_fetch_factor);
  b.AddBool(options.auto_join_strategy);
  Signature s = b.Finish();
  return Mix64(s.lo) ^ s.hi;
}

}  // namespace seco
