#ifndef SECO_CACHE_ANSWER_CACHE_H_
#define SECO_CACHE_ANSWER_CACHE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cache/memo_table.h"
#include "cache/plan_memo.h"
#include "cache/signature.h"
#include "exec/engine.h"
#include "exec/streaming.h"
#include "reliability/policy.h"
#include "repair/repair.h"

namespace seco {

/// A complete served answer, stored once and shared by every warm hit.
/// Exactly the bytes a fresh execution would have produced: `execution` for
/// materializing requests, `streaming` for streaming ones.
struct CachedAnswer {
  bool streamed = false;
  int degradation_level = 0;
  ExecutionResult execution;
  StreamingResult streaming;
};

/// Everything besides the query text and bindings that selects an answer.
/// Composition rules (see docs/CACHING.md):
///  IN  — k, call budget, degradation level, streaming mode, and the
///        reliability / repair / optimizer configuration fingerprints: each
///        of these changes which answers come back.
///  OUT — num_threads, prefetch_depth, kernel choice: the determinism
///        suites prove answers bit-identical across them, so folding them
///        in would only splinter the cache.
struct AnswerKey {
  Signature query;  ///< QueryAnswerSignature of the bound query
  int k = 10;
  int max_calls = 10000;
  int degradation_level = 0;
  bool streaming = false;
  uint64_t reliability_fp = 0;
  uint64_t repair_fp = 0;
  uint64_t optimizer_fp = 0;
};

/// Fingerprint of every ReliabilityPolicy field (retry schedule incl. the
/// jitter seed, deadlines, breaker thresholds, hedging, degrade flag) — any
/// of them can change answers or the reliability stats stored with them.
uint64_t ReliabilityFingerprint(const ReliabilityPolicy& policy);

/// Fingerprint of RepairOptions: policy, round budget, and the replanning
/// optimizer configuration. The registry pointer is excluded — registry
/// *content* changes are handled by generation invalidation instead.
uint64_t RepairFingerprint(const RepairOptions& options);

/// Folds an AnswerKey and the user's input bindings into the final
/// answer-cache signature.
Signature AnswerSignature(const AnswerKey& key,
                          const std::map<std::string, Value>& bindings);

/// Whole-answer cache: a lock-free MemoTable of CachedAnswers plus
/// single-flight dogpile suppression — when N identical cold queries arrive
/// concurrently, one (the leader) executes and publishes; the other N-1
/// (followers) block on a shared future and reuse the leader's answer.
/// Probes never block; only cold-miss coordination takes the flight mutex.
class AnswerCache {
 public:
  explicit AnswerCache(size_t byte_budget);

  /// Outcome of JoinOrLead. Exactly one of three shapes:
  ///  - `cached` set: warm hit, serve it;
  ///  - `leader` true: caller must execute and then call CompleteFlight
  ///    (with nullptr on failure) — exactly once;
  ///  - otherwise: follower; `wait.get()` yields the leader's answer, or
  ///    nullptr when the leader's execution was uncacheable (the follower
  ///    then executes on its own, without leading a new flight).
  struct Flight {
    bool leader = false;
    std::shared_ptr<const CachedAnswer> cached;
    std::shared_future<std::shared_ptr<const CachedAnswer>> wait;
  };

  /// Lock-free warm probe.
  std::shared_ptr<const CachedAnswer> Probe(const Signature& sig);

  /// Probe + single-flight admission for the execution path.
  Flight JoinOrLead(const Signature& sig);

  /// Publishes the leader's answer (nullptr = uncacheable) and releases all
  /// followers of `sig`. Must be called exactly once per led flight.
  void CompleteFlight(const Signature& sig,
                      std::shared_ptr<const CachedAnswer> answer);

  /// Direct insertion (no flight bookkeeping).
  void Insert(const Signature& sig, CachedAnswer answer);

  void BumpGeneration() { table_.BumpGeneration(); }
  uint64_t generation() const { return table_.generation(); }

  MemoStats stats() const { return table_.stats(); }
  int64_t flights_led() const;
  int64_t flights_followed() const;

 private:
  struct SigHash {
    size_t operator()(const Signature& s) const {
      return static_cast<size_t>(s.lo ^ Mix64(s.hi));
    }
  };
  struct InFlight {
    std::promise<std::shared_ptr<const CachedAnswer>> promise;
    std::shared_future<std::shared_ptr<const CachedAnswer>> future;
  };

  MemoTable<CachedAnswer> table_;
  std::mutex flights_mu_;
  std::unordered_map<Signature, std::shared_ptr<InFlight>, SigHash> inflight_;
  std::atomic<int64_t> flights_led_{0};
  std::atomic<int64_t> flights_followed_{0};
};

/// Rough payload footprint of a cached answer, for the table's byte budget.
size_t EstimateAnswerBytes(const CachedAnswer& answer);

}  // namespace seco

#endif  // SECO_CACHE_ANSWER_CACHE_H_
