#include "cache/answer_cache.h"

namespace seco {
namespace {

constexpr uint64_t kSaltReliability = 0x8E11AB111171ULL;
constexpr uint64_t kSaltRepair = 0x8E9A118C0DEULL;
constexpr uint64_t kSaltAnswerKey = 0xA05118E48E7ULL;

}  // namespace

uint64_t ReliabilityFingerprint(const ReliabilityPolicy& policy) {
  SignatureBuilder b(kSaltReliability);
  b.AddInt(policy.retry.max_retries);
  b.AddDouble(policy.retry.backoff_base_ms);
  b.AddDouble(policy.retry.backoff_multiplier);
  b.AddDouble(policy.retry.backoff_cap_ms);
  b.AddDouble(policy.retry.jitter_fraction);
  b.Add(policy.retry.jitter_seed);
  b.AddDouble(policy.call_deadline_ms);
  b.AddDouble(policy.query_deadline_ms);
  b.AddInt(policy.breaker_failure_threshold);
  b.AddInt(policy.breaker_probe_interval);
  b.AddDouble(policy.hedge_delay_ms);
  b.AddBool(policy.degrade);
  Signature s = b.Finish();
  return Mix64(s.lo) ^ s.hi;
}

uint64_t RepairFingerprint(const RepairOptions& options) {
  SignatureBuilder b(kSaltRepair);
  b.AddInt(static_cast<int64_t>(options.policy));
  b.AddInt(options.max_rounds);
  b.Add(OptimizerFingerprint(options.optimizer));
  Signature s = b.Finish();
  return Mix64(s.lo) ^ s.hi;
}

Signature AnswerSignature(const AnswerKey& key,
                          const std::map<std::string, Value>& bindings) {
  SignatureBuilder b(kSaltAnswerKey);
  b.AddSignature(key.query);
  b.AddInt(key.k);
  b.AddInt(key.max_calls);
  b.AddInt(key.degradation_level);
  b.AddBool(key.streaming);
  b.Add(key.reliability_fp);
  b.Add(key.repair_fp);
  b.Add(key.optimizer_fp);
  return CombineBindings(b.Finish(), bindings);
}

AnswerCache::AnswerCache(size_t byte_budget) : table_(byte_budget) {}

std::shared_ptr<const CachedAnswer> AnswerCache::Probe(const Signature& sig) {
  return table_.Probe(sig);
}

AnswerCache::Flight AnswerCache::JoinOrLead(const Signature& sig) {
  Flight flight;
  flight.cached = table_.Probe(sig);
  if (flight.cached) return flight;

  std::lock_guard<std::mutex> lock(flights_mu_);
  auto it = inflight_.find(sig);
  if (it != inflight_.end()) {
    flight.wait = it->second->future;
    flights_followed_.fetch_add(1, std::memory_order_relaxed);
    return flight;
  }
  auto entry = std::make_shared<InFlight>();
  entry->future = entry->promise.get_future().share();
  inflight_.emplace(sig, std::move(entry));
  flight.leader = true;
  flights_led_.fetch_add(1, std::memory_order_relaxed);
  return flight;
}

void AnswerCache::CompleteFlight(const Signature& sig,
                                 std::shared_ptr<const CachedAnswer> answer) {
  if (answer) {
    // Benefit = simulated execution time saved per future hit.
    const double benefit = answer->streamed
                               ? answer->streaming.total_latency_ms
                               : answer->execution.elapsed_ms;
    table_.Insert(sig, *answer, benefit, EstimateAnswerBytes(*answer));
  }
  std::shared_ptr<InFlight> entry;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = inflight_.find(sig);
    if (it == inflight_.end()) return;
    entry = std::move(it->second);
    inflight_.erase(it);
  }
  entry->promise.set_value(std::move(answer));
}

void AnswerCache::Insert(const Signature& sig, CachedAnswer answer) {
  const double benefit = answer.streamed ? answer.streaming.total_latency_ms
                                         : answer.execution.elapsed_ms;
  const size_t bytes = EstimateAnswerBytes(answer);
  table_.Insert(sig, std::move(answer), benefit, bytes);
}

int64_t AnswerCache::flights_led() const {
  return flights_led_.load(std::memory_order_relaxed);
}

int64_t AnswerCache::flights_followed() const {
  return flights_followed_.load(std::memory_order_relaxed);
}

namespace {

size_t CombinationBytes(const std::vector<Combination>& combinations) {
  size_t bytes = 0;
  for (const Combination& c : combinations) {
    bytes += sizeof(Combination) + c.components.size() * 160 +
             c.component_scores.size() * sizeof(double);
  }
  return bytes;
}

}  // namespace

size_t EstimateAnswerBytes(const CachedAnswer& answer) {
  size_t bytes = sizeof(CachedAnswer) + 256;
  if (answer.streamed) {
    bytes += CombinationBytes(answer.streaming.combinations);
    bytes += answer.streaming.node_stats.size() * 96;
    bytes += answer.streaming.trace.size() * 128;
  } else {
    bytes += CombinationBytes(answer.execution.combinations);
    bytes += answer.execution.node_stats.size() * 96;
    bytes += answer.execution.trace.size() * 128;
  }
  return bytes;
}

}  // namespace seco
