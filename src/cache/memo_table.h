#ifndef SECO_CACHE_MEMO_TABLE_H_
#define SECO_CACHE_MEMO_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "cache/signature.h"

namespace seco {

/// Aggregate counters of one MemoTable. All counters are monotonic except
/// `entries`/`bytes`, which track live state approximately (stale-generation
/// entries are reclaimed lazily and stay counted until overwritten).
struct MemoStats {
  int64_t probes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;       ///< publications into empty slots
  int64_t replacements = 0;  ///< publications that displaced a victim
  int64_t rejected = 0;      ///< inserts refused (budget / oversized payload)
  int64_t contended_skips = 0;  ///< best-effort inserts skipped under a racing writer
  int64_t stale_drops = 0;   ///< probes that matched an invalidated generation
  int64_t entries = 0;
  int64_t bytes = 0;
  uint64_t generation = 0;
  size_t capacity = 0;

  double HitRate() const {
    return probes > 0 ? static_cast<double>(hits) / static_cast<double>(probes)
                      : 0.0;
  }
};

/// A fixed-size, power-of-two, lock-free memo table in the transposition-
/// table idiom: each slot carries two atomic words — a packed metadata word
/// `[stamp:24 | benefit:16 | gen:16 | flags:8]` and a check word
/// `sig.hi ^ packed` whose XOR pairing detects torn reads — plus a
/// refcounted-seqlock slot protecting a `shared_ptr` to the immutable
/// payload record.
///
/// Readers NEVER block: a probe that observes a writer mid-publication
/// simply treats the slot as a miss. Writers are best-effort: an insert that
/// loses the version CAS is dropped (the value is recomputable by
/// definition — this is a memo, not a store of record).
///
/// Correctness does not rest on the 128-bit hash: the full `Signature` is
/// stored in the record and compared on every probe, so a partial-hash or
/// even full-hash collision costs a miss, never a wrong payload.
///
/// Invalidation is O(1): `BumpGeneration()` advances an epoch counter; the
/// 16-bit generation tag in the packed word fails probes cheaply, and the
/// full 64-bit generation in the record guards against 16-bit rollover.
/// Replacement prefers empty slots, then stale generations, then the lowest
/// (benefit, stamp) — cheap-to-recompute and old entries die first.
template <typename V>
class MemoTable {
 public:
  /// Sizes the table for roughly `byte_budget` of payload, assuming the
  /// caller's byte estimates average a few hundred bytes per entry.
  explicit MemoTable(size_t byte_budget)
      : MemoTable(byte_budget, CapacityFor(byte_budget)) {}

  /// Test hook: explicit slot count (rounded up to a power of two, >= 8).
  MemoTable(size_t byte_budget, size_t capacity)
      : byte_budget_(byte_budget),
        mask_(RoundPow2(capacity) - 1),
        entries_(new Entry[mask_ + 1]) {}

  MemoTable(const MemoTable&) = delete;
  MemoTable& operator=(const MemoTable&) = delete;

  /// Lock-free lookup. Returns the payload (aliased into the slot's record,
  /// so it stays valid after the slot is overwritten) or nullptr.
  std::shared_ptr<const V> Probe(const Signature& sig) {
    probes_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    const size_t base = static_cast<size_t>(sig.lo) & mask_;
    for (int way = 0; way < kWays; ++way) {
      Entry& e = entries_[(base + way) & mask_];
      const uint64_t packed = e.packed.load(std::memory_order_acquire);
      if (!(packed & kOccupied)) continue;
      const uint64_t check = e.check.load(std::memory_order_acquire);
      // XOR pairing: a torn (check, packed) pair from a concurrent writer
      // fails this test unless it also fails the record comparison below.
      if ((check ^ packed) != sig.hi) continue;
      if (PackedGen(packed) != static_cast<uint16_t>(gen)) {
        stale_drops_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::shared_ptr<const Record> rec = ReadSlot(e);
      if (!rec) continue;
      if (!(rec->sig == sig)) continue;  // full verification: no false hits
      if (rec->generation != gen) {
        stale_drops_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      return std::shared_ptr<const V>(rec, &rec->value);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Best-effort publication. `benefit` orders replacement (higher = more
  /// worth keeping; e.g. execution cost saved); `payload_bytes` is the
  /// caller's estimate of the payload footprint. Returns false when the
  /// insert was skipped (contention, budget, or an oversized payload).
  bool Insert(const Signature& sig, V value, double benefit,
              size_t payload_bytes) {
    if (byte_budget_ > 0 && payload_bytes > byte_budget_ / 2) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    const uint16_t benefit_q = QuantizeBenefit(benefit);
    const size_t base = static_cast<size_t>(sig.lo) & mask_;

    // Victim selection: same-signature slot > empty > stale generation >
    // lowest (benefit, stamp).
    Entry* victim = nullptr;
    bool victim_empty = false;
    uint64_t victim_rank = ~0ULL;
    for (int way = 0; way < kWays; ++way) {
      Entry& e = entries_[(base + way) & mask_];
      const uint64_t packed = e.packed.load(std::memory_order_acquire);
      if (!(packed & kOccupied)) {
        if (!victim || !victim_empty) {
          victim = &e;
          victim_empty = true;
          victim_rank = 0;
        }
        continue;
      }
      const uint64_t check = e.check.load(std::memory_order_acquire);
      if ((check ^ packed) == sig.hi) {
        victim = &e;  // refresh the existing entry for this signature
        victim_empty = false;
        break;
      }
      if (victim_empty) continue;
      const bool stale = PackedGen(packed) != static_cast<uint16_t>(gen);
      const uint64_t rank =
          stale ? 1
                : 2 + (static_cast<uint64_t>(PackedBenefit(packed)) << 24 |
                       PackedStamp(packed));
      if (rank < victim_rank) {
        victim = &e;
        victim_rank = rank;
      }
    }
    if (!victim) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Enforce the byte budget approximately: growing into an empty slot is
    // only allowed while under budget; replacement keeps bytes roughly flat.
    if (victim_empty && byte_budget_ > 0 &&
        bytes_.load(std::memory_order_relaxed) +
                static_cast<int64_t>(payload_bytes) >
            static_cast<int64_t>(byte_budget_)) {
      victim = nullptr;
      victim_rank = ~0ULL;
      for (int way = 0; way < kWays; ++way) {
        Entry& e = entries_[(base + way) & mask_];
        const uint64_t packed = e.packed.load(std::memory_order_acquire);
        if (!(packed & kOccupied)) continue;
        const bool stale = PackedGen(packed) != static_cast<uint16_t>(gen);
        const uint64_t rank =
            stale ? 1
                  : 2 + (static_cast<uint64_t>(PackedBenefit(packed)) << 24 |
                         PackedStamp(packed));
        if (rank < victim_rank) {
          victim = &e;
          victim_rank = rank;
        }
      }
      victim_empty = false;
      if (!victim) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }

    auto rec = std::make_shared<Record>();
    rec->sig = sig;
    rec->generation = gen;
    rec->bytes = payload_bytes;
    rec->value = std::move(value);
    return PublishSlot(*victim, std::move(rec), benefit_q, gen);
  }

  /// O(1) whole-table invalidation: every live entry's generation tag stops
  /// matching. Slots are reclaimed lazily by later inserts.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return mask_ + 1; }
  size_t byte_budget() const { return byte_budget_; }

  MemoStats stats() const {
    MemoStats s;
    s.probes = probes_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.replacements = replacements_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.contended_skips = contended_skips_.load(std::memory_order_relaxed);
    s.stale_drops = stale_drops_.load(std::memory_order_relaxed);
    s.entries = entries_live_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.generation = generation_.load(std::memory_order_acquire);
    s.capacity = mask_ + 1;
    return s;
  }

 private:
  static constexpr int kWays = 4;
  static constexpr uint64_t kOccupied = 1;

  struct Record {
    Signature sig;
    uint64_t generation = 0;
    size_t bytes = 0;
    V value{};
  };

  struct Entry {
    /// sig.hi ^ packed of the published pair; 0 when never written.
    std::atomic<uint64_t> check{0};
    /// [stamp:24 | benefit:16 | gen:16 | flags:8]; bit 0 = occupied.
    std::atomic<uint64_t> packed{0};
    /// Seqlock version word: odd while a writer owns the slot.
    std::atomic<uint32_t> version{0};
    /// Readers currently copying `record`; writers wait for zero.
    std::atomic<uint32_t> readers{0};
    std::shared_ptr<const Record> record;
  };

  static size_t RoundPow2(size_t n) {
    size_t p = 8;
    while (p < n && p < (size_t{1} << 31)) p <<= 1;
    return p;
  }

  static size_t CapacityFor(size_t byte_budget) {
    // Assume a few hundred bytes of payload per entry on average; clamp so
    // tiny budgets still get a usable table and huge ones stay bounded.
    size_t target = byte_budget / 384;
    if (target < 256) target = 256;
    if (target > (size_t{1} << 20)) target = size_t{1} << 20;
    return RoundPow2(target);
  }

  static uint16_t PackedGen(uint64_t packed) {
    return static_cast<uint16_t>(packed >> 8);
  }
  static uint16_t PackedBenefit(uint64_t packed) {
    return static_cast<uint16_t>(packed >> 24);
  }
  static uint32_t PackedStamp(uint64_t packed) {
    return static_cast<uint32_t>(packed >> 40) & 0xFFFFFFu;
  }
  static uint64_t Pack(uint16_t gen, uint16_t benefit, uint32_t stamp) {
    return kOccupied | (static_cast<uint64_t>(gen) << 8) |
           (static_cast<uint64_t>(benefit) << 24) |
           (static_cast<uint64_t>(stamp & 0xFFFFFFu) << 40);
  }

  static uint16_t QuantizeBenefit(double benefit) {
    if (benefit <= 0.0) return 0;
    // log2 quantization: each step doubles the benefit; saturates at 2^65535
    // conceptually, in practice at the 16-bit ceiling.
    double scaled = benefit;
    uint32_t q = 0;
    while (scaled >= 2.0 && q < 0xFFFF) {
      scaled *= 0.5;
      ++q;
    }
    uint32_t fine = static_cast<uint32_t>(scaled * 8.0);  // 3 fractional bits
    uint64_t total = static_cast<uint64_t>(q) * 8 + fine;
    return total > 0xFFFF ? 0xFFFF : static_cast<uint16_t>(total);
  }

  /// Reader side of the refcounted seqlock. Sequentially-consistent fences
  /// on version/readers give a total order: either the reader's
  /// `readers.fetch_add` precedes a writer's CAS (the writer then spins on
  /// `readers`), or the writer's CAS precedes the reader's second version
  /// load (the reader then observes an odd/changed version and aborts).
  /// Either way no reader copies `record` while a writer mutates it.
  std::shared_ptr<const Record> ReadSlot(Entry& e) {
    const uint32_t v1 = e.version.load(std::memory_order_seq_cst);
    if (v1 & 1) return nullptr;  // writer active: readers never block
    e.readers.fetch_add(1, std::memory_order_seq_cst);
    std::shared_ptr<const Record> rec;
    if (e.version.load(std::memory_order_seq_cst) == v1) {
      rec = e.record;  // copy bumps the refcount; record itself is immutable
    }
    e.readers.fetch_sub(1, std::memory_order_release);
    return rec;
  }

  /// Writer side: CAS the version even→odd (losing the CAS drops the insert
  /// — best-effort by design), wait out in-flight readers, swap the record,
  /// publish packed/check, release the version.
  bool PublishSlot(Entry& e, std::shared_ptr<const Record> rec,
                   uint16_t benefit_q, uint64_t gen) {
    uint32_t v = e.version.load(std::memory_order_relaxed);
    if ((v & 1) ||
        !e.version.compare_exchange_strong(v, v + 1,
                                           std::memory_order_seq_cst)) {
      contended_skips_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    int spins = 0;
    while (e.readers.load(std::memory_order_seq_cst) != 0) {
      if (++spins > 64) std::this_thread::yield();
    }
    // Everything needed after the version release is captured while this
    // writer still owns the slot: once `version` goes even again another
    // writer may immediately re-take it and move `e.record` out from under
    // any late dereference.
    const uint64_t new_hi = rec->sig.hi;
    const int64_t byte_delta =
        static_cast<int64_t>(rec->bytes) -
        static_cast<int64_t>(e.record ? e.record->bytes : 0);
    std::shared_ptr<const Record> old = std::move(e.record);
    e.record = std::move(rec);
    const uint32_t stamp =
        static_cast<uint32_t>(stamp_.fetch_add(1, std::memory_order_relaxed));
    const uint64_t packed =
        Pack(static_cast<uint16_t>(gen), benefit_q, stamp);
    e.packed.store(packed, std::memory_order_release);
    e.check.store(new_hi ^ packed, std::memory_order_release);
    e.version.store(v + 2, std::memory_order_seq_cst);

    bytes_.fetch_add(byte_delta, std::memory_order_relaxed);
    if (!old) {
      entries_live_.fetch_add(1, std::memory_order_relaxed);
      inserts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      replacements_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  const size_t byte_budget_;
  const size_t mask_;
  std::unique_ptr<Entry[]> entries_;

  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> stamp_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> entries_live_{0};
  std::atomic<int64_t> probes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> replacements_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> contended_skips_{0};
  std::atomic<int64_t> stale_drops_{0};
};

}  // namespace seco

#endif  // SECO_CACHE_MEMO_TABLE_H_
