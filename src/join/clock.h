#ifndef SECO_JOIN_CLOCK_H_
#define SECO_JOIN_CLOCK_H_

#include <vector>

#include "common/result.h"

namespace seco {

/// A *clock* (the chapter's §4.3.2 pointer to its Chapter 12): a unit that
/// regulates service calls according to an inter-service ratio. Given
/// per-service tick weights (r_0 : r_1 : ... : r_{n-1}), `NextService`
/// returns the index of the service whose call keeps observed call counts
/// closest to the configured ratio — a smooth weighted round-robin: with
/// ratio 3:5, out of every 8 consecutive ticks service 0 gets 3 and
/// service 1 gets 5, interleaved as evenly as possible.
///
/// Suspended services (exhausted, failed, or paused by the execution
/// engine) are skipped until resumed.
class Clock {
 public:
  /// `ratios` must be non-empty with every entry >= 1.
  static Result<Clock> Create(std::vector<int> ratios);

  int num_services() const { return static_cast<int>(ratios_.size()); }

  /// The service to call next; -1 if every service is suspended.
  /// Advances the clock state.
  int NextService();

  /// Marks a service as not callable; its ticks are redistributed.
  void Suspend(int service);
  /// Makes a suspended service callable again.
  void Resume(int service);
  bool suspended(int service) const { return suspended_[service]; }

  /// Calls issued to each service so far.
  const std::vector<int>& call_counts() const { return calls_; }

 private:
  explicit Clock(std::vector<int> ratios)
      : ratios_(std::move(ratios)),
        credits_(ratios_.size(), 0.0),
        calls_(ratios_.size(), 0),
        suspended_(ratios_.size(), false) {}

  std::vector<int> ratios_;
  std::vector<double> credits_;
  std::vector<int> calls_;
  std::vector<bool> suspended_;
};

}  // namespace seco

#endif  // SECO_JOIN_CLOCK_H_
