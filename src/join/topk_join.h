#ifndef SECO_JOIN_TOPK_JOIN_H_
#define SECO_JOIN_TOPK_JOIN_H_

#include <vector>

#include "common/result.h"
#include "join/chunk_source.h"
#include "join/parallel_join.h"

namespace seco {

/// Configuration of a guaranteed top-k binary rank join.
struct TopKJoinConfig {
  int k = 10;
  int max_calls = 500;
  double weight_x = 0.5;
  double weight_y = 0.5;
  /// Opts the executor into the columnar data plane. REQUIRES the predicate
  /// to be equality of exactly these two attributes; new chunks then join
  /// against the opposite buffer with a key-scan kernel and batch score
  /// combination instead of per-pair predicate calls, falling back to the
  /// predicate whenever a side's keys stop being kernel-comparable.
  std::optional<ColumnJoinSpec> columns;
};

/// Outcome of a top-k join run.
struct TopKJoinExecution {
  /// Emitted in strictly non-increasing combined score. When `guaranteed`
  /// is true these are exactly the top-k joinable combinations of the two
  /// full result lists under the weighted scoring function.
  std::vector<JoinResultTuple> results;
  int calls_x = 0;
  int calls_y = 0;
  /// The final HRJN threshold (upper bound on any unseen combination).
  double final_threshold = 0.0;
  /// True if k results were emitted with the top-k guarantee intact; false
  /// if the call budget ran out first (results are still correct prefixes:
  /// every emitted tuple is guaranteed, there are just fewer than k).
  bool guaranteed = false;
  double latency_sequential_ms = 0.0;
  double latency_parallel_ms = 0.0;
  /// Columnar data-plane counters (all zero when `config.columns` unset).
  ColumnarStats columnar;
};

/// A guaranteed top-k rank join in the style of HRJN (hash rank join), the
/// family of "top-k join methods" the chapter defers to its Chapter 11:
/// unlike the §4 extraction-optimal methods, it emits a combination only
/// once the *threshold* — the best combined score any unseen pair could
/// still achieve — proves no better combination is pending. The price is
/// blocking behaviour: output stalls while the threshold is driven down.
///
///   T = max(wx * sx_top + wy * sy_last,  wx * sx_last + wy * sy_top)
///
/// where s*_top is the first (best) score seen on a side and s*_last the
/// most recent (§: monotone sources). Each new chunk joins against the
/// opposite buffer; joinable pairs wait in a priority queue until their
/// combined score is >= T.
///
/// Invocation alternates toward the side whose contribution to the
/// threshold is larger (the HRJN* descent rule), degenerating to simple
/// alternation on ties.
class TopKJoinExecutor {
 public:
  TopKJoinExecutor(ChunkSource* source_x, ChunkSource* source_y,
                   JoinPredicate predicate, TopKJoinConfig config)
      : x_(source_x), y_(source_y), predicate_(std::move(predicate)),
        config_(config) {}

  Result<TopKJoinExecution> Run();

 private:
  ChunkSource* x_;
  ChunkSource* y_;
  JoinPredicate predicate_;
  TopKJoinConfig config_;
};

}  // namespace seco

#endif  // SECO_JOIN_TOPK_JOIN_H_
