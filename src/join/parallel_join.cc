#include "join/parallel_join.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>

namespace seco {

namespace {

/// Orders tiles by descending representative score, breaking ties by
/// ascending index sum then x (deterministic diagonal order). Scores are
/// batch-evaluated once per tile instead of O(n log n) times inside the
/// comparator.
void SortTilesBest(std::vector<Tile>* tiles, const SearchSpace& space) {
  std::vector<std::pair<Tile, double>> scored;
  scored.reserve(tiles->size());
  for (const Tile& t : *tiles) {
    scored.emplace_back(t, space.TileScore(t));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const std::pair<Tile, double>& a,
                      const std::pair<Tile, double>& b) {
                     if (a.second != b.second) return a.second > b.second;
                     if (a.first.IndexSum() != b.first.IndexSum()) {
                       return a.first.IndexSum() < b.first.IndexSum();
                     }
                     return a.first.x < b.first.x;
                   });
  for (size_t i = 0; i < scored.size(); ++i) {
    (*tiles)[i] = scored[i].first;
  }
}

}  // namespace

int ParallelJoinExecutor::NextFetchSide() {
  bool x_done = x_->exhausted();
  bool y_done = y_->exhausted();
  if (x_done && y_done) return 0;
  // The first two calls always alternate so at least one tile exists (§4.4).
  if (space_.chunks_x() == 0 && !x_done) return -1;
  if (space_.chunks_y() == 0 && !y_done) return +1;
  if (x_done) return +1;
  if (y_done) return -1;

  switch (config_.strategy.invocation) {
    case JoinInvocation::kNestedLoop: {
      // Drain the step service (conventionally X) for its h high-ranking
      // chunks, then fetch only Y (§4.3.1).
      int h = std::max(1, x_->iface().stats().step_h);
      return space_.chunks_x() < h ? -1 : +1;
    }
    case JoinInvocation::kMergeScan: {
      // A Clock paces the two services at the inter-service ratio
      // r = ratio_x : ratio_y (§4.3.2 / the chapter's Chapter 12 pointer).
      if (!clock_.has_value()) {
        Result<Clock> clock = Clock::Create({std::max(1, config_.strategy.ratio_x),
                                             std::max(1, config_.strategy.ratio_y)});
        if (!clock.ok()) return 0;
        clock_ = std::move(clock).value();
      }
      if (x_done) clock_->Suspend(0);
      if (y_done) clock_->Suspend(1);
      int side = clock_->NextService();
      if (side < 0) return 0;
      return side == 0 ? -1 : +1;
    }
  }
  return 0;
}

std::vector<Tile> ParallelJoinExecutor::AdmittedTiles() const {
  std::vector<Tile> frontier = space_.Frontier();
  std::vector<Tile> admitted;
  switch (config_.strategy.completion) {
    case JoinCompletion::kRectangular:
      admitted = std::move(frontier);
      break;
    case JoinCompletion::kTriangular: {
      // Admit tiles whose center lies under the anti-diagonal of the
      // fetched rectangle (~half of the rectangle), plus accumulated slack.
      double m = std::max(space_.chunks_x(), 1);
      double n = std::max(space_.chunks_y(), 1);
      for (const Tile& t : frontier) {
        double pos = (t.x + 0.5) / m + (t.y + 0.5) / n;
        if (pos <= 1.0 + slack_) admitted.push_back(t);
      }
      break;
    }
  }
  SortTilesBest(&admitted, space_);
  return admitted;
}

Result<int> ParallelJoinExecutor::ProcessTile(const Tile& tile,
                                              JoinExecution* exec) {
  const Chunk& cx = x_->chunk(tile.x);
  const Chunk& cy = y_->chunk(tile.y);
  int found = 0;
  std::vector<JoinResultTuple> tile_results;
  const ColumnChunk* colx = x_->columns(tile.x);
  const ColumnChunk* coly = y_->columns(tile.y);
  std::optional<PairMode> mode;
  if (colx != nullptr && coly != nullptr) {
    mode = ComparablePairMode(colx->key(), coly->key());
  }
  if (mode.has_value()) {
    // Columnar merge-scan: one kernel pass over the canonical key columns
    // replaces |X| * |Y| predicate calls, then scores combine in a batch.
    // Pair order (i-major, j ascending) and the mul+mul+add combination
    // match the scalar loop exactly, so emitted results are bit-identical.
    const KeyColumn& kx = colx->key();
    const KeyColumn& ky = coly->key();
    auto t0 = std::chrono::steady_clock::now();
    pairs_.clear();
    switch (*mode) {
      case PairMode::kI64:
        simd::MatchEqPairsI64(kx.i64, kx.size, ky.i64, ky.size, &pairs_);
        break;
      case PairMode::kF64Bits:
        simd::MatchEqPairsI64(kx.f64_bits, kx.size, ky.f64_bits, ky.size,
                              &pairs_);
        break;
      case PairMode::kDict:
        simd::MatchEqPairsU32(kx.codes, kx.size, ky.codes, ky.size, &pairs_);
        break;
    }
    scratch_sx_.resize(pairs_.size());
    scratch_sy_.resize(pairs_.size());
    scratch_comb_.resize(pairs_.size());
    for (size_t p = 0; p < pairs_.size(); ++p) {
      scratch_sx_[p] = colx->scores()[pairs_[p].a];
      scratch_sy_[p] = coly->scores()[pairs_[p].b];
    }
    simd::CombineScores(config_.weight_x, scratch_sx_.data(), config_.weight_y,
                        scratch_sy_.data(), pairs_.size(),
                        scratch_comb_.data());
    stats_.kernel_ns += std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    ++stats_.kernel_batches;
    stats_.kernel_rows +=
        static_cast<long long>(kx.size) * static_cast<long long>(ky.size);
    tile_results.reserve(pairs_.size());
    for (size_t p = 0; p < pairs_.size(); ++p) {
      JoinResultTuple result;
      result.x = cx.tuples[colx->row_ids()[pairs_[p].a]];
      result.y = cy.tuples[coly->row_ids()[pairs_[p].b]];
      result.score_x = scratch_sx_[p];
      result.score_y = scratch_sy_[p];
      result.combined = scratch_comb_[p];
      result.tile = tile;
      tile_results.push_back(std::move(result));
      ++found;
    }
  } else {
    ++stats_.scalar_batches;
    stats_.scalar_rows += static_cast<long long>(cx.tuples.size()) *
                          static_cast<long long>(cy.tuples.size());
    for (size_t i = 0; i < cx.tuples.size(); ++i) {
      for (size_t j = 0; j < cy.tuples.size(); ++j) {
        SECO_ASSIGN_OR_RETURN(bool match,
                              predicate_(cx.tuples[i], cy.tuples[j]));
        if (!match) continue;
        JoinResultTuple result;
        result.x = cx.tuples[i];
        result.y = cy.tuples[j];
        result.score_x = i < cx.scores.size() ? cx.scores[i] : 0.0;
        result.score_y = j < cy.scores.size() ? cy.scores[j] : 0.0;
        result.combined = config_.weight_x * result.score_x +
                          config_.weight_y * result.score_y;
        result.tile = tile;
        tile_results.push_back(std::move(result));
        ++found;
      }
    }
  }
  // Within a tile, emit best combinations first.
  std::stable_sort(tile_results.begin(), tile_results.end(),
                   [](const JoinResultTuple& a, const JoinResultTuple& b) {
                     return a.combined > b.combined;
                   });
  for (JoinResultTuple& r : tile_results) {
    exec->results.push_back(std::move(r));
  }
  space_.MarkExplored(tile);
  exec->tile_order.push_back(tile);
  exec->events.push_back(JoinEvent{JoinEventKind::kProcessTile, -1, tile});
  return found;
}

Result<JoinExecution> ParallelJoinExecutor::Run() {
  JoinExecution exec;
  if (config_.columns.has_value()) {
    x_->EnableColumnar(config_.columns->x, &dict_);
    y_->EnableColumnar(config_.columns->y, &dict_);
  }
  CallScheduler scheduler(config_.pool);
  // Tops up each side's in-flight speculation to prefetch_depth, reserving
  // budget for every issued fetch so consumed + pending never overdraws
  // max_calls. Issuing is greedy but consumption (and thus every counter
  // and the fetch schedule) follows NextFetchSide exactly as before.
  auto top_up_prefetches = [&] {
    if (config_.pool == nullptr || config_.prefetch_depth <= 0) return;
    for (ChunkSource* side : {x_, y_}) {
      while (!side->exhausted() &&
             side->prefetches_pending() < config_.prefetch_depth &&
             x_->calls() + y_->calls() + x_->prefetches_pending() +
                     y_->prefetches_pending() <
                 config_.max_calls) {
        if (!side->Prefetch(&scheduler)) break;
      }
    }
  };
  // Concurrent priming: both sides always need their first chunk before a
  // single tile exists (§4.4), so with a pool the two opening fetches
  // overlap. Bookkeeping runs X-then-Y afterwards, matching the sequential
  // event order exactly.
  if (config_.pool != nullptr && space_.chunks_x() == 0 &&
      space_.chunks_y() == 0 && !x_->exhausted() && !y_->exhausted() &&
      config_.max_calls >= 2) {
    std::future<Result<bool>> fx =
        config_.pool->Submit([this] { return x_->FetchNext(); });
    Result<bool> got_y = y_->FetchNext();
    Result<bool> got_x = fx.get();
    SECO_RETURN_IF_ERROR(got_x.status());
    SECO_RETURN_IF_ERROR(got_y.status());
    if (got_x.value()) {
      space_.AddChunkX(x_->chunk(x_->num_chunks() - 1).RepresentativeScore());
      exec.events.push_back(
          JoinEvent{JoinEventKind::kFetchX, x_->num_chunks() - 1, Tile{}});
    }
    if (got_y.value()) {
      space_.AddChunkY(y_->chunk(y_->num_chunks() - 1).RepresentativeScore());
      exec.events.push_back(
          JoinEvent{JoinEventKind::kFetchY, y_->num_chunks() - 1, Tile{}});
    }
  }
  while (true) {
    // Keep the speculation window full while tiles are processed below —
    // the fetches the schedule will ask for next are already on the wire.
    top_up_prefetches();
    // Process every admitted tile; stop once k results are emitted.
    bool done = false;
    while (!done) {
      std::vector<Tile> admitted = AdmittedTiles();
      if (admitted.empty()) break;
      for (const Tile& tile : admitted) {
        SECO_RETURN_IF_ERROR(ProcessTile(tile, &exec).status());
        if (static_cast<int>(exec.results.size()) >= config_.k) {
          done = true;
          break;
        }
      }
      if (config_.strategy.completion == JoinCompletion::kRectangular) break;
      // Triangular: re-evaluate (slack may admit more) only when we still
      // need results; otherwise leave deferred tiles unprocessed.
      if (!done) break;
    }
    if (static_cast<int>(exec.results.size()) >= config_.k) break;

    bool budget_left = x_->calls() + y_->calls() < config_.max_calls;
    int side = budget_left ? NextFetchSide() : 0;
    if (side == 0) {
      // No more fetches possible. Triangular completion widens its diagonal
      // threshold as a last resort (§4.4.2: c is "progressively increased")
      // so already-paid tiles beyond the diagonal can still be processed.
      if (config_.strategy.completion == JoinCompletion::kTriangular &&
          !space_.Frontier().empty()) {
        double step =
            1.0 / std::max(1, std::max(space_.chunks_x(), space_.chunks_y()));
        slack_ += step;
        continue;
      }
      break;
    }
    if (side < 0) {
      SECO_ASSIGN_OR_RETURN(bool got, x_->FetchNext());
      if (got) {
        space_.AddChunkX(x_->chunk(x_->num_chunks() - 1).RepresentativeScore());
        exec.events.push_back(
            JoinEvent{JoinEventKind::kFetchX, x_->num_chunks() - 1, Tile{}});
      }
    } else {
      SECO_ASSIGN_OR_RETURN(bool got, y_->FetchNext());
      if (got) {
        space_.AddChunkY(y_->chunk(y_->num_chunks() - 1).RepresentativeScore());
        exec.events.push_back(
            JoinEvent{JoinEventKind::kFetchY, y_->num_chunks() - 1, Tile{}});
      }
    }
    if (x_->exhausted() && y_->exhausted() && space_.Frontier().empty()) {
      break;
    }
  }
  x_->AbandonPrefetches();
  y_->AbandonPrefetches();
  exec.calls_x = x_->calls();
  exec.calls_y = y_->calls();
  exec.speculative_calls = x_->prefetches_issued() + y_->prefetches_issued();
  exec.speculative_wasted =
      exec.speculative_calls -
      (x_->prefetches_consumed() + y_->prefetches_consumed());
  exec.latency_sequential_ms = x_->total_latency_ms() + y_->total_latency_ms();
  exec.latency_parallel_ms =
      std::max(x_->total_latency_ms(), y_->total_latency_ms());
  exec.exhausted_x = x_->exhausted();
  exec.exhausted_y = y_->exhausted();
  stats_.chunks_decoded = x_->chunks_decoded() + y_->chunks_decoded();
  stats_.decode_fallbacks = x_->decode_fallbacks() + y_->decode_fallbacks();
  exec.columnar = stats_;
  exec.space = space_;
  return exec;
}

}  // namespace seco
