#include "join/topk_join.h"

#include <algorithm>
#include <chrono>
#include <queue>

namespace seco {

namespace {

/// A buffered tuple with its score and source chunk.
struct Buffered {
  const Tuple* tuple;
  double score;
  int chunk;
};

struct Candidate {
  JoinResultTuple result;
  bool operator<(const Candidate& other) const {
    // std::priority_queue is a max-heap on operator<.
    return result.combined < other.result.combined;
  }
};

/// One side's canonical key arrays, grown chunk by chunk alongside its
/// `Buffered` vector so kernel scans can run against the whole buffer. Each
/// representation has its own validity flag: once a chunk can't feed a
/// representation the flag drops forever and that array is never consulted
/// again — later chunks keep the *other* representations aligned.
struct SideKeys {
  bool any = false;  // at least one chunk appended
  bool valid = true;
  KeyFamily family = KeyFamily::kFallback;
  bool i64_ok = true;
  bool f64_ok = true;
  std::vector<int64_t> i64;
  std::vector<int64_t> f64_bits;
  std::vector<uint32_t> codes;

  void Append(const ColumnChunk* cc) {
    if (!valid) return;
    if (cc == nullptr || cc->key_fallback()) {
      valid = false;
      return;
    }
    const KeyColumn& k = cc->key();
    if (!any) {
      any = true;
      family = k.family;
    } else if (family != k.family) {
      bool numeric_mix =
          (family == KeyFamily::kInt || family == KeyFamily::kNumeric) &&
          (k.family == KeyFamily::kInt || k.family == KeyFamily::kNumeric);
      if (!numeric_mix) {
        valid = false;
        return;
      }
      family = KeyFamily::kNumeric;
    }
    if (k.i64 != nullptr && i64_ok) {
      i64.insert(i64.end(), k.i64, k.i64 + k.size);
    } else {
      i64_ok = false;
    }
    if (k.f64_bits != nullptr && k.f64_valid && f64_ok) {
      f64_bits.insert(f64_bits.end(), k.f64_bits, k.f64_bits + k.size);
    } else {
      f64_ok = false;
    }
    if (k.codes != nullptr) {
      codes.insert(codes.end(), k.codes, k.codes + k.size);
    }
  }

  /// A KeyColumn view over the accumulated buffer, for pair-mode checks.
  KeyColumn View() const {
    KeyColumn c;
    c.family = (valid && any) ? family : KeyFamily::kFallback;
    if (c.family == KeyFamily::kInt && !i64_ok) c.family = KeyFamily::kFallback;
    if (c.family == KeyFamily::kBool && !i64_ok) c.family = KeyFamily::kFallback;
    c.i64 = i64_ok ? i64.data() : nullptr;
    c.f64_bits = f64_ok ? f64_bits.data() : nullptr;
    c.f64_valid = f64_ok;
    c.codes = codes.data();
    return c;
  }
};

}  // namespace

Result<TopKJoinExecution> TopKJoinExecutor::Run() {
  TopKJoinExecution exec;
  std::vector<Buffered> buffer_x, buffer_y;
  std::priority_queue<Candidate> candidates;

  const bool columnar = config_.columns.has_value();
  KeyDictionary dict;
  ColumnarStats stats;
  SideKeys keys_x, keys_y;
  std::vector<int32_t> matches;
  std::vector<double> scratch_s, scratch_comb;
  if (columnar) {
    x_->EnableColumnar(config_.columns->x, &dict);
    y_->EnableColumnar(config_.columns->y, &dict);
  }

  double top_x = -1.0, last_x = 1.0;  // best / most recent score per side
  double top_y = -1.0, last_y = 1.0;
  bool done_x = false, done_y = false;

  auto threshold = [&]() {
    // Before a side produced anything, its top is unknown: the bound must
    // stay at the maximum (1.0-scored) assumption for that side.
    double tx = top_x < 0 ? 1.0 : top_x;
    double ty = top_y < 0 ? 1.0 : top_y;
    double lx = done_x ? 0.0 : last_x;
    double ly = done_y ? 0.0 : last_y;
    return std::max(config_.weight_x * tx + config_.weight_y * ly,
                    config_.weight_x * lx + config_.weight_y * ty);
  };

  auto emit_ready = [&]() {
    double t = threshold();
    while (!candidates.empty() &&
           static_cast<int>(exec.results.size()) < config_.k &&
           candidates.top().result.combined >= t - 1e-12) {
      exec.results.push_back(candidates.top().result);
      candidates.pop();
    }
  };

  auto join_new_chunk = [&](bool is_x) -> Status {
    ChunkSource* self = is_x ? x_ : y_;
    const Chunk& chunk = self->chunk(self->num_chunks() - 1);
    std::vector<Buffered>& own = is_x ? buffer_x : buffer_y;
    const std::vector<Buffered>& other = is_x ? buffer_y : buffer_x;
    size_t own_start = own.size();
    for (size_t i = 0; i < chunk.tuples.size(); ++i) {
      double score = i < chunk.scores.size() ? chunk.scores[i] : 0.0;
      own.push_back(Buffered{&chunk.tuples[i], score, self->num_chunks() - 1});
      if (is_x) {
        if (top_x < 0) top_x = score;
        last_x = score;
      } else {
        if (top_y < 0) top_y = score;
        last_y = score;
      }
    }
    SideKeys& own_keys = is_x ? keys_x : keys_y;
    const SideKeys& other_keys = is_x ? keys_y : keys_x;
    if (columnar) {
      own_keys.Append(self->columns(self->num_chunks() - 1));
    }
    std::optional<PairMode> mode;
    if (columnar && other_keys.any && !other.empty()) {
      mode = ComparablePairMode(own_keys.View(), other_keys.View());
    }
    // Join the new tuples against the whole opposite buffer.
    if (mode.has_value()) {
      // Kernel path: each new tuple's canonical key scans the opposite
      // buffer's key array (ascending, the scalar loop's order), then the
      // matches' scores combine in a batch. Candidates are pushed in the
      // same order with bit-identical combined scores, so the priority
      // queue behaves exactly as on the scalar path.
      const KeyColumn other_view = other_keys.View();
      for (size_t i = own_start; i < own.size(); ++i) {
        auto t0 = std::chrono::steady_clock::now();
        matches.clear();
        switch (*mode) {
          case PairMode::kI64:
            simd::MatchKeyI64(own_keys.i64[i], other_view.i64, other.size(),
                              &matches);
            break;
          case PairMode::kF64Bits:
            simd::MatchKeyI64(own_keys.f64_bits[i], other_view.f64_bits,
                              other.size(), &matches);
            break;
          case PairMode::kDict:
            simd::MatchKeyU32(own_keys.codes[i], other_view.codes,
                              other.size(), &matches);
            break;
        }
        scratch_s.resize(matches.size());
        scratch_comb.resize(matches.size());
        for (size_t m = 0; m < matches.size(); ++m) {
          scratch_s[m] = other[matches[m]].score;
        }
        // weight_x always multiplies the X score; IEEE addition commutes
        // bitwise, so the broadcast-first form matches the scalar
        // `wx * bx.score + wy * by.score` exactly on both sides.
        if (is_x) {
          simd::CombineScores1(config_.weight_x, own[i].score,
                               config_.weight_y, scratch_s.data(),
                               matches.size(), scratch_comb.data());
        } else {
          simd::CombineScores1(config_.weight_y, own[i].score,
                               config_.weight_x, scratch_s.data(),
                               matches.size(), scratch_comb.data());
        }
        stats.kernel_ns += std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        for (size_t m = 0; m < matches.size(); ++m) {
          const Buffered& o = other[matches[m]];
          const Buffered& bx = is_x ? own[i] : o;
          const Buffered& by = is_x ? o : own[i];
          JoinResultTuple result;
          result.x = *bx.tuple;
          result.y = *by.tuple;
          result.score_x = bx.score;
          result.score_y = by.score;
          result.combined = scratch_comb[m];
          result.tile = Tile{bx.chunk, by.chunk};
          candidates.push(Candidate{std::move(result)});
        }
      }
      ++stats.kernel_batches;
      stats.kernel_rows += static_cast<long long>(own.size() - own_start) *
                           static_cast<long long>(other.size());
    } else {
      if (columnar) {
        ++stats.scalar_batches;
        stats.scalar_rows += static_cast<long long>(own.size() - own_start) *
                             static_cast<long long>(other.size());
      }
      for (size_t i = own_start; i < own.size(); ++i) {
        for (const Buffered& o : other) {
          const Buffered& bx = is_x ? own[i] : o;
          const Buffered& by = is_x ? o : own[i];
          SECO_ASSIGN_OR_RETURN(bool match, predicate_(*bx.tuple, *by.tuple));
          if (!match) continue;
          JoinResultTuple result;
          result.x = *bx.tuple;
          result.y = *by.tuple;
          result.score_x = bx.score;
          result.score_y = by.score;
          result.combined = config_.weight_x * bx.score + config_.weight_y * by.score;
          result.tile = Tile{bx.chunk, by.chunk};
          candidates.push(Candidate{std::move(result)});
        }
      }
    }
    return Status::OK();
  };

  while (static_cast<int>(exec.results.size()) < config_.k) {
    emit_ready();
    if (static_cast<int>(exec.results.size()) >= config_.k) break;

    done_x = x_->exhausted();
    done_y = y_->exhausted();
    if (done_x && done_y) {
      // Threshold collapses to what the tops can still pair with (nothing):
      // drain remaining candidates in order.
      while (!candidates.empty() &&
             static_cast<int>(exec.results.size()) < config_.k) {
        exec.results.push_back(candidates.top().result);
        candidates.pop();
      }
      exec.guaranteed = true;
      break;
    }
    if (x_->calls() + y_->calls() >= config_.max_calls) break;

    // HRJN* descent: fetch the side whose term dominates the threshold.
    double term_x = config_.weight_x * (done_x ? 0.0 : last_x) +
                    config_.weight_y * (top_y < 0 ? 1.0 : top_y);
    double term_y = config_.weight_x * (top_x < 0 ? 1.0 : top_x) +
                    config_.weight_y * (done_y ? 0.0 : last_y);
    bool fetch_x;
    if (done_x) {
      fetch_x = false;
    } else if (done_y) {
      fetch_x = true;
    } else if (x_->num_chunks() == 0) {
      fetch_x = true;  // bootstrap X first, then Y
    } else if (y_->num_chunks() == 0) {
      fetch_x = false;
    } else {
      fetch_x = term_x >= term_y;
    }

    ChunkSource* side = fetch_x ? x_ : y_;
    SECO_ASSIGN_OR_RETURN(bool got, side->FetchNext());
    if (got) {
      SECO_RETURN_IF_ERROR(join_new_chunk(fetch_x));
    } else if (fetch_x) {
      last_x = 0.0;
    } else {
      last_y = 0.0;
    }
  }

  if (static_cast<int>(exec.results.size()) >= config_.k) {
    exec.guaranteed = true;
  }
  exec.calls_x = x_->calls();
  exec.calls_y = y_->calls();
  if (columnar) {
    stats.chunks_decoded = x_->chunks_decoded() + y_->chunks_decoded();
    stats.decode_fallbacks = x_->decode_fallbacks() + y_->decode_fallbacks();
  }
  exec.columnar = stats;
  exec.final_threshold = threshold();
  exec.latency_sequential_ms = x_->total_latency_ms() + y_->total_latency_ms();
  exec.latency_parallel_ms =
      std::max(x_->total_latency_ms(), y_->total_latency_ms());
  return exec;
}

}  // namespace seco
