#include "join/topk_join.h"

#include <algorithm>
#include <queue>

namespace seco {

namespace {

/// A buffered tuple with its score and source chunk.
struct Buffered {
  const Tuple* tuple;
  double score;
  int chunk;
};

struct Candidate {
  JoinResultTuple result;
  bool operator<(const Candidate& other) const {
    // std::priority_queue is a max-heap on operator<.
    return result.combined < other.result.combined;
  }
};

}  // namespace

Result<TopKJoinExecution> TopKJoinExecutor::Run() {
  TopKJoinExecution exec;
  std::vector<Buffered> buffer_x, buffer_y;
  std::priority_queue<Candidate> candidates;

  double top_x = -1.0, last_x = 1.0;  // best / most recent score per side
  double top_y = -1.0, last_y = 1.0;
  bool done_x = false, done_y = false;

  auto threshold = [&]() {
    // Before a side produced anything, its top is unknown: the bound must
    // stay at the maximum (1.0-scored) assumption for that side.
    double tx = top_x < 0 ? 1.0 : top_x;
    double ty = top_y < 0 ? 1.0 : top_y;
    double lx = done_x ? 0.0 : last_x;
    double ly = done_y ? 0.0 : last_y;
    return std::max(config_.weight_x * tx + config_.weight_y * ly,
                    config_.weight_x * lx + config_.weight_y * ty);
  };

  auto emit_ready = [&]() {
    double t = threshold();
    while (!candidates.empty() &&
           static_cast<int>(exec.results.size()) < config_.k &&
           candidates.top().result.combined >= t - 1e-12) {
      exec.results.push_back(candidates.top().result);
      candidates.pop();
    }
  };

  auto join_new_chunk = [&](bool is_x) -> Status {
    ChunkSource* self = is_x ? x_ : y_;
    const Chunk& chunk = self->chunk(self->num_chunks() - 1);
    std::vector<Buffered>& own = is_x ? buffer_x : buffer_y;
    const std::vector<Buffered>& other = is_x ? buffer_y : buffer_x;
    size_t own_start = own.size();
    for (size_t i = 0; i < chunk.tuples.size(); ++i) {
      double score = i < chunk.scores.size() ? chunk.scores[i] : 0.0;
      own.push_back(Buffered{&chunk.tuples[i], score, self->num_chunks() - 1});
      if (is_x) {
        if (top_x < 0) top_x = score;
        last_x = score;
      } else {
        if (top_y < 0) top_y = score;
        last_y = score;
      }
    }
    // Join the new tuples against the whole opposite buffer.
    for (size_t i = own_start; i < own.size(); ++i) {
      for (const Buffered& o : other) {
        const Buffered& bx = is_x ? own[i] : o;
        const Buffered& by = is_x ? o : own[i];
        SECO_ASSIGN_OR_RETURN(bool match, predicate_(*bx.tuple, *by.tuple));
        if (!match) continue;
        JoinResultTuple result;
        result.x = *bx.tuple;
        result.y = *by.tuple;
        result.score_x = bx.score;
        result.score_y = by.score;
        result.combined = config_.weight_x * bx.score + config_.weight_y * by.score;
        result.tile = Tile{bx.chunk, by.chunk};
        candidates.push(Candidate{std::move(result)});
      }
    }
    return Status::OK();
  };

  while (static_cast<int>(exec.results.size()) < config_.k) {
    emit_ready();
    if (static_cast<int>(exec.results.size()) >= config_.k) break;

    done_x = x_->exhausted();
    done_y = y_->exhausted();
    if (done_x && done_y) {
      // Threshold collapses to what the tops can still pair with (nothing):
      // drain remaining candidates in order.
      while (!candidates.empty() &&
             static_cast<int>(exec.results.size()) < config_.k) {
        exec.results.push_back(candidates.top().result);
        candidates.pop();
      }
      exec.guaranteed = true;
      break;
    }
    if (x_->calls() + y_->calls() >= config_.max_calls) break;

    // HRJN* descent: fetch the side whose term dominates the threshold.
    double term_x = config_.weight_x * (done_x ? 0.0 : last_x) +
                    config_.weight_y * (top_y < 0 ? 1.0 : top_y);
    double term_y = config_.weight_x * (top_x < 0 ? 1.0 : top_x) +
                    config_.weight_y * (done_y ? 0.0 : last_y);
    bool fetch_x;
    if (done_x) {
      fetch_x = false;
    } else if (done_y) {
      fetch_x = true;
    } else if (x_->num_chunks() == 0) {
      fetch_x = true;  // bootstrap X first, then Y
    } else if (y_->num_chunks() == 0) {
      fetch_x = false;
    } else {
      fetch_x = term_x >= term_y;
    }

    ChunkSource* side = fetch_x ? x_ : y_;
    SECO_ASSIGN_OR_RETURN(bool got, side->FetchNext());
    if (got) {
      SECO_RETURN_IF_ERROR(join_new_chunk(fetch_x));
    } else if (fetch_x) {
      last_x = 0.0;
    } else {
      last_y = 0.0;
    }
  }

  if (static_cast<int>(exec.results.size()) >= config_.k) {
    exec.guaranteed = true;
  }
  exec.calls_x = x_->calls();
  exec.calls_y = y_->calls();
  exec.final_threshold = threshold();
  exec.latency_sequential_ms = x_->total_latency_ms() + y_->total_latency_ms();
  exec.latency_parallel_ms =
      std::max(x_->total_latency_ms(), y_->total_latency_ms());
  return exec;
}

}  // namespace seco
