#include "join/strategy_select.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace seco {

void ReduceRatio(double a, double b, int max_r, int* out_a, int* out_b) {
  if (a <= 0 || b <= 0) {
    *out_a = 1;
    *out_b = 1;
    return;
  }
  // Find the best small-integer approximation of a/b.
  double target = a / b;
  int best_x = 1, best_y = 1;
  double best_err = std::abs(target - 1.0);
  for (int x = 1; x <= max_r; ++x) {
    for (int y = 1; y <= max_r; ++y) {
      if (std::gcd(x, y) != 1) continue;
      double err = std::abs(target - static_cast<double>(x) / y);
      if (err < best_err) {
        best_err = err;
        best_x = x;
        best_y = y;
      }
    }
  }
  *out_a = best_x;
  *out_b = best_y;
}

void ApplyAutoStrategies(QueryPlan* plan) {
  for (int id = 0; id < plan->num_nodes(); ++id) {
    PlanNode& node = plan->mutable_node(id);
    if (node.kind != PlanNodeKind::kParallelJoin) continue;
    const ServiceInterface* left = nullptr;
    const ServiceInterface* right = nullptr;
    for (int pred : node.inputs) {
      const PlanNode& p = plan->node(pred);
      if (p.kind != PlanNodeKind::kServiceCall || !p.iface) continue;
      if (!left) {
        left = p.iface.get();
      } else if (!right) {
        right = p.iface.get();
      }
    }
    if (left && right) {
      node.strategy = ChooseStrategy(*left, *right);
    }
  }
}

JoinStrategy ChooseStrategy(const ServiceInterface& x, const ServiceInterface& y) {
  JoinStrategy strategy;
  bool x_step = x.stats().decay == ScoreDecay::kStep;
  bool y_step = y.stats().decay == ScoreDecay::kStep;
  if (x_step || y_step) {
    strategy.invocation = JoinInvocation::kNestedLoop;
    strategy.completion = JoinCompletion::kRectangular;
    return strategy;
  }
  strategy.invocation = JoinInvocation::kMergeScan;
  strategy.completion = JoinCompletion::kTriangular;
  // Variable inter-service ratio: call the cheaper (faster) service more.
  ReduceRatio(y.stats().latency_ms, x.stats().latency_ms, 5, &strategy.ratio_x,
              &strategy.ratio_y);
  return strategy;
}

}  // namespace seco
