#ifndef SECO_JOIN_PIPE_JOIN_H_
#define SECO_JOIN_PIPE_JOIN_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "join/chunk_source.h"
#include "join/parallel_join.h"

namespace seco {

/// Maps an outer tuple to the input values of the inner service call.
using PipeInputFn = std::function<std::vector<Value>(const Tuple&)>;

/// Configuration of a standalone binary pipe join (§4.2.1): the outer
/// service is drained chunk by chunk; each outer tuple's join attributes are
/// piped as inputs of the inner service, fetching `fetches_per_input` chunks
/// per outer tuple (nested-loop with rectangular completion, the natural
/// pipe method per §4.5).
struct PipeJoinConfig {
  int k = 10;
  int max_calls = 200;
  int fetches_per_input = 1;
  /// Keep only the best n inner results per outer tuple (<=0: all).
  int keep_per_input = 0;
  double weight_outer = 0.5;
  double weight_inner = 0.5;
  /// Opts the pipe into the columnar data plane (`x` = outer key attribute,
  /// `y` = inner). REQUIRES `predicate` to be equality of exactly those two
  /// attributes; inner chunks whose key column is kernel-comparable with the
  /// outer tuple's canonical key take a broadcast key-scan kernel instead of
  /// per-pair predicate calls. Ignored when `predicate` is null (every inner
  /// tuple is accepted, so there is nothing to accelerate).
  std::optional<ColumnJoinSpec> columns;
};

/// Executes a pipe join between `outer` (drained in ranking order) and the
/// keyed service `inner_iface`. An optional residual `predicate` re-checks
/// pairs (pass nullptr to accept every inner result of a piped call).
/// Latency is inherently sequential: the inner call depends on outer data,
/// so `latency_parallel_ms == latency_sequential_ms`.
Result<JoinExecution> RunPipeJoin(ChunkSource* outer,
                                  std::shared_ptr<ServiceInterface> inner_iface,
                                  const PipeInputFn& inner_inputs,
                                  const JoinPredicate& predicate,
                                  const PipeJoinConfig& config);

}  // namespace seco

#endif  // SECO_JOIN_PIPE_JOIN_H_
