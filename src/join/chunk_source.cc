#include "join/chunk_source.h"

namespace seco {

Result<bool> ChunkSource::FetchNext() {
  if (exhausted_) return false;
  ServiceRequest request;
  request.inputs = inputs_;
  request.chunk_index = num_chunks();
  ServiceResponse resp;
  std::string cache_key;
  bool from_cache = false;
  if (cache_ != nullptr) {
    cache_key = ServiceCallCache::Key(iface_->name(),
                                      SerializeBinding(inputs_),
                                      request.chunk_index);
    std::optional<ServiceResponse> cached = cache_->Get(cache_key);
    if (cached.has_value()) {
      resp = std::move(*cached);
      from_cache = true;
      ++cache_hits_;
    }
  }
  if (!from_cache) {
    SECO_ASSIGN_OR_RETURN(resp, iface_->handler()->Call(request));
    if (cache_ != nullptr) cache_->Put(cache_key, resp);
    ++calls_;
    total_latency_ms_ += resp.latency_ms;
  }
  Chunk chunk;
  chunk.tuples = std::move(resp.tuples);
  chunk.scores = std::move(resp.scores);
  if (chunk.tuples.empty()) {
    exhausted_ = true;
    return false;
  }
  if (chunk.scores.empty() && iface_->is_ranked()) {
    // Opaque ranking: the service returns results in relevance order but no
    // scores. Translate positions into a monotone [0..1] score (§3.1 fn. 3).
    chunk.scores.reserve(chunk.tuples.size());
    for (size_t i = 0; i < chunk.tuples.size(); ++i) {
      chunk.scores.push_back(1.0 / (1.0 + tuples_seen_ + static_cast<int>(i)));
    }
    scores_synthesized_ = true;
  }
  tuples_seen_ += static_cast<int>(chunk.tuples.size());
  chunks_.push_back(std::move(chunk));
  if (resp.exhausted) exhausted_ = true;
  return true;
}

}  // namespace seco
