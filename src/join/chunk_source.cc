#include "join/chunk_source.h"

namespace seco {

bool ChunkSource::IngestResponse(ServiceResponse resp, bool from_cache) {
  if (from_cache) {
    ++cache_hits_;
  } else {
    ++calls_;
    total_latency_ms_ += resp.latency_ms;
  }
  Chunk chunk;
  chunk.tuples = std::move(resp.tuples);
  chunk.scores = std::move(resp.scores);
  if (chunk.tuples.empty()) {
    exhausted_ = true;
    return false;
  }
  if (chunk.scores.empty() && iface_->is_ranked()) {
    // Opaque ranking: the service returns results in relevance order but no
    // scores. Translate positions into a monotone [0..1] score (§3.1 fn. 3).
    chunk.scores.reserve(chunk.tuples.size());
    for (size_t i = 0; i < chunk.tuples.size(); ++i) {
      chunk.scores.push_back(1.0 / (1.0 + tuples_seen_ + static_cast<int>(i)));
    }
    scores_synthesized_ = true;
  }
  tuples_seen_ += static_cast<int>(chunk.tuples.size());
  chunks_.push_back(std::move(chunk));
  if (columnar_path_.has_value()) DecodeChunkColumns(chunks_.back());
  if (resp.exhausted) exhausted_ = true;
  return true;
}

void ChunkSource::EnableColumnar(const AttrPath& key_path,
                                 KeyDictionary* dict) {
  columnar_path_ = key_path;
  dict_ = dict;
  // Backfill chunks fetched before opting in, keeping the deques parallel.
  while (columns_.size() < chunks_.size()) {
    DecodeChunkColumns(chunks_[columns_.size()]);
  }
}

void ChunkSource::DecodeChunkColumns(const Chunk& chunk) {
  columns_.push_back(
      ColumnChunk::Decode(chunk.tuples, chunk.scores, *columnar_path_, dict_));
  ++chunks_decoded_;
  if (columns_.back().key_fallback()) ++decode_fallbacks_;
}

Result<bool> ChunkSource::FetchNext() {
  if (exhausted_) return false;
  if (!pending_.empty()) {
    // Consume the oldest prefetch. Chunks are requested in index order
    // whether speculated or not, so this is exactly the chunk a synchronous
    // fetch would have requested — charge it now, identically.
    std::unique_ptr<PendingFetch> fetch = std::move(pending_.front());
    pending_.pop_front();
    ++prefetches_consumed_;
    fetch->done.wait();
    SECO_RETURN_IF_ERROR(fetch->response.status());
    return IngestResponse(std::move(fetch->response).value(),
                          fetch->from_cache);
  }
  ServiceRequest request;
  request.inputs = inputs_;
  request.chunk_index = next_chunk_++;
  ServiceResponse resp;
  bool from_cache = false;
  if (cache_ != nullptr) {
    std::string cache_key = ServiceCallCache::Key(
        iface_->name(), SerializeBinding(inputs_), request.chunk_index);
    std::optional<ServiceResponse> cached = cache_->Get(cache_key);
    if (cached.has_value()) {
      resp = std::move(*cached);
      from_cache = true;
    }
  }
  if (!from_cache) {
    SECO_ASSIGN_OR_RETURN(resp, effective_handler()->Call(request));
    if (cache_ != nullptr) {
      // Cache the clean response: reliability overhead belongs to this
      // attempt chain and must not replay on later hits.
      ServiceResponse clean = resp;
      clean.fault_overhead_ms = 0.0;
      cache_->Put(ServiceCallCache::Key(iface_->name(),
                                        SerializeBinding(inputs_),
                                        request.chunk_index),
                  clean);
    }
  }
  return IngestResponse(std::move(resp), from_cache);
}

bool ChunkSource::Prefetch(CallScheduler* scheduler) {
  if (exhausted_ || scheduler == nullptr) return false;
  auto fetch = std::make_unique<PendingFetch>();
  PendingFetch* slot = fetch.get();
  std::shared_ptr<ServiceInterface> iface = iface_;
  ServiceCallHandler* handler = effective_handler();
  std::vector<Value> inputs = inputs_;
  ServiceCallCache* cache = cache_;
  int chunk_index = next_chunk_;
  std::optional<std::future<Status>> job = scheduler->SubmitOne(
      [iface, handler, inputs = std::move(inputs), cache, chunk_index,
       slot]() -> Status {
        ServiceRequest request;
        request.inputs = inputs;
        request.chunk_index = chunk_index;
        std::string key;
        if (cache != nullptr) {
          key = ServiceCallCache::Key(iface->name(), SerializeBinding(inputs),
                                      chunk_index);
          std::optional<ServiceResponse> cached = cache->Get(key);
          if (cached.has_value()) {
            slot->response = std::move(*cached);
            slot->from_cache = true;
            return Status::OK();
          }
        }
        Result<ServiceResponse> resp = handler->Call(request);
        if (resp.ok() && cache != nullptr) {
          ServiceResponse clean = resp.value();
          clean.fault_overhead_ms = 0.0;
          cache->Put(key, clean);
        }
        slot->response = std::move(resp);
        return slot->response.status();
      });
  if (!job.has_value()) return false;  // inline mode: never speculate
  slot->done = std::move(*job);
  ++next_chunk_;
  ++prefetches_issued_;
  pending_.push_back(std::move(fetch));
  return true;
}

void ChunkSource::AbandonPrefetches() {
  for (std::unique_ptr<PendingFetch>& fetch : pending_) {
    if (fetch->done.valid()) fetch->done.wait();
  }
  // Un-request the abandoned chunks so a later synchronous FetchNext picks
  // up where consumption (not speculation) stopped.
  next_chunk_ -= static_cast<int>(pending_.size());
  pending_.clear();
}

}  // namespace seco
