#ifndef SECO_JOIN_PARALLEL_JOIN_H_
#define SECO_JOIN_PARALLEL_JOIN_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/column_chunk.h"
#include "data/kernels.h"
#include "join/chunk_source.h"
#include "join/clock.h"
#include "join/search_space.h"
#include "plan/plan.h"

namespace seco {

/// Predicate deciding whether a pair (x, y) joins.
using JoinPredicate = std::function<Result<bool>(const Tuple&, const Tuple&)>;

/// Configuration of a binary parallel join run (§4).
struct ParallelJoinConfig {
  JoinStrategy strategy;
  /// Stop once this many result tuples have been produced (k).
  int k = 10;
  /// Safety budget on total service calls.
  int max_calls = 200;
  /// Ranking-function weights combining the two scores.
  double weight_x = 0.5;
  double weight_y = 0.5;
  /// Optional worker pool (not owned). When set, the priming fetches of
  /// the two sides — always the first two calls of any strategy, since no
  /// tile exists before both sides hold a chunk — overlap on the real wall
  /// clock. Fetch *decisions* stay sequential, so traces, call counts and
  /// results are identical with and without a pool.
  ThreadPool* pool = nullptr;
  /// With a pool, keep up to this many speculative chunk fetches in flight
  /// per side while tiles are processed (`ChunkSource::Prefetch`). Charged
  /// calls, results, and the fetch schedule stay identical — consumption
  /// order is fixed and accounting happens at consumption; only the wall
  /// clock changes. Speculation reserves budget (consumed + in-flight stays
  /// under max_calls), so it can under-speculate near the budget but never
  /// overdraw it. 0 (default) disables speculation beyond the priming pair.
  int prefetch_depth = 0;
  /// Opts the executor into the columnar data plane. REQUIRES the predicate
  /// to be equality of exactly these two attributes: tiles whose decoded key
  /// columns are kernel-comparable skip the per-pair predicate and run a
  /// SIMD merge-scan instead; every other tile (nulls, repeating groups,
  /// mixed types, dictionary overflow) still calls the predicate, so results
  /// are bit-identical with this set or not.
  std::optional<ColumnJoinSpec> columns;
};

/// What happened during a join run, for benches and property tests.
enum class JoinEventKind { kFetchX, kFetchY, kProcessTile };

struct JoinEvent {
  JoinEventKind kind;
  int chunk = -1;  // for fetches
  Tile tile;       // for tile processing
};

/// One joined pair with provenance.
struct JoinResultTuple {
  Tuple x;
  Tuple y;
  double score_x = 0.0;
  double score_y = 0.0;
  double combined = 0.0;
  Tile tile;
};

/// Full trace of a join execution.
struct JoinExecution {
  std::vector<JoinResultTuple> results;
  std::vector<JoinEvent> events;
  std::vector<Tile> tile_order;
  int calls_x = 0;
  int calls_y = 0;
  /// Speculative fetches issued / issued-but-never-consumed across both
  /// sides. Wasted fetches are not in calls_x/calls_y; their responses stay
  /// in the call cache when one is attached.
  int speculative_calls = 0;
  int speculative_wasted = 0;
  /// Simulated elapsed time if the two services are called one at a time.
  double latency_sequential_ms = 0.0;
  /// Simulated elapsed time with the two services called concurrently
  /// (parallel join): max of the per-service latency sums.
  double latency_parallel_ms = 0.0;
  bool exhausted_x = false;
  bool exhausted_y = false;
  /// Columnar data-plane counters (all zero when `config.columns` unset).
  ColumnarStats columnar;
  /// Final search-space state (chunk representative scores etc.).
  SearchSpace space;
};

/// Executes a binary join of two ranked chunked sources under an
/// invocation strategy (nested-loop / merge-scan with inter-service ratio,
/// §4.3) and a completion strategy (rectangular / triangular, §4.4).
///
/// Invocation decides which service to call next; completion decides which
/// available tiles to process. Tiles are processed in decreasing
/// representative-score order among those admitted, making both completions
/// locally extraction-optimal. Results are emitted tile by tile
/// (non-blocking dataflow) until k results, exhaustion, or budget.
class ParallelJoinExecutor {
 public:
  ParallelJoinExecutor(ChunkSource* source_x, ChunkSource* source_y,
                       JoinPredicate predicate, ParallelJoinConfig config)
      : x_(source_x), y_(source_y), predicate_(std::move(predicate)),
        config_(config) {}

  Result<JoinExecution> Run();

 private:
  /// Which side to fetch next; -1 = X, +1 = Y, 0 = none (stop fetching).
  /// Merge-scan paces the two services with a Clock at the configured
  /// inter-service ratio (§4.3.2).
  int NextFetchSide();
  /// Tiles admitted by the completion strategy right now, best first.
  std::vector<Tile> AdmittedTiles() const;
  Result<int> ProcessTile(const Tile& tile, JoinExecution* exec);

  ChunkSource* x_;
  ChunkSource* y_;
  JoinPredicate predicate_;
  ParallelJoinConfig config_;
  SearchSpace space_;
  /// Shared join-key dictionary: both sides intern into it, so equal codes
  /// mean equal strings across the two sources.
  KeyDictionary dict_;
  ColumnarStats stats_;
  /// Kernel scratch, reused across tiles to stay allocation-free.
  std::vector<simd::RowPair> pairs_;
  std::vector<double> scratch_sx_, scratch_sy_, scratch_comb_;
  /// Call-rate regulator for merge-scan (created on first use).
  std::optional<Clock> clock_;
  /// Triangular threshold slack: admits further diagonals when the base
  /// triangle is exhausted but more results are needed (§4.4.2: "constant
  /// values progressively increased").
  double slack_ = 0.0;
};

}  // namespace seco

#endif  // SECO_JOIN_PARALLEL_JOIN_H_
