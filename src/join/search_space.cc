#include "join/search_space.h"

#include <algorithm>

namespace seco {

bool SearchSpace::Explored(const Tile& t) const {
  return std::find(explored_.begin(), explored_.end(), t) != explored_.end();
}

std::vector<Tile> SearchSpace::Frontier() const {
  std::vector<Tile> out;
  for (int x = 0; x < chunks_x(); ++x) {
    for (int y = 0; y < chunks_y(); ++y) {
      Tile t{x, y};
      if (!Explored(t)) out.push_back(t);
    }
  }
  return out;
}

bool IsGloballyExtractionOptimal(const std::vector<Tile>& order,
                                 const std::vector<double>& scores_x,
                                 const std::vector<double>& scores_y,
                                 double epsilon) {
  double prev = 2.0;  // above any product of [0,1] scores
  for (const Tile& t : order) {
    if (t.x >= static_cast<int>(scores_x.size()) ||
        t.y >= static_cast<int>(scores_y.size())) {
      return false;  // processed a tile that was never fetched
    }
    double score = scores_x[t.x] * scores_y[t.y];
    if (score > prev + epsilon) return false;
    prev = score;
  }
  return true;
}

bool SatisfiesAdjacencyOrder(const std::vector<Tile>& order) {
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = i + 1; j < order.size(); ++j) {
      if (order[i].AdjacentTo(order[j]) &&
          order[i].IndexSum() > order[j].IndexSum()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace seco
