#include "join/clock.h"

namespace seco {

Result<Clock> Clock::Create(std::vector<int> ratios) {
  if (ratios.empty()) {
    return Status::InvalidArgument("clock needs at least one service");
  }
  for (int r : ratios) {
    if (r < 1) {
      return Status::InvalidArgument("clock ratios must be >= 1");
    }
  }
  return Clock(std::move(ratios));
}

int Clock::NextService() {
  // Smooth weighted round-robin: every tick each active service earns its
  // ratio as credit; the richest service is called and pays the total
  // active weight. This interleaves calls as evenly as possible.
  double total = 0.0;
  for (int i = 0; i < num_services(); ++i) {
    if (!suspended_[i]) total += ratios_[i];
  }
  if (total == 0.0) return -1;
  int best = -1;
  for (int i = 0; i < num_services(); ++i) {
    if (suspended_[i]) continue;
    credits_[i] += ratios_[i];
    if (best < 0 || credits_[i] > credits_[best]) best = i;
  }
  credits_[best] -= total;
  ++calls_[best];
  return best;
}

void Clock::Suspend(int service) {
  if (service >= 0 && service < num_services()) suspended_[service] = true;
}

void Clock::Resume(int service) {
  if (service >= 0 && service < num_services()) suspended_[service] = false;
}

}  // namespace seco
