#ifndef SECO_JOIN_STRATEGY_SELECT_H_
#define SECO_JOIN_STRATEGY_SELECT_H_

#include "plan/plan.h"
#include "service/service_interface.h"

namespace seco {

/// Picks a join strategy for a parallel join of two search services (§4.3):
/// nested-loop (with rectangular completion) when a side exhibits a step
/// scoring function — the step side becomes the drained service — otherwise
/// merge-scan with triangular completion and an inter-service call ratio
/// proportional to the inverse latencies (the cheaper service is called
/// more often), reduced to small integers.
JoinStrategy ChooseStrategy(const ServiceInterface& x, const ServiceInterface& y);

/// Reduces a positive ratio a:b to small coprime integers capped at `max_r`.
void ReduceRatio(double a, double b, int max_r, int* out_a, int* out_b);

/// Rewrites every parallel-join node of `plan` with the strategy chosen by
/// ChooseStrategy over its first two service-call predecessors. Call before
/// AnnotatePlan (the completion strategy affects cardinality estimates).
void ApplyAutoStrategies(QueryPlan* plan);

}  // namespace seco

#endif  // SECO_JOIN_STRATEGY_SELECT_H_
