#include "join/pipe_join.h"

namespace seco {

Result<JoinExecution> RunPipeJoin(ChunkSource* outer,
                                  std::shared_ptr<ServiceInterface> inner_iface,
                                  const PipeInputFn& inner_inputs,
                                  const JoinPredicate& predicate,
                                  const PipeJoinConfig& config) {
  JoinExecution exec;
  double inner_latency = 0.0;
  int inner_calls = 0;

  while (static_cast<int>(exec.results.size()) < config.k) {
    if (outer->calls() + inner_calls >= config.max_calls) break;
    SECO_ASSIGN_OR_RETURN(bool got, outer->FetchNext());
    if (!got) break;
    int chunk_idx = outer->num_chunks() - 1;
    const Chunk& outer_chunk = outer->chunk(chunk_idx);
    exec.events.push_back(JoinEvent{JoinEventKind::kFetchX, chunk_idx, Tile{}});

    for (size_t i = 0; i < outer_chunk.tuples.size(); ++i) {
      const Tuple& outer_tuple = outer_chunk.tuples[i];
      double outer_score = i < outer_chunk.scores.size() ? outer_chunk.scores[i] : 0.0;
      if (outer->calls() + inner_calls >= config.max_calls) break;

      ChunkSource inner(inner_iface, inner_inputs(outer_tuple));
      int kept = 0;
      for (int f = 0; f < config.fetches_per_input; ++f) {
        if (outer->calls() + inner_calls >= config.max_calls) break;
        SECO_ASSIGN_OR_RETURN(bool inner_got, inner.FetchNext());
        ++inner_calls;
        if (!inner_got) break;
        const Chunk& inner_chunk = inner.chunk(inner.num_chunks() - 1);
        for (size_t j = 0; j < inner_chunk.tuples.size(); ++j) {
          if (config.keep_per_input > 0 && kept >= config.keep_per_input) break;
          bool match = true;
          if (predicate) {
            SECO_ASSIGN_OR_RETURN(match,
                                  predicate(outer_tuple, inner_chunk.tuples[j]));
          }
          if (!match) continue;
          JoinResultTuple result;
          result.x = outer_tuple;
          result.y = inner_chunk.tuples[j];
          result.score_x = outer_score;
          result.score_y =
              j < inner_chunk.scores.size() ? inner_chunk.scores[j] : 0.0;
          result.combined = config.weight_outer * result.score_x +
                            config.weight_inner * result.score_y;
          result.tile = Tile{chunk_idx, inner.num_chunks() - 1};
          exec.results.push_back(std::move(result));
          ++kept;
        }
        if (config.keep_per_input > 0 && kept >= config.keep_per_input) break;
      }
      inner_latency += inner.total_latency_ms();
      if (static_cast<int>(exec.results.size()) >= config.k) break;
    }
    exec.exhausted_x = outer->exhausted();
  }

  exec.calls_x = outer->calls();
  exec.calls_y = inner_calls;
  // Pipe joins are sequential by construction: inner calls depend on outer
  // results, so nothing overlaps.
  exec.latency_sequential_ms = outer->total_latency_ms() + inner_latency;
  exec.latency_parallel_ms = exec.latency_sequential_ms;
  return exec;
}

}  // namespace seco
