#include "join/pipe_join.h"

#include <chrono>

#include "data/column_chunk.h"
#include "data/kernels.h"

namespace seco {

Result<JoinExecution> RunPipeJoin(ChunkSource* outer,
                                  std::shared_ptr<ServiceInterface> inner_iface,
                                  const PipeInputFn& inner_inputs,
                                  const JoinPredicate& predicate,
                                  const PipeJoinConfig& config) {
  JoinExecution exec;
  double inner_latency = 0.0;
  int inner_calls = 0;
  // With no residual predicate every inner tuple is kept — nothing to
  // accelerate; the columnar path exists to replace predicate calls.
  const bool columnar = config.columns.has_value() && predicate != nullptr;
  KeyDictionary dict;
  ColumnarStats stats;
  std::vector<int32_t> matches;
  std::vector<double> scratch_sy, scratch_comb;

  while (static_cast<int>(exec.results.size()) < config.k) {
    if (outer->calls() + inner_calls >= config.max_calls) break;
    SECO_ASSIGN_OR_RETURN(bool got, outer->FetchNext());
    if (!got) break;
    int chunk_idx = outer->num_chunks() - 1;
    const Chunk& outer_chunk = outer->chunk(chunk_idx);
    exec.events.push_back(JoinEvent{JoinEventKind::kFetchX, chunk_idx, Tile{}});

    for (size_t i = 0; i < outer_chunk.tuples.size(); ++i) {
      const Tuple& outer_tuple = outer_chunk.tuples[i];
      double outer_score = i < outer_chunk.scores.size() ? outer_chunk.scores[i] : 0.0;
      if (outer->calls() + inner_calls >= config.max_calls) break;

      ChunkSource inner(inner_iface, inner_inputs(outer_tuple));
      std::optional<ScalarKey> outer_key;
      if (columnar) {
        inner.EnableColumnar(config.columns->y, &dict);
        const AttrPath& xp = config.columns->x;
        if (!xp.is_sub_attribute() && xp.attr_index >= 0 &&
            xp.attr_index < outer_tuple.num_slots() &&
            outer_tuple.IsAtomic(xp.attr_index)) {
          outer_key =
              CanonicalScalarKey(outer_tuple.AtomicAt(xp.attr_index), &dict);
        }
      }
      int kept = 0;
      for (int f = 0; f < config.fetches_per_input; ++f) {
        if (outer->calls() + inner_calls >= config.max_calls) break;
        SECO_ASSIGN_OR_RETURN(bool inner_got, inner.FetchNext());
        ++inner_calls;
        if (!inner_got) break;
        int inner_idx = inner.num_chunks() - 1;
        const Chunk& inner_chunk = inner.chunk(inner_idx);
        const ColumnChunk* cols = inner.columns(inner_idx);
        std::optional<PairMode> mode;
        if (outer_key.has_value() && cols != nullptr) {
          mode = ComparableScalarMode(*outer_key, cols->key());
        }
        if (mode.has_value()) {
          // Broadcast key-scan: one kernel pass finds the inner rows whose
          // canonical key equals the outer tuple's, in ascending row order —
          // the order of the scalar loop — then scores combine in a batch.
          const KeyColumn& ky = cols->key();
          auto t0 = std::chrono::steady_clock::now();
          matches.clear();
          switch (*mode) {
            case PairMode::kI64:
              simd::MatchKeyI64(outer_key->i64, ky.i64, ky.size, &matches);
              break;
            case PairMode::kF64Bits:
              simd::MatchKeyI64(outer_key->f64_bits, ky.f64_bits, ky.size,
                                &matches);
              break;
            case PairMode::kDict:
              simd::MatchKeyU32(outer_key->code, ky.codes, ky.size, &matches);
              break;
          }
          scratch_sy.resize(matches.size());
          scratch_comb.resize(matches.size());
          for (size_t m = 0; m < matches.size(); ++m) {
            scratch_sy[m] = cols->scores()[matches[m]];
          }
          simd::CombineScores1(config.weight_outer, outer_score,
                               config.weight_inner, scratch_sy.data(),
                               matches.size(), scratch_comb.data());
          stats.kernel_ns += std::chrono::duration<double, std::nano>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
          ++stats.kernel_batches;
          stats.kernel_rows += static_cast<long long>(ky.size);
          for (size_t m = 0; m < matches.size(); ++m) {
            if (config.keep_per_input > 0 && kept >= config.keep_per_input) {
              break;
            }
            JoinResultTuple result;
            result.x = outer_tuple;
            result.y = inner_chunk.tuples[cols->row_ids()[matches[m]]];
            result.score_x = outer_score;
            result.score_y = scratch_sy[m];
            result.combined = scratch_comb[m];
            result.tile = Tile{chunk_idx, inner_idx};
            exec.results.push_back(std::move(result));
            ++kept;
          }
        } else {
          if (columnar) {
            ++stats.scalar_batches;
            stats.scalar_rows +=
                static_cast<long long>(inner_chunk.tuples.size());
          }
          for (size_t j = 0; j < inner_chunk.tuples.size(); ++j) {
            if (config.keep_per_input > 0 && kept >= config.keep_per_input) break;
            bool match = true;
            if (predicate) {
              SECO_ASSIGN_OR_RETURN(match,
                                    predicate(outer_tuple, inner_chunk.tuples[j]));
            }
            if (!match) continue;
            JoinResultTuple result;
            result.x = outer_tuple;
            result.y = inner_chunk.tuples[j];
            result.score_x = outer_score;
            result.score_y =
                j < inner_chunk.scores.size() ? inner_chunk.scores[j] : 0.0;
            result.combined = config.weight_outer * result.score_x +
                              config.weight_inner * result.score_y;
            result.tile = Tile{chunk_idx, inner_idx};
            exec.results.push_back(std::move(result));
            ++kept;
          }
        }
        if (config.keep_per_input > 0 && kept >= config.keep_per_input) break;
      }
      inner_latency += inner.total_latency_ms();
      stats.chunks_decoded += inner.chunks_decoded();
      stats.decode_fallbacks += inner.decode_fallbacks();
      if (static_cast<int>(exec.results.size()) >= config.k) break;
    }
    exec.exhausted_x = outer->exhausted();
  }

  exec.calls_x = outer->calls();
  exec.calls_y = inner_calls;
  exec.columnar = stats;
  // Pipe joins are sequential by construction: inner calls depend on outer
  // results, so nothing overlaps.
  exec.latency_sequential_ms = outer->total_latency_ms() + inner_latency;
  exec.latency_parallel_ms = exec.latency_sequential_ms;
  return exec;
}

}  // namespace seco
