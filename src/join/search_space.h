#ifndef SECO_JOIN_SEARCH_SPACE_H_
#define SECO_JOIN_SEARCH_SPACE_H_

#include <string>
#include <vector>

namespace seco {

/// A tile t_xy of the join search space (§4.1, Fig. 4): the rectangular
/// region of the Cartesian plane covering chunk `x` of service SX and chunk
/// `y` of service SY.
struct Tile {
  int x = 0;
  int y = 0;

  bool operator==(const Tile&) const = default;

  /// Tiles are adjacent if they share an edge (§4.1).
  bool AdjacentTo(const Tile& other) const {
    int dx = x - other.x, dy = y - other.y;
    return (dx == 0 && (dy == 1 || dy == -1)) ||
           (dy == 0 && (dx == 1 || dx == -1));
  }

  int IndexSum() const { return x + y; }
  std::string ToString() const {
    return "t(" + std::to_string(x) + "," + std::to_string(y) + ")";
  }
};

/// Book-keeping for the exploration of a binary join's search space: which
/// chunks have been fetched from each side, which tiles processed, and the
/// representative score of each chunk (the score of its first tuple, §4.1).
class SearchSpace {
 public:
  /// Registers a fetched chunk of SX / SY with its representative score.
  void AddChunkX(double representative_score) {
    scores_x_.push_back(representative_score);
  }
  void AddChunkY(double representative_score) {
    scores_y_.push_back(representative_score);
  }

  int chunks_x() const { return static_cast<int>(scores_x_.size()); }
  int chunks_y() const { return static_cast<int>(scores_y_.size()); }

  /// A tile is available once both of its chunks are fetched.
  bool Available(const Tile& t) const {
    return t.x < chunks_x() && t.y < chunks_y();
  }
  bool Explored(const Tile& t) const;

  /// Representative ranking of a tile: the product of the representative
  /// scores of its chunks (extraction-optimality orders by this, §4.1).
  double TileScore(const Tile& t) const { return scores_x_[t.x] * scores_y_[t.y]; }

  /// All available, not-yet-explored tiles.
  std::vector<Tile> Frontier() const;

  void MarkExplored(const Tile& t) { explored_.push_back(t); }
  const std::vector<Tile>& explored_order() const { return explored_; }

  const std::vector<double>& scores_x() const { return scores_x_; }
  const std::vector<double>& scores_y() const { return scores_y_; }

 private:
  std::vector<double> scores_x_;
  std::vector<double> scores_y_;
  std::vector<Tile> explored_;
};

/// Checks the §4.1 *global* extraction-optimality condition on a processed
/// tile order: tiles appear in non-increasing product-of-rankings order.
bool IsGloballyExtractionOptimal(const std::vector<Tile>& order,
                                 const std::vector<double>& scores_x,
                                 const std::vector<double>& scores_y,
                                 double epsilon = 1e-9);

/// Checks the §4.4 adjacency property: whenever two adjacent tiles are both
/// in `order`, the one with the smaller index sum comes first.
bool SatisfiesAdjacencyOrder(const std::vector<Tile>& order);

}  // namespace seco

#endif  // SECO_JOIN_SEARCH_SPACE_H_
