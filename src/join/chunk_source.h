#ifndef SECO_JOIN_CHUNK_SOURCE_H_
#define SECO_JOIN_CHUNK_SOURCE_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/call_cache.h"
#include "service/service_interface.h"

namespace seco {

/// One fetched chunk: tuples in ranking order with their scores (scores are
/// empty for unranked services).
struct Chunk {
  std::vector<Tuple> tuples;
  std::vector<double> scores;

  /// The representative score of the chunk: its first tuple's score, or 1.0
  /// when unranked / 0.0 when empty.
  double RepresentativeScore() const {
    if (tuples.empty()) return 0.0;
    return scores.empty() ? 1.0 : scores.front();
  }
};

/// Pulls successive chunks from a service interface under one fixed input
/// binding, tracking calls and simulated latency. The unit of interaction
/// of all join methods (§4.1: services produce a new chunk per call).
class ChunkSource {
 public:
  /// `cache`, when given (not owned), serves repeat fetches of the same
  /// (service, binding, chunk) without touching the service: a warm entry
  /// yields the chunk with no call counted and no latency charged. The
  /// default keeps the historical always-call behavior.
  ChunkSource(std::shared_ptr<ServiceInterface> iface, std::vector<Value> inputs,
              ServiceCallCache* cache = nullptr)
      : iface_(std::move(iface)), inputs_(std::move(inputs)), cache_(cache) {}

  /// Fetches the next chunk. Returns false when the service was already
  /// exhausted (no call is made in that case).
  Result<bool> FetchNext();

  int num_chunks() const { return static_cast<int>(chunks_.size()); }
  const Chunk& chunk(int i) const { return chunks_[i]; }
  bool exhausted() const { return exhausted_; }

  int calls() const { return calls_; }
  /// Chunks served from the call cache instead of a service call.
  int cache_hits() const { return cache_hits_; }
  double total_latency_ms() const { return total_latency_ms_; }

  const ServiceInterface& iface() const { return *iface_; }

  /// True if this source synthesized scores from positions because the
  /// (ranked) service returned none — the opaque-ranking handling of the
  /// chapter's §3.1 footnote: "associating the position of tuples in the
  /// result with a new attribute and then translating the position into a
  /// score in the [0..1] interval".
  bool scores_synthesized() const { return scores_synthesized_; }

 private:
  std::shared_ptr<ServiceInterface> iface_;
  std::vector<Value> inputs_;
  ServiceCallCache* cache_ = nullptr;  // not owned; may be null
  // Deque: growing must not invalidate references to earlier chunks (the
  // top-k executor keeps pointers into fetched tuples).
  std::deque<Chunk> chunks_;
  bool exhausted_ = false;
  int calls_ = 0;
  int cache_hits_ = 0;
  double total_latency_ms_ = 0.0;
  int tuples_seen_ = 0;
  bool scores_synthesized_ = false;
};

}  // namespace seco

#endif  // SECO_JOIN_CHUNK_SOURCE_H_
