#ifndef SECO_JOIN_CHUNK_SOURCE_H_
#define SECO_JOIN_CHUNK_SOURCE_H_

#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "data/column_chunk.h"
#include "exec/call_cache.h"
#include "exec/call_scheduler.h"
#include "service/service_interface.h"

namespace seco {

/// One fetched chunk: tuples in ranking order with their scores (scores are
/// empty for unranked services).
struct Chunk {
  std::vector<Tuple> tuples;
  std::vector<double> scores;

  /// The representative score of the chunk: its first tuple's score, or 1.0
  /// when unranked / 0.0 when empty.
  double RepresentativeScore() const {
    if (tuples.empty()) return 0.0;
    return scores.empty() ? 1.0 : scores.front();
  }
};

/// Pulls successive chunks from a service interface under one fixed input
/// binding, tracking calls and simulated latency. The unit of interaction
/// of all join methods (§4.1: services produce a new chunk per call).
///
/// `Prefetch` overlaps the next chunk's round-trip with whatever the caller
/// is doing: the fetch runs on the scheduler's pool and `FetchNext` later
/// consumes it in issue order, with *all* accounting (calls, latency, cache
/// hits) done at consumption — so counters, chunk contents, and the fetch
/// schedule are identical with and without prefetching. Prefetched chunks
/// never consumed are only visible in `prefetches_issued()` (and in the
/// call cache, where their responses keep their value).
class ChunkSource {
 public:
  /// `cache`, when given (not owned), serves repeat fetches of the same
  /// (service, binding, chunk) without touching the service: a warm entry
  /// yields the chunk with no call counted and no latency charged. The
  /// default keeps the historical always-call behavior.
  ChunkSource(std::shared_ptr<ServiceInterface> iface, std::vector<Value> inputs,
              ServiceCallCache* cache = nullptr)
      : iface_(std::move(iface)), inputs_(std::move(inputs)), cache_(cache) {}

  /// Outstanding prefetch jobs hold pointers into this object; wait them
  /// out before the members are torn down.
  ~ChunkSource() { AbandonPrefetches(); }

  /// Fetches the next chunk — from the oldest pending prefetch if one is in
  /// flight, synchronously otherwise. Returns false when the service was
  /// already exhausted (no call is made in that case).
  Result<bool> FetchNext();

  /// Speculatively issues the fetch of the next not-yet-requested chunk on
  /// the scheduler's pool. Returns true if a fetch was issued; false when
  /// the source is exhausted or the scheduler has no pool (inline mode
  /// never speculates).
  bool Prefetch(CallScheduler* scheduler);

  /// Waits for outstanding prefetches and discards their results (their
  /// responses stay in the call cache if one is attached).
  void AbandonPrefetches();

  /// Overrides the handler calls go through — typically a
  /// `ResilientHandler` wrapping `iface->handler()` so the join methods
  /// inherit retry/deadline/breaker behavior. Must outlive this source
  /// (including outstanding prefetch jobs). nullptr restores the default.
  void set_handler(std::shared_ptr<ServiceCallHandler> handler) {
    handler_override_ = std::move(handler);
  }

  int num_chunks() const { return static_cast<int>(chunks_.size()); }
  const Chunk& chunk(int i) const { return chunks_[i]; }
  bool exhausted() const { return exhausted_; }

  /// Opts this source into the columnar data plane: every chunk admitted
  /// from now on (and any already fetched) is decoded once into flat
  /// columns, with the join key at `key_path` canonicalized for the SIMD
  /// kernels. String keys intern into `dict` (not owned; may be null),
  /// which the two sides of a join must share for codes to be comparable.
  /// Decoding happens on the consumer thread inside `FetchNext` — prefetch
  /// pool jobs only fill response slots — so no locking is needed.
  void EnableColumnar(const AttrPath& key_path, KeyDictionary* dict);

  /// The decoded columns of chunk `i`, or nullptr when columnar decoding is
  /// not enabled. Valid as long as the chunk itself.
  const ColumnChunk* columns(int i) const {
    if (!columnar_path_.has_value()) return nullptr;
    return &columns_[i];
  }

  /// Chunks decoded into columns / whose key column fell back to the
  /// scalar path (nulls, repeating groups, mixed types, dict overflow).
  int chunks_decoded() const { return chunks_decoded_; }
  int decode_fallbacks() const { return decode_fallbacks_; }

  int calls() const { return calls_; }
  /// Chunks served from the call cache instead of a service call.
  int cache_hits() const { return cache_hits_; }
  double total_latency_ms() const { return total_latency_ms_; }

  /// Speculative fetches issued / consumed by a later FetchNext. The
  /// difference is the speculation waste so far.
  int prefetches_issued() const { return prefetches_issued_; }
  int prefetches_consumed() const { return prefetches_consumed_; }
  /// Prefetches currently in flight (issued, not yet consumed).
  int prefetches_pending() const { return static_cast<int>(pending_.size()); }

  const ServiceInterface& iface() const { return *iface_; }

  /// True if this source synthesized scores from positions because the
  /// (ranked) service returned none — the opaque-ranking handling of the
  /// chapter's §3.1 footnote: "associating the position of tuples in the
  /// result with a new attribute and then translating the position into a
  /// score in the [0..1] interval".
  bool scores_synthesized() const { return scores_synthesized_; }

 private:
  /// One in-flight speculative fetch; the pool job writes into the slot.
  struct PendingFetch {
    std::future<Status> done;
    Result<ServiceResponse> response = Status::Internal("prefetch pending");
    bool from_cache = false;
  };

  /// Appends a fetched response as a chunk, with the accounting shared by
  /// the synchronous and prefetched paths.
  bool IngestResponse(ServiceResponse resp, bool from_cache);

  /// Decodes one admitted chunk into `columns_` (columnar mode only).
  void DecodeChunkColumns(const Chunk& chunk);

  /// The handler fetches go through: the override when set, the
  /// interface's own otherwise.
  ServiceCallHandler* effective_handler() const {
    return handler_override_ ? handler_override_.get() : iface_->handler();
  }

  std::shared_ptr<ServiceInterface> iface_;
  std::vector<Value> inputs_;
  std::shared_ptr<ServiceCallHandler> handler_override_;
  ServiceCallCache* cache_ = nullptr;  // not owned; may be null
  // Deque: growing must not invalidate references to earlier chunks (the
  // top-k executor keeps pointers into fetched tuples).
  std::deque<Chunk> chunks_;
  /// Decoded columns, parallel to `chunks_` when columnar mode is enabled
  /// (deque for the same reference-stability reason).
  std::deque<ColumnChunk> columns_;
  std::optional<AttrPath> columnar_path_;
  KeyDictionary* dict_ = nullptr;  // not owned; may be null
  int chunks_decoded_ = 0;
  int decode_fallbacks_ = 0;
  /// Prefetches in flight, oldest first; FetchNext consumes the front.
  std::deque<std::unique_ptr<PendingFetch>> pending_;
  bool exhausted_ = false;
  int calls_ = 0;
  int cache_hits_ = 0;
  double total_latency_ms_ = 0.0;
  int tuples_seen_ = 0;
  /// Chunk index of the next request to issue (sync or speculative).
  int next_chunk_ = 0;
  int prefetches_issued_ = 0;
  int prefetches_consumed_ = 0;
  bool scores_synthesized_ = false;
};

}  // namespace seco

#endif  // SECO_JOIN_CHUNK_SOURCE_H_
