#ifndef SECO_EXEC_CALL_SCHEDULER_H_
#define SECO_EXEC_CALL_SCHEDULER_H_

#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace seco {

/// One independent unit of service-call work: typically "fetch every chunk
/// of one distinct input binding" for an engine service node, or one branch
/// fetch of a parallel join. Jobs write their outcome into caller-owned,
/// index-addressed slots; they must not touch shared mutable state other
/// than through atomics or their own slot.
using CallJob = std::function<Status()>;

/// Dispatches a batch of independent `CallJob`s and reports a deterministic
/// outcome.
///
/// With a pool, all jobs are submitted up front and awaited in index order;
/// without one (or with a single worker), jobs run inline in index order
/// and the batch stops at the first failure — byte-identical to the
/// historical sequential engine. In both modes the reported error is the
/// *lowest-index* failure, so error selection does not depend on thread
/// interleaving (completion order is never observed; see
/// docs/CONCURRENCY.md).
class CallScheduler {
 public:
  /// `pool` may be null (inline execution). Not owned.
  explicit CallScheduler(ThreadPool* pool) : pool_(pool) {}

  /// Installs a cancellation token: once it fires, jobs that have not yet
  /// started are skipped (each returns `Status::Cancelled`) instead of
  /// burning pool threads on work nobody will read. Jobs already running
  /// observe the token themselves at their own chunk boundaries.
  void SetCancel(std::shared_ptr<CancelToken> cancel) {
    cancel_ = std::move(cancel);
  }

  /// Runs every job; returns OK or the lowest-index error.
  Status RunAll(std::vector<CallJob> jobs);

  /// Dispatches one job asynchronously — the speculative-prefetch entry
  /// point. Returns the job's future in concurrent mode; nullopt in inline
  /// mode, where speculation has no spare thread to hide behind and callers
  /// should simply skip the speculative work (the demand path will do it).
  std::optional<std::future<Status>> SubmitOne(CallJob job);

  bool concurrent() const { return pool_ != nullptr && pool_->num_threads() > 1; }

 private:
  ThreadPool* pool_;
  std::shared_ptr<CancelToken> cancel_;
};

}  // namespace seco

#endif  // SECO_EXEC_CALL_SCHEDULER_H_
