#ifndef SECO_EXEC_ESTIMATE_REPORT_H_
#define SECO_EXEC_ESTIMATE_REPORT_H_

#include <string>
#include <vector>

#include "exec/engine.h"
#include "plan/plan.h"

namespace seco {

/// Estimated vs. observed behaviour of one plan node.
struct NodeEstimateDelta {
  int node = -1;
  std::string label;
  double est_calls = 0.0;
  double actual_calls = 0.0;
  double est_t_out = 0.0;
  double actual_t_out = 0.0;

  /// q-error of the cardinality estimate: max(est/act, act/est), >= 1;
  /// 1.0 = perfect. Zero-vs-nonzero cases saturate to +inf.
  double CardinalityQError() const;
  double CallQError() const;
};

/// Compares an annotated plan's estimates against an execution's measured
/// node statistics. The chapter's cost model rests on the §3.2 independence
/// and uniformity assumptions; this report quantifies how far reality (the
/// engine's call cache, correlated data, bounded result lists) deviates.
struct EstimateReport {
  std::vector<NodeEstimateDelta> nodes;
  /// Worst q-errors across service-call nodes.
  double max_call_qerror = 1.0;
  double max_cardinality_qerror = 1.0;

  std::string ToString() const;
};

/// `plan` must be annotated and `result` must come from executing it.
EstimateReport CompareEstimates(const QueryPlan& plan,
                                const ExecutionResult& result);

}  // namespace seco

#endif  // SECO_EXEC_ESTIMATE_REPORT_H_
