#include "exec/resumable.h"

#include <algorithm>

namespace seco {

CachingHandler::CachingHandler(std::shared_ptr<ServiceCallHandler> inner,
                               std::string service_name,
                               ServiceCallCache* cache)
    : inner_(std::move(inner)), service_name_(std::move(service_name)) {
  if (cache == nullptr) {
    owned_cache_ = std::make_unique<ServiceCallCache>();
    cache_ = owned_cache_.get();
  } else {
    cache_ = cache;
  }
}

Result<ServiceResponse> CachingHandler::Call(const ServiceRequest& request) {
  std::string key = ServiceCallCache::Key(
      service_name_, SerializeBinding(request.inputs), request.chunk_index);
  std::optional<ServiceResponse> cached = cache_->Get(key);
  if (cached.has_value()) {
    ++cache_hits_;
    cached->latency_ms = 0.0;  // already paid
    return std::move(*cached);
  }
  SECO_ASSIGN_OR_RETURN(ServiceResponse resp, inner_->Call(request));
  ++novel_calls_;
  cache_->Put(key, resp);
  return resp;
}

ResumableExecution::ResumableExecution(const QueryPlan& plan,
                                       ExecutionOptions options)
    : plan_(plan), options_(std::move(options)) {
  // Rebind every service node to a caching handler. Nodes sharing an
  // interface share one cache.
  std::map<const ServiceInterface*, std::shared_ptr<ServiceInterface>> rebound;
  for (int id = 0; id < plan_.num_nodes(); ++id) {
    PlanNode& node = plan_.mutable_node(id);
    if (node.kind != PlanNodeKind::kServiceCall || !node.iface) continue;
    auto it = rebound.find(node.iface.get());
    if (it == rebound.end()) {
      // With a shared ExecutionOptions::cache the memoization interoperates
      // with engine/streaming runs; otherwise each interface keeps its own.
      auto cache = std::make_shared<CachingHandler>(
          std::shared_ptr<ServiceCallHandler>(node.iface,
                                              node.iface->handler()),
          node.iface->name(), options_.cache);
      caches_.push_back(cache);
      auto iface = std::make_shared<ServiceInterface>(
          node.iface->name(), node.iface->schema_ptr(), node.iface->pattern(),
          node.iface->kind(), node.iface->stats(), cache);
      it = rebound.emplace(node.iface.get(), std::move(iface)).first;
    }
    node.iface = it->second;
  }
}

int64_t ResumableExecution::total_novel_calls() const {
  int64_t total = 0;
  for (const auto& cache : caches_) total += cache->novel_calls();
  return total;
}

Result<ResumeBatch> ResumableExecution::FetchMore(int count) {
  ResumeBatch batch;
  if (count <= 0) {
    batch.may_have_more = !exhausted_;
    return batch;
  }
  if (exhausted_) {
    batch.may_have_more = false;
    return batch;
  }
  ++rounds_;
  int target = total_returned_ + count;

  int64_t calls_before = total_novel_calls();
  const int kMaxGrowthRounds = 8;
  ExecutionResult result;
  int prev_available = -1;
  int64_t prev_calls = -1;
  for (int attempt = 0; attempt < kMaxGrowthRounds; ++attempt) {
    ExecutionOptions options = options_;
    options.k = target;
    // Keep the full (sorted) result: after deeper fetches, new combinations
    // may rank anywhere, and the batch needs `count` genuinely new ones.
    options.truncate_to_k = false;
    ExecutionEngine engine(options);
    SECO_ASSIGN_OR_RETURN(result, engine.Execute(plan_));
    int available = static_cast<int>(result.combinations.size());
    if (available >= target) break;
    // Converged without reaching the target: the previous growth neither
    // paid any new call nor surfaced any new combination — the sources are
    // exhausted for this plan shape.
    if (available == prev_available && total_novel_calls() == prev_calls) {
      exhausted_ = true;
      break;
    }
    prev_available = available;
    prev_calls = total_novel_calls();

    // Grow every chunked node's fetching factor and retry (the cache makes
    // previously-paid calls free).
    bool grew = false;
    for (int id = 0; id < plan_.num_nodes(); ++id) {
      PlanNode& node = plan_.mutable_node(id);
      if (node.kind == PlanNodeKind::kServiceCall && node.iface &&
          node.iface->is_chunked()) {
        node.fetch_factor += std::max(1, node.fetch_factor / 2);
        grew = true;
      }
    }
    if (!grew) {
      exhausted_ = true;
      break;
    }
  }

  // Hand out only combinations not returned by earlier batches. Deeper
  // fetches can interleave new results anywhere in the ranking, so dedup is
  // by content, not position.
  const BoundQuery& query = plan_.query();
  for (const Combination& combo : result.combinations) {
    if (static_cast<int>(batch.combinations.size()) >= count) break;
    std::string key;
    for (size_t a = 0; a < combo.components.size(); ++a) {
      key += combo.components[a].ToString(*query.atoms[a].schema);
      key += '\x1e';
    }
    if (!seen_.insert(std::move(key)).second) continue;
    batch.combinations.push_back(combo);
  }
  total_returned_ += static_cast<int>(batch.combinations.size());
  batch.novel_calls = total_novel_calls() - calls_before;
  batch.elapsed_ms = result.elapsed_ms;
  if (static_cast<int>(batch.combinations.size()) < count && exhausted_) {
    batch.may_have_more = false;
  }
  return batch;
}

}  // namespace seco
