#include "exec/call_cache.h"

#include <algorithm>
#include <functional>

#include "service/tuple.h"

namespace seco {

namespace {

size_t ApproxValueBytes(const Value& v) {
  // Variant storage plus heap payload for strings.
  size_t bytes = sizeof(Value);
  if (v.type() == ValueType::kString) bytes += v.AsString().size();
  return bytes;
}

size_t ApproxTupleBytes(const Tuple& tuple) {
  size_t bytes = sizeof(Tuple);
  for (int i = 0; i < tuple.num_slots(); ++i) {
    if (tuple.IsAtomic(i)) {
      bytes += ApproxValueBytes(tuple.AtomicAt(i));
    } else {
      for (const GroupInstance& instance : tuple.GroupAt(i)) {
        for (const Value& v : instance) bytes += ApproxValueBytes(v);
      }
    }
  }
  return bytes;
}

size_t ApproxResponseBytes(const std::string& key,
                           const ServiceResponse& response) {
  size_t bytes = key.size() + sizeof(ServiceResponse);
  for (const Tuple& t : response.tuples) bytes += ApproxTupleBytes(t);
  bytes += response.scores.size() * sizeof(double);
  return bytes;
}

}  // namespace

std::string SerializeBinding(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

ServiceCallCache::ServiceCallCache(size_t byte_budget, int num_shards)
    : num_shards_(std::max(num_shards, 1)),
      shard_budget_(std::max<size_t>(byte_budget / num_shards_, 1)),
      shards_(new Shard[num_shards_]) {}

std::string ServiceCallCache::Key(const std::string& service,
                                  const std::string& binding_key,
                                  int chunk_index) {
  std::string key = service;
  key += '\x1e';
  key += binding_key;
  key += '\x1e';
  key += std::to_string(chunk_index);
  return key;
}

size_t ServiceCallCache::ShardOf(const std::string& key) const {
  return std::hash<std::string>{}(key) % num_shards_;
}

std::optional<ServiceResponse> ServiceCallCache::Get(const std::string& key) {
  const uint64_t gen = generation();
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  if (it->second->generation != gen) {
    InvalidateLocked(shard, it);
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->response;
}

bool ServiceCallCache::Contains(const std::string& key) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  return it != shard.index.end() && it->second->generation == generation();
}

void ServiceCallCache::Put(const std::string& key,
                           const ServiceResponse& response) {
  size_t bytes = ApproxResponseBytes(key, response);
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  if (bytes > shard_budget_) return;  // would evict the whole shard
  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, response, bytes, generation()});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  shard.bytes_high_water = std::max(shard.bytes_high_water, shard.bytes);
}

void ServiceCallCache::InvalidateLocked(
    Shard& shard,
    std::unordered_map<std::string, std::list<Entry>::iterator>::iterator it) {
  shard.bytes -= it->second->bytes;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.invalidations;
}

CallCacheStats ServiceCallCache::stats() const {
  CallCacheStats total;
  for (int i = 0; i < num_shards_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.invalidations += shard.invalidations;
    total.entries += static_cast<int64_t>(shard.lru.size());
    total.bytes += static_cast<int64_t>(shard.bytes);
    total.bytes_high_water += static_cast<int64_t>(shard.bytes_high_water);
  }
  return total;
}

std::vector<CallCacheShardStats> ServiceCallCache::shard_stats() const {
  std::vector<CallCacheShardStats> out(static_cast<size_t>(num_shards_));
  for (int i = 0; i < num_shards_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    out[i].hits = shard.hits;
    out[i].misses = shard.misses;
    out[i].evictions = shard.evictions;
    out[i].invalidations = shard.invalidations;
    out[i].entries = static_cast<int64_t>(shard.lru.size());
    out[i].bytes = static_cast<int64_t>(shard.bytes);
    out[i].bytes_high_water = static_cast<int64_t>(shard.bytes_high_water);
  }
  return out;
}

void ServiceCallCache::Clear() {
  for (int i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.bytes_high_water = 0;
    shard.hits = shard.misses = shard.evictions = shard.invalidations = 0;
  }
}

ServiceCallCache* ServiceCallCache::Process() {
  static ServiceCallCache* cache = new ServiceCallCache();
  return cache;
}

}  // namespace seco
