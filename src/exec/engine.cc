#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/thread_pool.h"
#include "data/predicate_fast.h"
#include "exec/call_cache.h"
#include "exec/call_scheduler.h"
#include "query/semantics.h"
#include "reliability/circuit_breaker.h"
#include "reliability/resilient_handler.h"
#include "repair/repair_driver.h"
#include "service/invocation.h"

namespace seco {

namespace {

/// One partial combination flowing between nodes.
struct Row {
  std::vector<std::optional<Tuple>> tuples;  // per atom
  std::vector<double> scores;                // per atom
  int parent = -1;    ///< index of the input-stream row this row extends
  int chunk_ord = 0;  ///< chunk index that produced this row's newest tuple
};

using Stream = std::vector<Row>;

/// Fetched results for one input binding of a service node.
struct CachedFetch {
  std::vector<Tuple> tuples;
  std::vector<double> scores;
  std::vector<int> chunk_ords;
};

/// One real request-response issued by a fetch job, for the deterministic
/// accounting pass.
struct FetchCall {
  int chunk = 0;
  double latency_ms = 0.0;
  /// Reliability overhead (backoff + charged deadlines) this logical call
  /// accumulated before succeeding; accounted separately from latency.
  double overhead_ms = 0.0;
};

/// Everything one distinct-binding fetch job produced. Written by exactly
/// one job, read only after the whole batch completes.
struct FetchOutcome {
  CachedFetch fetch;
  std::vector<FetchCall> calls;  // real calls, in chunk order
  int cache_hits = 0;
  int cache_misses = 0;
  /// Set when this binding's fetch hit a permanent fault under a degrading
  /// policy: earlier chunks (if any) are kept, later ones abandoned.
  bool failed = false;
  Status failure;
};

/// Join-group check with the allocation-free fast path for all-atomic
/// groups (exactly equivalent to the oracle; see data/predicate_fast.h).
Result<bool> HoldsJoinGroup(const BoundQuery& query,
                            const BoundJoinGroup& group, const Tuple& a,
                            const Tuple& b) {
  if (JoinGroupAllAtomic(group)) return EvalAtomicJoinGroup(group, a, b);
  return SatisfiesJoinGroup(query, group, a, b);
}

}  // namespace

Result<ExecutionResult> ExecutionEngine::Execute(const QueryPlan& plan) {
  switch (options_.repair.policy) {
    case RepairPolicy::kOff:
      return ExecuteOnce(plan, nullptr, /*force_degrade=*/false);
    case RepairPolicy::kDegrade:
      return ExecuteOnce(plan, nullptr, /*force_degrade=*/true);
    default:
      break;
  }
  // Failover: all rounds share one cache so chunks materialized by an
  // abandoned round replay as free hits after replanning.
  ServiceCallCache round_cache;
  ServiceCallCache* cache = options_.cache ? options_.cache : &round_cache;
  auto run = [this, cache](const QueryPlan& p) {
    return ExecuteOnce(p, cache, /*force_degrade=*/true);
  };
  auto warm = [](const ExecutionResult& r, const QueryPlan& p) {
    std::map<std::string, int64_t> warm_calls;
    for (const auto& [id, stats] : r.node_stats) {
      const PlanNode& node = p.node(id);
      if (node.kind != PlanNodeKind::kServiceCall || node.iface == nullptr) {
        continue;
      }
      warm_calls[node.iface->name()] += stats.calls + stats.cache_hits;
    }
    return warm_calls;
  };
  auto clock = [](const ExecutionResult& r) { return r.elapsed_ms; };
  return RunWithRepair<ExecutionResult>(plan, options_.repair, run, warm,
                                        clock);
}

Result<ExecutionResult> ExecutionEngine::ExecuteOnce(
    const QueryPlan& plan, ServiceCallCache* cache_override,
    bool force_degrade) {
  auto wall_start = std::chrono::steady_clock::now();
  SECO_RETURN_IF_ERROR(plan.Validate());
  SECO_ASSIGN_OR_RETURN(std::vector<int> order, plan.TopologicalOrder());
  const BoundQuery& query = plan.query();
  int num_atoms = static_cast<int>(query.atoms.size());

  ExecutionResult result;
  std::map<int, Stream> streams;  // node id -> output stream
  std::map<int, double> finish;   // node id -> simulated completion time

  // Call infrastructure: a pool when concurrency was requested, and either
  // the caller's shared cross-execution cache or a private one scoped to
  // this execution (the historical per-execution dedup).
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }
  CallScheduler scheduler(pool.get());
  scheduler.SetCancel(options_.cancel);
  ServiceCallCache local_cache;
  ServiceCallCache* cache = cache_override      ? cache_override
                            : options_.cache    ? options_.cache
                                                : &local_cache;
  // Budget reservations; fetch jobs from any thread claim call slots here
  // (legacy path — under a reliability policy the shared CallBudget below
  // charges every attempt instead).
  std::atomic<int> calls_issued{0};

  // Effective reliability policy: the legacy `call_retries` knob maps onto
  // the retry policy when no explicit one was configured. An inert policy
  // leaves every code path below exactly as it was before this layer.
  ReliabilityPolicy policy = options_.reliability;
  if (policy.retry.max_retries == 0 && options_.call_retries > 0) {
    policy.retry.max_retries = options_.call_retries;
  }
  if (force_degrade || options_.degradation_level >= 3) policy.degrade = true;
  const bool resilient = policy.enabled();
  CallBudget budget(resilient ? options_.max_calls : -1, options_.cancel);
  ReliabilityLedger ledger;
  CircuitBreakerRegistry local_breakers(policy.breaker_failure_threshold,
                                        policy.breaker_probe_interval);
  CircuitBreakerRegistry& breakers = options_.shared_breakers != nullptr
                                         ? *options_.shared_breakers
                                         : local_breakers;
  ServiceLostCollector lost_collector;
  // Atoms whose service degraded: partial rows missing only these atoms
  // survive selections, joins, and output as flagged partial answers.
  std::set<int> degraded_atoms;
  // Reliability overhead consumed so far, in deterministic accounting
  // order; feeds the query-deadline check and the final stats.
  double overhead_consumed_ms = 0.0;

  // Classifies a join-group endpoint pair: 0 = both tuples present
  // (evaluate the clause), 1 = a tuple is missing because its atom
  // degraded (skip the clause, keep the row), -1 = missing for structural
  // reasons (drop the row, the historical behavior).
  auto join_endpoints = [&degraded_atoms](const Row& row, int a, int b) {
    bool missing_a = !row.tuples[a].has_value();
    bool missing_b = !row.tuples[b].has_value();
    if (!missing_a && !missing_b) return 0;
    if ((missing_a && degraded_atoms.count(a) > 0) ||
        (missing_b && degraded_atoms.count(b) > 0)) {
      return 1;
    }
    return -1;
  };

  for (int id : order) {
    // Node boundary: the deterministic cancellation point. A cancelled run
    // aborts before starting the next node — no partial node output ever
    // reaches `streams`, and nothing written to the shared cache so far is
    // wrong (complete successful responses only).
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return options_.cancel->ToStatus();
    }
    const PlanNode& node = plan.node(id);
    NodeRuntimeStats& stats = result.node_stats[id];
    double ready_ms = 0.0;
    for (int pred : node.inputs) ready_ms = std::max(ready_ms, finish[pred]);

    switch (node.kind) {
      case PlanNodeKind::kInput: {
        Row seed;
        seed.tuples.resize(num_atoms);
        seed.scores.assign(num_atoms, 0.0);
        streams[id] = {seed};
        break;
      }

      case PlanNodeKind::kServiceCall: {
        const Stream& in = streams[node.inputs[0]];
        Stream out;
        const ServiceInterface& iface = *node.iface;
        const AccessPattern& pattern = iface.pattern();

        // Pass 1 — bind inputs (pure CPU, no calls): compute each row's
        // input bindings and list the distinct ones in first-appearance
        // order.
        std::vector<std::vector<int>> row_jobs(in.size());  // job per binding
        std::vector<std::vector<Value>> distinct_bindings;
        std::vector<std::string> distinct_keys;
        std::map<std::string, int> job_of_key;
        // Rows whose inputs can only pipe from an atom a degraded service
        // never produced; they skip fetching and pass through partially
        // bound (the degradation cascades down the pipe).
        std::vector<char> row_unbindable(in.size(), 0);
        for (size_t row_idx = 0; row_idx < in.size(); ++row_idx) {
          const Row& row = in[row_idx];
          // Candidate values per input path (multiple when piped from a
          // repeating-group sub-attribute).
          std::vector<std::vector<Value>> candidates;
          for (const AttrPath& in_path : pattern.input_paths()) {
            std::vector<Value> values;
            bool provider_degraded = false;
            // Constant / INPUT bindings.
            for (int sel_idx : node.input_selections) {
              const BoundSelection& sel = query.selections[sel_idx];
              if (sel.atom == node.atom && sel.path == in_path) {
                SECO_ASSIGN_OR_RETURN(
                    Value v,
                    query.ResolveSelectionValue(sel, options_.input_bindings));
                values.push_back(std::move(v));
              }
            }
            // Piped bindings.
            if (values.empty()) {
              for (int group_idx : node.pipe_groups) {
                for (const JoinClause& clause : query.joins[group_idx].clauses) {
                  int provider = -1;
                  AttrPath provider_path;
                  if (clause.to_atom == node.atom && clause.to_path == in_path) {
                    provider = clause.from_atom;
                    provider_path = clause.from_path;
                  } else if (clause.from_atom == node.atom &&
                             clause.from_path == in_path) {
                    provider = clause.to_atom;
                    provider_path = clause.to_path;
                  }
                  if (provider < 0) continue;
                  if (!row.tuples[provider].has_value()) {
                    if (degraded_atoms.count(provider) > 0) {
                      provider_degraded = true;
                    }
                    continue;
                  }
                  row.tuples[provider]->ForEachCandidateAt(
                      provider_path, [&values](const Value& v) {
                        values.push_back(v);
                        return true;
                      });
                }
                if (!values.empty()) break;
              }
            }
            if (values.empty()) {
              if (provider_degraded) {
                row_unbindable[row_idx] = 1;
                break;
              }
              return Status::Internal("engine: unbound input " +
                                      iface.schema().PathToString(in_path) +
                                      " of service " + iface.name());
            }
            candidates.push_back(std::move(values));
          }
          if (row_unbindable[row_idx]) continue;

          // Enumerate distinct input bindings (cross product of candidates).
          std::vector<std::vector<Value>> bindings;
          bindings.emplace_back();
          for (const std::vector<Value>& values : candidates) {
            std::vector<std::vector<Value>> next;
            for (const std::vector<Value>& prefix : bindings) {
              for (const Value& v : values) {
                std::vector<Value> extended = prefix;
                extended.push_back(v);
                next.push_back(std::move(extended));
              }
            }
            bindings = std::move(next);
          }

          for (std::vector<Value>& binding : bindings) {
            std::string key = SerializeBinding(binding);
            auto [it, inserted] =
                job_of_key.emplace(std::move(key),
                                   static_cast<int>(distinct_keys.size()));
            if (inserted) {
              distinct_keys.push_back(it->first);
              distinct_bindings.push_back(std::move(binding));
            }
            row_jobs[row_idx].push_back(it->second);
          }
        }

        // Reliability wrapper for this node's handler: retry / deadline /
        // breaker / hedging behavior shared by every fetch job below.
        std::shared_ptr<ServiceCallHandler> node_handler = iface.handler_ptr();
        if (resilient) {
          ReliabilityContext ctx;
          ctx.policy = policy;
          ctx.budget = &budget;
          ctx.ledger = &ledger;
          ctx.breakers = &breakers;
          ctx.hedge_pool = pool.get();
          ctx.lost = &lost_collector;
          ctx.cancel = options_.cancel;
          node_handler = std::make_shared<ResilientHandler>(
              std::move(node_handler), iface.name(), ctx);
        }

        // Query deadline, checked at the deterministic node boundary: the
        // node would start at simulated time `ready_ms`, after
        // `overhead_consumed_ms` of reliability overhead.
        const bool node_past_deadline =
            resilient && policy.query_deadline_ms > 0.0 &&
            ready_ms + overhead_consumed_ms > policy.query_deadline_ms;
        if (node_past_deadline && !policy.degrade) {
          return Status::DeadlineExceeded(
              "query deadline (" + std::to_string(policy.query_deadline_ms) +
              " ms) exceeded before node " + std::to_string(node.id));
        }

        // Pass 2 — fetch: one job per distinct binding, dispatched through
        // the scheduler (concurrent across bindings when a pool exists,
        // inline in index order otherwise). Chunks of one binding stay
        // sequential — chunk f+1 is only needed if chunk f was not
        // exhausted. Each job owns its FetchOutcome slot; the call budget
        // is claimed through `calls_issued` (or, under a reliability
        // policy, per attempt inside the resilient handler).
        const int fetches =
            iface.is_chunked() ? std::max(node.fetch_factor, 1) : 1;
        std::vector<FetchOutcome> outcomes(distinct_keys.size());
        if (node_past_deadline) {
          for (FetchOutcome& outcome : outcomes) {
            outcome.failed = true;
            outcome.failure = Status::DeadlineExceeded(
                "query deadline exceeded before fetching");
          }
        } else {
          std::vector<CallJob> jobs;
          jobs.reserve(distinct_keys.size());
          for (size_t j = 0; j < distinct_keys.size(); ++j) {
            jobs.push_back([&, j]() -> Status {
              FetchOutcome& outcome = outcomes[j];
              for (int f = 0; f < fetches; ++f) {
                // Chunk boundary: abandon the rest of this binding's chain
                // the moment the query is cancelled. Chunks already fetched
                // were complete responses, so nothing half-written can
                // reach the cache.
                if (options_.cancel != nullptr && options_.cancel->cancelled()) {
                  return options_.cancel->ToStatus();
                }
                std::string cache_key =
                    ServiceCallCache::Key(iface.name(), distinct_keys[j], f);
                ServiceResponse resp;
                std::optional<ServiceResponse> cached = cache->Get(cache_key);
                if (cached.has_value()) {
                  resp = std::move(*cached);
                  ++outcome.cache_hits;
                } else {
                  if (!resilient &&
                      calls_issued.fetch_add(1, std::memory_order_relaxed) >=
                          options_.max_calls) {
                    return Status::ResourceExhausted(
                        "service call budget exceeded (" +
                        std::to_string(options_.max_calls) + ")");
                  }
                  ServiceRequest request;
                  request.inputs = distinct_bindings[j];
                  request.chunk_index = f;
                  request.cancel = options_.cancel;
                  Result<ServiceResponse> fetched =
                      node_handler->Call(request);
                  if (!fetched.ok()) {
                    Status s = fetched.status();
                    if (resilient && policy.degrade && IsFaultStatus(s)) {
                      // Permanent fault: keep what this binding already
                      // yielded, degrade the rest.
                      outcome.failed = true;
                      outcome.failure = std::move(s);
                      break;
                    }
                    return s;
                  }
                  resp = std::move(fetched).value();
                  // Overhead belongs to this attempt chain, never to the
                  // cached response: a later cache hit must not replay it.
                  double call_overhead = resp.fault_overhead_ms;
                  resp.fault_overhead_ms = 0.0;
                  cache->Put(cache_key, resp);
                  outcome.calls.push_back(
                      FetchCall{f, resp.latency_ms, call_overhead});
                  ++outcome.cache_misses;
                }
                for (size_t t = 0; t < resp.tuples.size(); ++t) {
                  outcome.fetch.tuples.push_back(std::move(resp.tuples[t]));
                  outcome.fetch.scores.push_back(
                      t < resp.scores.size() ? resp.scores[t] : 0.0);
                  outcome.fetch.chunk_ords.push_back(f);
                }
                if (options_.cancel != nullptr) options_.cancel->Heartbeat();
                if (resp.exhausted) break;
              }
              return Status::OK();
            });
          }
          SECO_RETURN_IF_ERROR(scheduler.RunAll(std::move(jobs)));
        }

        // Pass 3 — deterministic accounting in first-appearance order:
        // identical to the historical sequential interleaving, regardless
        // of which thread finished first.
        for (size_t j = 0; j < outcomes.size(); ++j) {
          const FetchOutcome& outcome = outcomes[j];
          for (const FetchCall& call : outcome.calls) {
            ++result.total_calls;
            ++stats.calls;
            stats.latency_ms += call.latency_ms;
            result.total_latency_ms += call.latency_ms;
            overhead_consumed_ms += call.overhead_ms;
            if (options_.collect_trace) {
              result.trace.push_back(CallEvent{node.id, iface.name(),
                                               distinct_keys[j], call.chunk,
                                               call.latency_ms});
            }
          }
          stats.cache_hits += outcome.cache_hits;
          result.cache_hits += outcome.cache_hits;
          result.cache_misses += outcome.cache_misses;
        }
        if (resilient) {
          int failed_direct = 0;
          int failed_cascade = 0;
          std::string reason;
          for (const FetchOutcome& outcome : outcomes) {
            if (!outcome.failed) continue;
            ++failed_direct;
            if (reason.empty()) reason = outcome.failure.ToString();
          }
          for (char unbindable : row_unbindable) {
            if (!unbindable) continue;
            ++failed_cascade;
            if (reason.empty()) {
              reason = "input unavailable: piped from a degraded service";
            }
          }
          if (failed_direct + failed_cascade > 0) {
            degraded_atoms.insert(node.atom);
            DegradedStatus d;
            d.node = node.id;
            d.service = iface.name();
            d.failed_bindings = failed_direct + failed_cascade;
            d.reason = reason;
            // Only direct failures make this node a repair candidate; a
            // purely inherited degradation heals once its upstream does.
            d.cascaded = failed_direct == 0;
            d.query_deadline = node_past_deadline;
            result.degraded.push_back(std::move(d));
            result.complete = false;
          }
        }

        // Pass 4 — extend rows with the fetched tuples, byte-identical to
        // the sequential fetch-as-you-go order.
        for (size_t row_idx = 0; row_idx < in.size(); ++row_idx) {
          const Row& row = in[row_idx];
          int kept_for_row = 0;
          bool row_hit_failure = row_unbindable[row_idx] != 0;
          for (int job_idx : row_jobs[row_idx]) {
            if (outcomes[job_idx].failed) row_hit_failure = true;
            const CachedFetch& fetch = outcomes[job_idx].fetch;
            for (size_t t = 0; t < fetch.tuples.size(); ++t) {
              if (node.keep_per_input > 0 && kept_for_row >= node.keep_per_input) {
                break;
              }
              Row extended = row;
              extended.tuples[node.atom] = fetch.tuples[t];
              extended.scores[node.atom] = fetch.scores[t];
              extended.parent = static_cast<int>(row_idx);
              extended.chunk_ord = fetch.chunk_ords[t];
              // Verify the pipe-join groups on the composed row (covers
              // clauses beyond the input binding and the repeating-group
              // single-instance rule).
              bool ok = true;
              for (int group_idx : node.pipe_groups) {
                const BoundJoinGroup& group = query.joins[group_idx];
                const JoinClause& first = group.clauses[0];
                int a = first.from_atom, b = first.to_atom;
                if (!extended.tuples[a].has_value() ||
                    !extended.tuples[b].has_value()) {
                  continue;
                }
                SECO_ASSIGN_OR_RETURN(
                    bool holds,
                    HoldsJoinGroup(query, group, *extended.tuples[a],
                                   *extended.tuples[b]));
                if (!holds) {
                  ok = false;
                  break;
                }
              }
              if (!ok) continue;
              out.push_back(std::move(extended));
              ++kept_for_row;
            }
          }
          if (kept_for_row == 0 && row_hit_failure) {
            // Degraded pass-through: the row's service data is gone, but
            // the partial combination stays alive so other services' joins
            // still produce (flagged) answers.
            Row passed = row;
            passed.parent = static_cast<int>(row_idx);
            passed.chunk_ord = 0;
            out.push_back(std::move(passed));
          }
        }
        streams[id] = std::move(out);
        break;
      }

      case PlanNodeKind::kSelection: {
        const Stream& in = streams[node.inputs[0]];
        Stream out;
        // Atoms whose selections this node re-checks (jointly per atom).
        std::vector<int> atoms_to_check;
        for (int sel_idx : node.selections) {
          int atom = query.selections[sel_idx].atom;
          if (std::find(atoms_to_check.begin(), atoms_to_check.end(), atom) ==
              atoms_to_check.end()) {
            atoms_to_check.push_back(atom);
          }
        }
        for (const Row& row : in) {
          bool ok = true;
          for (int atom : atoms_to_check) {
            if (!row.tuples[atom].has_value()) {
              // A missing degraded atom has no tuple to check; keep the
              // partial row rather than silently dropping it.
              if (degraded_atoms.count(atom) > 0) continue;
              ok = false;
              break;
            }
            SECO_ASSIGN_OR_RETURN(
                bool holds, SatisfiesSelections(query, atom, *row.tuples[atom],
                                                options_.input_bindings));
            if (!holds) {
              ok = false;
              break;
            }
          }
          if (ok) {
            for (int group_idx : node.residual_join_groups) {
              const BoundJoinGroup& group = query.joins[group_idx];
              const JoinClause& first = group.clauses[0];
              int a = first.from_atom, b = first.to_atom;
              int cls = join_endpoints(row, a, b);
              if (cls == 1) continue;  // endpoint degraded: unverifiable
              if (cls < 0) {
                ok = false;
                break;
              }
              SECO_ASSIGN_OR_RETURN(bool holds,
                                    HoldsJoinGroup(query, group,
                                                   *row.tuples[a],
                                                   *row.tuples[b]));
              if (!holds) {
                ok = false;
                break;
              }
            }
          }
          if (ok) out.push_back(row);
        }
        streams[id] = std::move(out);
        break;
      }

      case PlanNodeKind::kParallelJoin: {
        // Group each branch stream by parent (upstream row index).
        std::vector<const Stream*> branches;
        for (int pred : node.inputs) branches.push_back(&streams[pred]);
        int upstream_size = 0;
        if (node.join_upstream >= 0) {
          upstream_size = static_cast<int>(streams[node.join_upstream].size());
        }
        std::vector<std::vector<std::vector<const Row*>>> grouped(
            branches.size());
        for (size_t b = 0; b < branches.size(); ++b) {
          grouped[b].resize(std::max(upstream_size, 1));
          for (const Row& row : *branches[b]) {
            int parent = upstream_size > 0 ? std::max(row.parent, 0) : 0;
            grouped[b][parent].push_back(&row);
          }
        }
        // Fetch-grid extents for the triangular completion filter.
        double fx = 1.0, fy = 1.0;
        if (node.strategy.completion == JoinCompletion::kTriangular &&
            branches.size() == 2) {
          for (const Row& row : *branches[0]) {
            fx = std::max(fx, row.chunk_ord + 1.0);
          }
          for (const Row& row : *branches[1]) {
            fy = std::max(fy, row.chunk_ord + 1.0);
          }
        }

        Stream out;
        for (int parent = 0; parent < std::max(upstream_size, 1); ++parent) {
          // Cross product across branches within this upstream row.
          std::vector<Row> partial;
          const Row* upstream_row = nullptr;
          if (upstream_size > 0) {
            upstream_row = &streams[node.join_upstream][parent];
          }
          bool first_branch = true;
          for (size_t b = 0; b < branches.size(); ++b) {
            std::vector<Row> next;
            for (const Row* branch_row : grouped[b][parent]) {
              if (first_branch) {
                Row merged = *branch_row;
                merged.parent = parent;
                // Triangular filter on the first two branches.
                next.push_back(std::move(merged));
              } else {
                for (const Row& existing : partial) {
                  if (b == 1 &&
                      node.strategy.completion == JoinCompletion::kTriangular) {
                    double pos = (existing.chunk_ord + 0.5) / fx +
                                 (branch_row->chunk_ord + 0.5) / fy;
                    if (pos > 1.0) continue;
                  }
                  Row merged = existing;
                  for (int a = 0; a < num_atoms; ++a) {
                    if (branch_row->tuples[a].has_value() &&
                        !merged.tuples[a].has_value()) {
                      merged.tuples[a] = branch_row->tuples[a];
                      merged.scores[a] = branch_row->scores[a];
                    }
                  }
                  next.push_back(std::move(merged));
                }
              }
            }
            partial = std::move(next);
            first_branch = false;
          }
          (void)upstream_row;
          // Evaluate the node's join groups.
          for (Row& row : partial) {
            bool ok = true;
            for (int group_idx : node.join_groups) {
              const BoundJoinGroup& group = query.joins[group_idx];
              const JoinClause& first = group.clauses[0];
              int a = first.from_atom, b = first.to_atom;
              int cls = join_endpoints(row, a, b);
              if (cls == 1) continue;  // endpoint degraded: unverifiable
              if (cls < 0) {
                ok = false;
                break;
              }
              SECO_ASSIGN_OR_RETURN(
                  bool holds, HoldsJoinGroup(query, group, *row.tuples[a],
                                             *row.tuples[b]));
              if (!holds) {
                ok = false;
                break;
              }
            }
            if (ok) out.push_back(std::move(row));
          }
        }
        streams[id] = std::move(out);
        break;
      }

      case PlanNodeKind::kOutput: {
        const Stream& in = streams[node.inputs[0]];
        std::vector<double> weights = query.EffectiveWeights();
        result.total_combinations_produced = static_cast<int>(in.size());
        for (const Row& row : in) {
          Combination combo;
          combo.components.reserve(num_atoms);
          combo.component_scores.reserve(num_atoms);
          double total = 0.0;
          bool viable = true;
          for (int a = 0; a < num_atoms; ++a) {
            if (!row.tuples[a].has_value()) {
              // Partial answers survive only when every hole traces back to
              // a degraded service; structurally incomplete rows still drop.
              if (degraded_atoms.count(a) == 0) {
                viable = false;
                break;
              }
              combo.components.emplace_back();
              combo.component_scores.push_back(0.0);
              combo.missing_atoms.push_back(a);
              continue;
            }
            combo.components.push_back(*row.tuples[a]);
            combo.component_scores.push_back(row.scores[a]);
            total += weights[a] * row.scores[a];
          }
          if (!viable) continue;
          combo.combined_score = total;
          result.combinations.push_back(std::move(combo));
        }
        std::stable_sort(result.combinations.begin(), result.combinations.end(),
                         [](const Combination& a, const Combination& b) {
                           return a.combined_score > b.combined_score;
                         });
        if (options_.truncate_to_k &&
            static_cast<int>(result.combinations.size()) > options_.k) {
          result.combinations.resize(options_.k);
        }
        break;
      }
    }

    stats.tuples_out = node.kind == PlanNodeKind::kOutput
                           ? static_cast<int>(result.combinations.size())
                           : static_cast<int>(streams[id].size());
    stats.finished_at_ms = ready_ms + stats.latency_ms;
    finish[id] = stats.finished_at_ms;
    result.elapsed_ms = std::max(result.elapsed_ms, finish[id]);
  }
  if (resilient) {
    result.reliability = ledger.Snapshot();
    result.reliability.overhead_ms = overhead_consumed_ms;
    result.reliability.breakers = breakers.States();
    result.reliability.services_lost = lost_collector.Snapshot();
    result.open_breakers = breakers.OpenBreakers();
  }
  result.degradation_level = options_.degradation_level;
  result.wall_clock_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace seco
