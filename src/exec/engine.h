#ifndef SECO_EXEC_ENGINE_H_
#define SECO_EXEC_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "plan/plan.h"
#include "reliability/policy.h"
#include "repair/repair.h"
#include "service/tuple.h"

namespace seco {

class ServiceCallCache;
class CircuitBreakerRegistry;

/// Options of one plan execution.
struct ExecutionOptions {
  /// Number of answer combinations to return.
  int k = 10;
  /// Values for the query's INPUT variables.
  std::map<std::string, Value> input_bindings;
  /// Safety budget on total service calls. Under a reliability policy every
  /// delivery *attempt* (first try, retry, hedge) counts against it.
  int max_calls = 10000;
  /// Retries per failing service call before the execution aborts. Legacy
  /// knob: mapped onto `reliability.retry.max_retries` when the latter is 0.
  int call_retries = 0;
  /// When false, all produced combinations are returned (not just k).
  bool truncate_to_k = true;
  /// When true, every service call is recorded in ExecutionResult::trace.
  bool collect_trace = false;
  /// Worker threads for the service-call fan-out: the distinct input
  /// bindings of each service node fetch concurrently (parallel-join
  /// branches overlap through their nodes' fan-outs). Results are collected
  /// by task index, so any value yields bit-identical output; 1 (default)
  /// is the historical fully sequential behavior.
  int num_threads = 1;
  /// Service-call cache. nullptr (default) = a fresh private cache per
  /// execution, reproducing the historical per-execution dedup; point at
  /// `ServiceCallCache::Process()` (or any shared instance) to let repeated
  /// queries across sessions hit warm entries. Not owned.
  ServiceCallCache* cache = nullptr;
  /// Retry / deadline / breaker / hedging / degradation policy (see
  /// docs/RELIABILITY.md). The default policy is inert and preserves the
  /// historical behavior bit-for-bit.
  ReliabilityPolicy reliability;
  /// Plan-repair policy: what to do when a service is permanently lost
  /// (docs/RELIABILITY.md, "Failover & plan repair"). The failover policies
  /// need `repair.registry`; all repair policies force degradation on for
  /// the individual rounds so losses are observed deterministically.
  RepairOptions repair;
  /// Externally-imposed degradation level from the serving layer's ladder
  /// (docs/SERVER.md). 0 (default) = full quality. The materializing engine
  /// reacts at level >= 3 by forcing `reliability.degrade` on, so permanent
  /// losses yield partial answers instead of failing the query; levels 1-2
  /// (speculation / k+budget cuts) are applied by the caller before Execute.
  /// The level is echoed into `ExecutionResult::degradation_level`.
  int degradation_level = 0;
  /// Cross-query circuit-breaker registry (e.g. a `QueryServer`'s). When
  /// null (default) each execution gets a private registry — the historical
  /// behavior. Sharing lets breaker state persist across queries, so one
  /// query's failures shield the next, and gives the serving layer a live
  /// per-interface health feed. Must outlive the execution. Not owned.
  CircuitBreakerRegistry* shared_breakers = nullptr;
  /// Cooperative cancellation token (docs/SERVER.md, "Cancellation"). The
  /// engine polls it at node and chunk boundaries and aborts the run with
  /// kCancelled; pool jobs not yet started are skipped. null = never
  /// cancellable (the historical behavior).
  std::shared_ptr<CancelToken> cancel;
};

/// One recorded service request-response (when tracing is enabled).
struct CallEvent {
  int node = -1;            ///< plan node that issued the call
  std::string service;      ///< interface name
  std::string binding_key;  ///< serialized input values
  int chunk_index = 0;
  double latency_ms = 0.0;
};

/// Per-node runtime counters.
struct NodeRuntimeStats {
  int calls = 0;
  double latency_ms = 0.0;   ///< sum of this node's call latencies
  int tuples_out = 0;
  double finished_at_ms = 0.0;  ///< simulated completion time of the node
  int cache_hits = 0;  ///< request-responses served from the call cache
};

/// The outcome of executing a fully instantiated plan.
struct ExecutionResult {
  /// Combinations in decreasing combined score (approximate global ranking:
  /// plans without top-k join methods do not guarantee the true top-k).
  std::vector<Combination> combinations;
  int total_calls = 0;
  /// Simulated wall-clock: per-path max of node latencies (parallel
  /// branches overlap; calls within one node are sequential).
  double elapsed_ms = 0.0;
  /// Sum of every call's latency (the fully sequential time).
  double total_latency_ms = 0.0;
  int total_combinations_produced = 0;
  /// Request-responses served from the call cache / issued to services.
  int cache_hits = 0;
  int cache_misses = 0;
  /// Measured real wall-clock duration of Execute(), in milliseconds —
  /// distinct from the *simulated* `elapsed_ms` (see docs/CONCURRENCY.md).
  double wall_clock_ms = 0.0;
  std::map<int, NodeRuntimeStats> node_stats;
  /// Chronological call log; empty unless `ExecutionOptions::collect_trace`.
  std::vector<CallEvent> trace;
  /// Retry / hedge / breaker / deadline telemetry (zero when the policy is
  /// inert).
  ReliabilityStats reliability;
  /// Plan nodes that lost data to permanent service failures; empty unless
  /// `ReliabilityPolicy::degrade` allowed a partial answer.
  std::vector<DegradedStatus> degraded;
  /// Interfaces whose circuit breaker ended the run open.
  std::vector<std::string> open_breakers;
  /// Replanning telemetry; inert (`!any()`) unless a repair policy was set
  /// and a service was actually lost.
  RepairStats repair;
  /// False when any node degraded: `combinations` may then contain partial
  /// combinations (see `Combination::missing_atoms`).
  bool complete = true;
  /// The `ExecutionOptions::degradation_level` this run was executed under,
  /// echoed so multi-query ledgers can attribute quality loss per query.
  int degradation_level = 0;
};

/// Dataflow interpreter for query plans (§3.2): walks the DAG in
/// topological order, materializing each node's output stream.
///
///  - service nodes bind inputs from constants / INPUT variables / piped
///    upstream values, then fetch `fetch_factor` chunks per distinct
///    binding through a `CallScheduler` (bindings run concurrently under
///    `num_threads`, against the shared `ServiceCallCache`), verify
///    pipe-join groups, and honor `keep_per_input`; outcomes are assembled
///    by task index, so results and stats are independent of thread
///    interleaving;
///  - selection nodes re-evaluate *all* selections of the touched atoms
///    jointly, enforcing the §3.1 single-instance repeating-group rule, plus
///    residual join groups;
///  - parallel-join nodes combine branch streams per upstream tuple; with a
///    triangular completion strategy, candidate pairs beyond the
///    anti-diagonal of the fetched chunk grid are skipped (§4.4.2);
///  - the output node scores combinations with the query's ranking weights.
///
/// Execution is stage-materialized: chunk-level interleaving *within* a
/// binary join is the province of `ParallelJoinExecutor`; the engine
/// reproduces its effect through fetch factors and the completion filter.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(ExecutionOptions options)
      : options_(std::move(options)) {}

  Result<ExecutionResult> Execute(const QueryPlan& plan);

 private:
  /// One plan execution round. `cache_override` (when non-null) takes
  /// precedence over `options_.cache` — the repair loop threads one cache
  /// through all rounds so abandoned prefixes replay as hits.
  /// `force_degrade` turns degradation on regardless of the reliability
  /// policy, so a lost service surfaces as `DegradedStatus` instead of
  /// aborting the round.
  Result<ExecutionResult> ExecuteOnce(const QueryPlan& plan,
                                      ServiceCallCache* cache_override,
                                      bool force_degrade);

  ExecutionOptions options_;
};

}  // namespace seco

#endif  // SECO_EXEC_ENGINE_H_
