#include "exec/estimate_report.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace seco {

namespace {

double QError(double est, double actual) {
  if (est <= 0.0 && actual <= 0.0) return 1.0;
  if (est <= 0.0 || actual <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(est / actual, actual / est);
}

}  // namespace

double NodeEstimateDelta::CardinalityQError() const {
  return QError(est_t_out, actual_t_out);
}

double NodeEstimateDelta::CallQError() const {
  return QError(est_calls, actual_calls);
}

EstimateReport CompareEstimates(const QueryPlan& plan,
                                const ExecutionResult& result) {
  EstimateReport report;
  for (const PlanNode& node : plan.nodes()) {
    auto it = result.node_stats.find(node.id);
    if (it == result.node_stats.end()) continue;
    NodeEstimateDelta delta;
    delta.node = node.id;
    switch (node.kind) {
      case PlanNodeKind::kInput:
        continue;  // trivial
      case PlanNodeKind::kOutput:
        delta.label = "output";
        break;
      case PlanNodeKind::kServiceCall:
        delta.label = node.iface ? node.iface->name() : "service";
        break;
      case PlanNodeKind::kParallelJoin:
        delta.label = "join(" + node.strategy.ToString() + ")";
        break;
      case PlanNodeKind::kSelection:
        delta.label = "selection";
        break;
    }
    delta.est_calls = node.est_calls;
    delta.actual_calls = it->second.calls;
    delta.est_t_out = node.t_out;
    delta.actual_t_out = it->second.tuples_out;
    if (node.kind == PlanNodeKind::kServiceCall) {
      report.max_call_qerror =
          std::max(report.max_call_qerror, delta.CallQError());
      report.max_cardinality_qerror =
          std::max(report.max_cardinality_qerror, delta.CardinalityQError());
    }
    report.nodes.push_back(std::move(delta));
  }
  return report;
}

std::string EstimateReport::ToString() const {
  std::ostringstream out;
  out << "node                      est.calls  act.calls   est.t_out  act.t_out"
         "   q(card)\n";
  for (const NodeEstimateDelta& d : nodes) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-24s %10.1f %10.1f %11.1f %10.1f %9.2f\n", d.label.c_str(),
                  d.est_calls, d.actual_calls, d.est_t_out, d.actual_t_out,
                  d.CardinalityQError());
    out << line;
  }
  char tail[120];
  std::snprintf(tail, sizeof(tail),
                "max q-error: calls %.2f, cardinality %.2f\n", max_call_qerror,
                max_cardinality_qerror);
  out << tail;
  return out.str();
}

}  // namespace seco
