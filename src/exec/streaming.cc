#include "exec/streaming.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "data/column_chunk.h"
#include "data/kernels.h"
#include "data/predicate_fast.h"
#include "exec/call_cache.h"
#include "exec/call_scheduler.h"
#include "query/semantics.h"
#include "reliability/circuit_breaker.h"
#include "reliability/resilient_handler.h"
#include "repair/repair_driver.h"
#include "service/invocation.h"

namespace seco {

namespace {

/// A streaming row: one optional tuple+score per atom, plus the chunk index
/// that produced the newest tuple (for completion-strategy filtering).
struct SRow {
  std::vector<std::optional<Tuple>> tuples;
  std::vector<double> scores;
  int chunk_ord = 0;
};

/// One speculative fetch in flight. The pool job writes the response into
/// its slot and Puts it in the call cache; the demand path consumes the slot
/// and charges the call as if it had made it synchronously.
struct SpecFetch {
  std::future<Status> done;
  Result<ServiceResponse> response = Status::Internal("speculation pending");
};

/// Shared run-wide state: budgets, counters, and the speculation ledger.
///
/// The pull pipeline runs entirely on the calling thread; worker jobs touch
/// only their own `SpecFetch` slot and the (internally synchronized) call
/// cache, so none of these fields need locks.
struct RunState {
  const BoundQuery* query = nullptr;
  const StreamingOptions* options = nullptr;
  ServiceCallCache* cache = nullptr;
  CallScheduler* scheduler = nullptr;
  bool speculate = false;
  /// Calls charged against max_calls (the sequential engine's count).
  int charged_calls = 0;
  int cache_hits = 0;
  int cache_misses = 0;
  int speculative_issued = 0;
  int speculative_consumed = 0;
  std::map<int, NodeRuntimeStats> node_stats;
  std::vector<CallEvent> trace;
  /// Cache key -> in-flight speculative fetch. Consulted *before* the call
  /// cache on the demand path: a speculative result must be charged at
  /// consumption, never mistaken for a warm hit.
  std::unordered_map<std::string, std::unique_ptr<SpecFetch>> inflight;
  /// Every service node of the plan, in topological order, for row-driven
  /// downstream speculation.
  std::vector<const PlanNode*> service_nodes;

  // ---- Reliability (see docs/RELIABILITY.md) ----
  /// Effective policy; `resilient` caches `policy.enabled()`.
  ReliabilityPolicy policy;
  bool resilient = false;
  /// Per-service-node resilient wrappers (retry/deadline/breaker/hedging);
  /// raw handlers are used when the policy is inert.
  std::map<int, std::shared_ptr<ServiceCallHandler>> handlers;
  /// Atoms whose service degraded; partial rows missing only these atoms
  /// survive selections, joins, and output as flagged partial answers.
  std::set<int> degraded_atoms;
  std::map<int, DegradedStatus> degraded;
  /// Pipeline-thread sums of consumed latency and reliability overhead —
  /// the deterministic mid-run clock the query deadline is checked against.
  double consumed_latency_ms = 0.0;
  double overhead_consumed_ms = 0.0;
  /// Columnar data-plane counters, merged from every JoinOp of the run.
  ColumnarStats columnar;

  ServiceCallHandler* HandlerFor(const PlanNode& node) const {
    auto it = handlers.find(node.id);
    return it != handlers.end() ? it->second.get() : node.iface->handler();
  }

  bool PastQueryDeadline() const {
    return resilient && policy.query_deadline_ms > 0.0 &&
           consumed_latency_ms + overhead_consumed_ms >
               policy.query_deadline_ms;
  }

  /// Marks `node` degraded by `failure` (called on the pipeline thread at
  /// the deterministic consumption point of the failing fetch).
  /// `cascaded` failures are inherited from a degraded upstream; a node is
  /// flagged cascaded only while *every* failure it saw was. Degradations
  /// struck after the query deadline elapsed are flagged so the repair
  /// layer never mistakes a timeout for a service loss.
  void RecordDegraded(const PlanNode& node, const Status& failure,
                      bool cascaded = false) {
    degraded_atoms.insert(node.atom);
    DegradedStatus status;
    status.node = node.id;
    status.service = node.iface->name();
    status.reason = failure.ToString();
    status.cascaded = cascaded;
    status.query_deadline = PastQueryDeadline();
    auto [it, inserted] = degraded.emplace(node.id, std::move(status));
    ++it->second.failed_bindings;
    if (!inserted) {
      it->second.cascaded = it->second.cascaded && cascaded;
      it->second.query_deadline =
          it->second.query_deadline || PastQueryDeadline();
    }
  }

  /// True when this fetch failure should degrade the node instead of
  /// aborting the run.
  bool ShouldDegrade(const Status& failure) const {
    return resilient && policy.degrade && IsFaultStatus(failure);
  }

  /// Budget slots already spoken for: charged calls plus outstanding
  /// speculation. Real issued calls never exceed this.
  int reserved() const {
    return charged_calls + static_cast<int>(inflight.size());
  }
};

/// Classifies a predicate over atoms `a` and `b` of a row that may be
/// partially bound: 0 = both present (evaluate it), 1 = data missing but
/// only from degraded services (skip the predicate, keep the row),
/// -1 = data missing for a non-degraded reason (drop the row).
int ClassifyEndpoints(const SRow& row, int a, int b, const RunState& state) {
  int cls = 0;
  for (int atom : {a, b}) {
    if (row.tuples[atom].has_value()) continue;
    if (state.degraded_atoms.count(atom) == 0) return -1;
    cls = 1;
  }
  return cls;
}

/// Join-group check with the allocation-free fast path for all-atomic
/// groups (exactly equivalent to the oracle; see data/predicate_fast.h).
Result<bool> HoldsJoinGroup(const BoundQuery& query,
                            const BoundJoinGroup& group, const Tuple& a,
                            const Tuple& b) {
  if (JoinGroupAllAtomic(group)) return EvalAtomicJoinGroup(group, a, b);
  return SatisfiesJoinGroup(query, group, a, b);
}

/// Lazily-fetched, cached result list for one (service, binding) pair.
struct CacheEntry {
  struct Item {
    Tuple tuple;
    double score;
    int chunk_ord;
  };
  std::vector<Item> items;
  int chunks_fetched = 0;
  bool exhausted = false;
};

/// Per-service-node fetch cache shared by every operator touching the node.
using FetchCache = std::map<std::string, CacheEntry>;

/// Chunks a node may fetch per binding: the fetch factor for chunked
/// services, exactly one call otherwise.
int FetchCap(const PlanNode& node) {
  return node.iface->is_chunked() ? std::max(node.fetch_factor, 1) : 1;
}

/// Books one charged call: budget, per-node counters, and the trace.
/// `overhead_ms` is the reliability overhead (backoff + charged deadlines)
/// the consumed response carried — accounted separately from the base
/// simulated clock so a recovered run matches the fault-free run.
void ChargeCall(const PlanNode& node, const std::string& binding_key,
                int chunk, double latency_ms, double overhead_ms,
                RunState* state) {
  // Every charge is observable forward progress for the stuck-query
  // watchdog; cancelled runs stop charging, so the heartbeat goes quiet.
  if (state->options->cancel != nullptr) state->options->cancel->Heartbeat();
  ++state->charged_calls;
  ++state->cache_misses;
  state->consumed_latency_ms += latency_ms;
  state->overhead_consumed_ms += overhead_ms;
  NodeRuntimeStats& stats = state->node_stats[node.id];
  ++stats.calls;
  stats.latency_ms += latency_ms;
  if (state->options->collect_trace) {
    state->trace.push_back(CallEvent{node.id, node.iface->name(), binding_key,
                                     chunk, latency_ms});
  }
}

/// Issues the fetch of (node, binding, chunk) on the pool unless it is
/// already in flight, already cached, or the budget has no free slot.
/// Every guard is evaluated on the pipeline thread, so whether a fetch is
/// speculated never races with demand accounting.
void TrySpeculate(const PlanNode& node, const std::string& binding_key,
                  const std::vector<Value>& binding, int chunk,
                  RunState* state) {
  if (!state->speculate) return;
  // A cancelled run abandons speculation outright: no new lookahead work
  // is worth issuing for an answer nobody will read.
  if (state->options->cancel != nullptr && state->options->cancel->cancelled()) {
    return;
  }
  // Never speculate against a service already declared lost: every such
  // fetch is guaranteed waste, and (for partial-outage fault profiles) its
  // stray successes must not seed the shared cache behind a node the run
  // has already degraded.
  if (state->degraded_atoms.count(node.atom) > 0) return;
  std::string key =
      ServiceCallCache::Key(node.iface->name(), binding_key, chunk);
  if (state->inflight.count(key) > 0) return;
  if (state->reserved() >= state->options->max_calls) return;
  if (state->cache->Contains(key)) return;
  auto fetch = std::make_unique<SpecFetch>();
  SpecFetch* slot = fetch.get();
  ServiceCallHandler* handler = state->HandlerFor(node);
  ServiceCallCache* cache = state->cache;
  std::shared_ptr<CancelToken> cancel = state->options->cancel;
  std::optional<std::future<Status>> job = state->scheduler->SubmitOne(
      [handler, cache, binding, chunk, key, slot, cancel]() -> Status {
        ServiceRequest request;
        request.inputs = binding;
        request.chunk_index = chunk;
        request.cancel = cancel;
        Result<ServiceResponse> resp = handler->Call(request);
        if (resp.ok()) {
          // Cache the clean response: reliability overhead is charged once,
          // at the consumption point of this fetch — a later cache hit must
          // not replay it. Errors are never cached, so a transiently failing
          // speculative fetch cannot poison the cache.
          ServiceResponse clean = resp.value();
          clean.fault_overhead_ms = 0.0;
          cache->Put(key, clean);
        }
        slot->response = std::move(resp);
        return slot->response.status();
      });
  if (!job.has_value()) return;  // inline mode: no thread to hide behind
  slot->done = std::move(*job);
  ++state->speculative_issued;
  state->inflight.emplace(std::move(key), std::move(fetch));
}

/// Speculates chunks [from, from + prefetch_depth) of one binding, within
/// the node's fetch cap.
void SpeculateChunks(const PlanNode& node, const std::string& binding_key,
                     const std::vector<Value>& binding, int from,
                     RunState* state) {
  if (!state->speculate) return;
  int limit = std::min(FetchCap(node), from + state->options->prefetch_depth);
  for (int chunk = from; chunk < limit; ++chunk) {
    TrySpeculate(node, binding_key, binding, chunk, state);
  }
}

/// The demand path: returns the response of (node, binding, chunk) from the
/// speculation ledger, the call cache, or a blocking call — charging
/// exactly when the sequential engine would have charged.
Result<ServiceResponse> FetchChunk(const PlanNode& node,
                                   const std::string& binding_key,
                                   const std::vector<Value>& binding,
                                   int chunk, RunState* state) {
  const int max_calls = state->options->max_calls;
  auto budget_error = [max_calls]() {
    return Status::ResourceExhausted("service call budget exceeded (" +
                                     std::to_string(max_calls) + ")");
  };
  // Query-deadline checks below run on the pipeline thread against the
  // cumulative *consumed* latency + overhead — a deterministic mid-run
  // clock — and guard every charge point. Cache hits stay free.
  std::string key =
      ServiceCallCache::Key(node.iface->name(), binding_key, chunk);
  auto it = state->inflight.find(key);
  if (it != state->inflight.end()) {
    // A speculative fetch covers this demand. It is charged like the fresh
    // call it replaced — including the budget check at the sequential
    // engine's exact abort point — and leaves the ledger, so a repeat
    // demand becomes an ordinary (free) cache hit, as it would have been
    // sequentially.
    if (state->options->cancel != nullptr &&
        state->options->cancel->cancelled()) {
      return state->options->cancel->ToStatus();
    }
    if (state->PastQueryDeadline()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    if (state->charged_calls >= max_calls) return budget_error();
    std::unique_ptr<SpecFetch> fetch = std::move(it->second);
    state->inflight.erase(it);
    fetch->done.wait();
    // A failed speculation is never charged, so it must count as wasted —
    // consume-then-check would leak it out of both `total_calls` and
    // `speculative_wasted`, breaking `real calls = charged + wasted`.
    SECO_RETURN_IF_ERROR(fetch->response.status());
    ++state->speculative_consumed;
    ServiceResponse resp = std::move(fetch->response).value();
    ChargeCall(node, binding_key, chunk, resp.latency_ms,
               resp.fault_overhead_ms, state);
    return resp;
  }
  std::optional<ServiceResponse> cached = state->cache->Get(key);
  if (cached.has_value()) {
    ++state->cache_hits;
    ++state->node_stats[node.id].cache_hits;
    return std::move(*cached);
  }
  if (state->options->cancel != nullptr &&
      state->options->cancel->cancelled()) {
    return state->options->cancel->ToStatus();
  }
  if (state->PastQueryDeadline()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  if (state->charged_calls >= max_calls) return budget_error();
  // Outstanding speculation holds the remaining budget slots; issuing one
  // more real call would overdraw max_calls. This can only fire while
  // speculation is in flight (never in a sequential run).
  if (state->reserved() >= max_calls) return budget_error();
  ServiceRequest request;
  request.inputs = binding;
  request.chunk_index = chunk;
  request.cancel = state->options->cancel;
  SECO_ASSIGN_OR_RETURN(ServiceResponse resp,
                        state->HandlerFor(node)->Call(request));
  // Cache the clean response — reliability overhead is charged exactly once,
  // here at consumption; a later cache hit must not replay it.
  ServiceResponse clean = resp;
  clean.fault_overhead_ms = 0.0;
  state->cache->Put(key, clean);
  ChargeCall(node, binding_key, chunk, resp.latency_ms,
             resp.fault_overhead_ms, state);
  return resp;
}

/// Fetches chunks into `entry` until it holds more than `index` items, the
/// fetch factor is reached, or the service is exhausted. Ahead of every
/// blocking fetch (and of the consumer, once enough items exist), the next
/// chunks of the binding are speculated so they overlap with consumption.
Status EnsureItem(const PlanNode& node, const std::string& binding_key,
                  const std::vector<Value>& binding, CacheEntry* entry,
                  RunState* state, size_t index) {
  const ServiceInterface& iface = *node.iface;
  int fetch_cap = FetchCap(node);
  while (entry->items.size() <= index && !entry->exhausted &&
         entry->chunks_fetched < fetch_cap) {
    // Chunk 0: one chunk ahead only — whether deeper chunks will ever be
    // consumed is unknown, and deep speculation would hold workers that
    // bindings further down the pipe need. Once the consumer crosses a
    // chunk boundary it has demonstrated appetite, so keep the full
    // `prefetch_depth` window in flight.
    if (entry->chunks_fetched == 0) {
      if (1 < fetch_cap) TrySpeculate(node, binding_key, binding, 1, state);
    } else {
      SpeculateChunks(node, binding_key, binding, entry->chunks_fetched + 1,
                      state);
    }
    SECO_ASSIGN_OR_RETURN(
        ServiceResponse resp,
        FetchChunk(node, binding_key, binding, entry->chunks_fetched, state));
    for (size_t t = 0; t < resp.tuples.size(); ++t) {
      entry->items.push_back(CacheEntry::Item{
          std::move(resp.tuples[t]),
          t < resp.scores.size() ? resp.scores[t] : 0.0,
          entry->chunks_fetched});
    }
    ++entry->chunks_fetched;
    if (resp.exhausted || !iface.is_chunked()) entry->exhausted = true;
  }
  if (!entry->exhausted && entry->chunks_fetched < fetch_cap) {
    SpeculateChunks(node, binding_key, binding, entry->chunks_fetched, state);
  }
  return Status::OK();
}

/// Enumerates the distinct input bindings a service node derives from one
/// upstream row: constants / INPUT variables from the node's selections,
/// then piped values from upstream tuples, cross-producted per input path.
/// Returns an *empty* vector — no bindings, not an error — when an input
/// can only pipe from an atom a degraded service never produced: the caller
/// then cascades the degradation instead of aborting.
Result<std::vector<std::vector<Value>>> ComputeNodeBindings(
    const PlanNode& node, const SRow& pulled, RunState* state) {
  std::vector<std::vector<Value>> bindings;
  bindings.emplace_back();
  const BoundQuery& query = *state->query;
  const AccessPattern& pattern = node.iface->pattern();
  for (const AttrPath& in_path : pattern.input_paths()) {
    std::vector<Value> values;
    bool provider_degraded = false;
    for (int sel_idx : node.input_selections) {
      const BoundSelection& sel = query.selections[sel_idx];
      if (sel.atom == node.atom && sel.path == in_path) {
        SECO_ASSIGN_OR_RETURN(
            Value v,
            query.ResolveSelectionValue(sel, state->options->input_bindings));
        values.push_back(std::move(v));
      }
    }
    if (values.empty()) {
      for (int group_idx : node.pipe_groups) {
        for (const JoinClause& clause : query.joins[group_idx].clauses) {
          int provider = -1;
          AttrPath provider_path;
          if (clause.to_atom == node.atom && clause.to_path == in_path) {
            provider = clause.from_atom;
            provider_path = clause.from_path;
          } else if (clause.from_atom == node.atom &&
                     clause.from_path == in_path) {
            provider = clause.to_atom;
            provider_path = clause.to_path;
          }
          if (provider < 0) continue;
          if (!pulled.tuples[provider].has_value()) {
            if (state->degraded_atoms.count(provider) > 0) {
              provider_degraded = true;
            }
            continue;
          }
          pulled.tuples[provider]->ForEachCandidateAt(
              provider_path, [&values](const Value& v) {
                values.push_back(v);
                return true;
              });
        }
        if (!values.empty()) break;
      }
    }
    if (values.empty()) {
      if (provider_degraded) return std::vector<std::vector<Value>>{};
      return Status::Internal("streaming engine: unbound input " +
                              node.iface->schema().PathToString(in_path));
    }
    std::vector<std::vector<Value>> next;
    for (const std::vector<Value>& prefix : bindings) {
      for (const Value& v : values) {
        std::vector<Value> extended = prefix;
        extended.push_back(v);
        next.push_back(std::move(extended));
      }
    }
    bindings = std::move(next);
  }
  return bindings;
}

/// Row-driven speculation: a freshly pulled row already fixes the bindings
/// of every downstream service node whose providers it carries — in a pipe
/// the Flight and Hotel bindings are known the moment the Conference tuple
/// exists, long before the pull front reaches those operators. Warm their
/// opening chunks now, while the pull thread blocks on upstream demand
/// fetches. Binding computation is pure, so nodes whose providers are not
/// bound yet simply skip (the demand path surfaces real errors
/// deterministically); nodes whose atom the row already holds are upstream
/// and were fetched on the way here.
void SpeculateDownstream(const SRow& pulled, int self_id, RunState* state) {
  if (!state->speculate) return;
  for (const PlanNode* other : state->service_nodes) {
    if (other->id == self_id) continue;
    if (pulled.tuples[other->atom].has_value()) continue;
    Result<std::vector<std::vector<Value>>> bindings =
        ComputeNodeBindings(*other, pulled, state);
    if (!bindings.ok()) continue;
    // Opening chunk only: whether this row survives the intervening
    // selections is unknown until the upstream demand fetches return, so
    // deep speculation here is the most likely to be wasted — and it
    // would occupy workers that rows already past the filters need.
    // Deeper chunks pipeline through EnsureItem once consumption begins.
    size_t limit =
        std::min(static_cast<size_t>(state->options->prefetch_depth),
                 bindings.value().size());
    for (size_t b = 0; b < limit; ++b) {
      const std::vector<Value>& binding = bindings.value()[b];
      TrySpeculate(*other, SerializeBinding(binding), binding, 0, state);
    }
  }
}

/// Volcano-style operator interface.
class Op {
 public:
  virtual ~Op() = default;
  /// Fills *row with the next result; returns false at end of stream.
  virtual Result<bool> Next(SRow* row) = 0;
};

/// Emits the single empty seed row.
class InputOp : public Op {
 public:
  explicit InputOp(int num_atoms) : num_atoms_(num_atoms) {}
  Result<bool> Next(SRow* row) override {
    if (done_) return false;
    done_ = true;
    row->tuples.assign(num_atoms_, std::nullopt);
    row->scores.assign(num_atoms_, 0.0);
    row->chunk_ord = 0;
    return true;
  }

 private:
  int num_atoms_;
  bool done_ = false;
};

/// Emits one preset row (used to seed join-branch expanders).
class OneRowOp : public Op {
 public:
  explicit OneRowOp(SRow row) : row_(std::move(row)) {}
  Result<bool> Next(SRow* row) override {
    if (done_) return false;
    done_ = true;
    *row = row_;
    return true;
  }

 private:
  SRow row_;
  bool done_ = false;
};

/// Lazily extends upstream rows with a service's results: pipe joins,
/// constant/INPUT bindings, keep-per-input, pipe-group verification — the
/// streaming counterpart of the materializing engine's service node.
class ServiceCallOp : public Op {
 public:
  ServiceCallOp(std::unique_ptr<Op> upstream, const PlanNode* node,
                RunState* state, FetchCache* cache)
      : upstream_(std::move(upstream)), node_(node), state_(state),
        cache_(cache) {}

  Result<bool> Next(SRow* row) override {
    while (true) {
      if (!current_.has_value()) {
        SRow pulled;
        SECO_ASSIGN_OR_RETURN(bool got, upstream_->Next(&pulled));
        if (!got) return false;
        SECO_ASSIGN_OR_RETURN(bindings_,
                              ComputeNodeBindings(*node_, pulled, state_));
        SpeculateDownstream(pulled, node_->id, state_);
        current_ = std::move(pulled);
        binding_idx_ = 0;
        item_idx_ = 0;
        kept_ = 0;
        row_failed_ = false;
        if (bindings_.empty()) {
          // The row's only providers for this node's inputs came from a
          // degraded service: cascade the degradation so the partial row
          // passes through with this atom flagged missing too.
          state_->RecordDegraded(
              *node_,
              Status::Unavailable("input unavailable: piped from a "
                                  "degraded service"),
              /*cascaded=*/true);
          row_failed_ = true;
        }
      }
      while (binding_idx_ < bindings_.size()) {
        if (node_->keep_per_input > 0 && kept_ >= node_->keep_per_input) break;
        // While the current binding is consumed, warm up the opening chunks
        // of the next distinct bindings.
        if (state_->speculate) {
          size_t ahead = std::min(
              bindings_.size(),
              binding_idx_ + 1 +
                  static_cast<size_t>(state_->options->prefetch_depth));
          for (size_t b = binding_idx_ + 1; b < ahead; ++b) {
            TrySpeculate(*node_, SerializeBinding(bindings_[b]), bindings_[b],
                         0, state_);
          }
        }
        const std::vector<Value>& binding = bindings_[binding_idx_];
        CacheEntry& entry = (*cache_)[SerializeBinding(binding)];
        Status fetch_status = EnsureItem(*node_, SerializeBinding(binding),
                                         binding, &entry, state_, item_idx_);
        if (!fetch_status.ok()) {
          if (!state_->ShouldDegrade(fetch_status)) return fetch_status;
          // Permanent service failure under a degrade policy: mark the node
          // degraded, stop fetching this binding (items already fetched are
          // still consumed), and remember that this upstream row lost data —
          // if nothing else extends it, it passes through partially bound.
          state_->RecordDegraded(*node_, fetch_status);
          entry.exhausted = true;
          row_failed_ = true;
        }
        if (item_idx_ >= entry.items.size()) {
          ++binding_idx_;
          item_idx_ = 0;
          continue;
        }
        const CacheEntry::Item& item = entry.items[item_idx_++];
        SRow extended = *current_;
        extended.tuples[node_->atom] = item.tuple;
        extended.scores[node_->atom] = item.score;
        extended.chunk_ord = item.chunk_ord;
        SECO_ASSIGN_OR_RETURN(bool pipe_ok, VerifyPipeGroups(extended));
        if (!pipe_ok) continue;
        ++kept_;
        ++state_->node_stats[node_->id].tuples_out;
        *row = std::move(extended);
        return true;
      }
      // Row drained. If a degraded service left it with no extension at
      // all, pass it through unextended — downstream operators and the
      // output stage treat the missing (degraded) atom as partial data.
      if (kept_ == 0 && row_failed_) {
        SRow passthrough = std::move(*current_);
        current_.reset();
        ++state_->node_stats[node_->id].tuples_out;
        *row = std::move(passthrough);
        return true;
      }
      current_.reset();  // row drained; pull the next upstream row
    }
  }

 private:
  Result<bool> VerifyPipeGroups(const SRow& extended) {
    const BoundQuery& query = *state_->query;
    for (int group_idx : node_->pipe_groups) {
      const BoundJoinGroup& group = query.joins[group_idx];
      const JoinClause& first = group.clauses[0];
      int a = first.from_atom, b = first.to_atom;
      if (!extended.tuples[a].has_value() || !extended.tuples[b].has_value()) {
        continue;
      }
      SECO_ASSIGN_OR_RETURN(bool holds,
                            HoldsJoinGroup(query, group, *extended.tuples[a],
                                           *extended.tuples[b]));
      if (!holds) return false;
    }
    return true;
  }

  std::unique_ptr<Op> upstream_;
  const PlanNode* node_;
  RunState* state_;
  FetchCache* cache_;
  std::optional<SRow> current_;
  std::vector<std::vector<Value>> bindings_;
  size_t binding_idx_ = 0;
  size_t item_idx_ = 0;
  int kept_ = 0;
  /// True when a degraded-service failure cost the current row data.
  bool row_failed_ = false;
};

/// Filters rows by re-evaluating the touched atoms' selections (joint
/// single-instance rule) and residual join groups.
class SelectionOp : public Op {
 public:
  SelectionOp(std::unique_ptr<Op> upstream, const PlanNode* node,
              RunState* state)
      : upstream_(std::move(upstream)), node_(node), state_(state) {
    for (int sel_idx : node_->selections) {
      int atom = state_->query->selections[sel_idx].atom;
      if (std::find(atoms_.begin(), atoms_.end(), atom) == atoms_.end()) {
        atoms_.push_back(atom);
      }
    }
  }

  Result<bool> Next(SRow* row) override {
    const BoundQuery& query = *state_->query;
    while (true) {
      SRow pulled;
      SECO_ASSIGN_OR_RETURN(bool got, upstream_->Next(&pulled));
      if (!got) return false;
      bool ok = true;
      for (int atom : atoms_) {
        if (!pulled.tuples[atom].has_value()) {
          // A degraded service never produced this atom; its selections
          // cannot be evaluated, but the partial row stays alive.
          if (state_->degraded_atoms.count(atom) > 0) continue;
          ok = false;
          break;
        }
        SECO_ASSIGN_OR_RETURN(
            bool holds, SatisfiesSelections(query, atom, *pulled.tuples[atom],
                                            state_->options->input_bindings));
        if (!holds) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (int group_idx : node_->residual_join_groups) {
          const BoundJoinGroup& group = query.joins[group_idx];
          const JoinClause& first = group.clauses[0];
          int a = first.from_atom, b = first.to_atom;
          int cls = ClassifyEndpoints(pulled, a, b, *state_);
          if (cls == 1) continue;  // degraded endpoint: predicate skipped
          if (cls < 0) {
            ok = false;
            break;
          }
          SECO_ASSIGN_OR_RETURN(bool holds,
                                HoldsJoinGroup(query, group, *pulled.tuples[a],
                                               *pulled.tuples[b]));
          if (!holds) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        ++state_->node_stats[node_->id].tuples_out;
        *row = std::move(pulled);
        return true;
      }
    }
  }

 private:
  std::unique_ptr<Op> upstream_;
  const PlanNode* node_;
  RunState* state_;
  std::vector<int> atoms_;
};

/// Parallel join: per upstream row, materializes every branch but the last,
/// streams the last, and emits verified merges. With triangular completion
/// on two branches, candidate pairs beyond the fetch grid's anti-diagonal
/// are skipped (§4.4.2).
///
/// With speculation on, seeding an upstream row primes *all* branches
/// concurrently: the opening chunks of every branch's distinct bindings are
/// issued on the pool before the branch expanders start their (blocking)
/// demand fetches, so the branches' service calls overlap on the wall
/// clock — the §4 parallel invocation, realized at the fetch layer.
class JoinOp : public Op {
 public:
  JoinOp(std::unique_ptr<Op> upstream, std::vector<const PlanNode*> branches,
         const PlanNode* node, RunState* state,
         std::map<int, FetchCache>* caches)
      : upstream_(std::move(upstream)), branches_(std::move(branches)),
        node_(node), state_(state), caches_(caches) {}

  Result<bool> Next(SRow* row) override {
    const BoundQuery& query = *state_->query;
    while (true) {
      if (!seeded_) {
        SRow pulled;
        SECO_ASSIGN_OR_RETURN(bool got, upstream_->Next(&pulled));
        if (!got) return false;
        PrimeBranches(pulled);
        // Materialize all branches but the last.
        partials_.clear();
        partials_.push_back(pulled);
        for (size_t b = 0; b + 1 < branches_.size(); ++b) {
          std::vector<SRow> next;
          for (const SRow& base : partials_) {
            ServiceCallOp expander(std::make_unique<OneRowOp>(base),
                                   branches_[b], state_,
                                   &(*caches_)[branches_[b]->id]);
            SRow extended;
            while (true) {
              SECO_ASSIGN_OR_RETURN(bool more, expander.Next(&extended));
              if (!more) break;
              next.push_back(extended);
            }
          }
          partials_ = std::move(next);
        }
        last_ = std::make_unique<ServiceCallOp>(
            std::make_unique<OneRowOp>(pulled), branches_.back(), state_,
            &(*caches_)[branches_.back()->id]);
        have_last_row_ = false;
        partial_idx_ = 0;
        PrepareColumnar();
        seeded_ = true;
      }

      while (true) {
        if (!have_last_row_) {
          SECO_ASSIGN_OR_RETURN(bool got, last_->Next(&last_row_));
          if (!got) break;  // this upstream row is drained
          have_last_row_ = true;
          partial_idx_ = 0;
          PrepareMatches();
        }
        bool emitted = false;
        if (col_have_matches_) {
          // Kernel path: `col_matches_` holds exactly the partials whose key
          // equals this last row's (Value::Compare(kEq)-equivalent by
          // ComparableScalarMode), in ascending partial order — the scalar
          // loop's iteration order. The node's single equality group IS that
          // match, so no per-pair re-check runs.
          while (col_match_pos_ < col_matches_.size()) {
            const SRow& partial = partials_[col_matches_[col_match_pos_++]];
            if (branches_.size() == 2 &&
                node_->strategy.completion == JoinCompletion::kTriangular) {
              double fx = std::max(branches_[0]->fetch_factor, 1);
              double fy = std::max(branches_[1]->fetch_factor, 1);
              double pos = (partial.chunk_ord + 0.5) / fx +
                           (last_row_.chunk_ord + 0.5) / fy;
              if (pos > 1.0) continue;
            }
            SRow merged = partial;
            for (size_t a = 0; a < merged.tuples.size(); ++a) {
              if (last_row_.tuples[a].has_value() &&
                  !merged.tuples[a].has_value()) {
                merged.tuples[a] = last_row_.tuples[a];
                merged.scores[a] = last_row_.scores[a];
              }
            }
            ++state_->node_stats[node_->id].tuples_out;
            *row = std::move(merged);
            emitted = true;
            break;
          }
        } else {
          while (partial_idx_ < partials_.size()) {
            const SRow& partial = partials_[partial_idx_++];
            if (branches_.size() == 2 &&
                node_->strategy.completion == JoinCompletion::kTriangular) {
              double fx = std::max(branches_[0]->fetch_factor, 1);
              double fy = std::max(branches_[1]->fetch_factor, 1);
              double pos = (partial.chunk_ord + 0.5) / fx +
                           (last_row_.chunk_ord + 0.5) / fy;
              if (pos > 1.0) continue;
            }
            SRow merged = partial;
            for (size_t a = 0; a < merged.tuples.size(); ++a) {
              if (last_row_.tuples[a].has_value() &&
                  !merged.tuples[a].has_value()) {
                merged.tuples[a] = last_row_.tuples[a];
                merged.scores[a] = last_row_.scores[a];
              }
            }
            bool ok = true;
            for (int group_idx : node_->join_groups) {
              const BoundJoinGroup& group = query.joins[group_idx];
              const JoinClause& first = group.clauses[0];
              int a = first.from_atom, b = first.to_atom;
              int cls = ClassifyEndpoints(merged, a, b, *state_);
              if (cls == 1) continue;  // degraded endpoint: predicate skipped
              if (cls < 0) {
                ok = false;
                break;
              }
              SECO_ASSIGN_OR_RETURN(bool holds,
                                    HoldsJoinGroup(query, group,
                                                   *merged.tuples[a],
                                                   *merged.tuples[b]));
              if (!holds) {
                ok = false;
                break;
              }
            }
            if (ok) {
              ++state_->node_stats[node_->id].tuples_out;
              *row = std::move(merged);
              emitted = true;
              break;
            }
          }
        }
        if (emitted) return true;
        have_last_row_ = false;  // exhausted partials for this last row
        col_have_matches_ = false;
      }
      seeded_ = false;  // advance to the next upstream row
    }
  }

 private:
  /// Issues the opening speculative fetches of every branch for one
  /// upstream row. Binding enumeration is repeated by the expanders right
  /// after (cheap, pure CPU); failures here are ignored — the demand path
  /// will surface them at the deterministic point.
  void PrimeBranches(const SRow& pulled) {
    if (!state_->speculate) return;
    // Seeding materializes every branch but the last in full, so those
    // branches' chunks up to the fetch cap are *certain* demand — issue
    // them all. The last branch streams on demand; only its opening chunk
    // is a sound bet here (deeper chunks pipeline once consumption proves
    // an appetite). Chunk-major across branches so that with few workers
    // every branch starts concurrently instead of one branch's deep chunks
    // starving the others' openers.
    struct Primed {
      const PlanNode* branch;
      std::vector<std::vector<Value>> bindings;
      int chunks;  // how deep to prime this branch
    };
    std::vector<Primed> primed;
    int max_chunks = 0;
    for (size_t b = 0; b < branches_.size(); ++b) {
      const PlanNode* branch = branches_[b];
      Result<std::vector<std::vector<Value>>> bindings =
          ComputeNodeBindings(*branch, pulled, state_);
      if (!bindings.ok()) continue;
      int chunks = b + 1 < branches_.size() ? FetchCap(*branch) : 1;
      max_chunks = std::max(max_chunks, chunks);
      primed.push_back(Primed{branch, std::move(bindings).value(), chunks});
    }
    for (int chunk = 0; chunk < max_chunks; ++chunk) {
      for (const Primed& p : primed) {
        if (chunk >= p.chunks) continue;
        for (const std::vector<Value>& binding : p.bindings) {
          TrySpeculate(*p.branch, SerializeBinding(binding), binding, chunk,
                       state_);
        }
      }
    }
  }

  /// Columnar fast path (docs/DATA_PLANE.md): when the node verifies exactly
  /// one all-atomic equality group whose endpoints split partials-side /
  /// last-branch-side, the partials' keys canonicalize once per seed and
  /// each last row takes one key-scan kernel over them instead of
  /// per-partial oracle calls. Any non-encodable key — or a degraded atom —
  /// falls back to the scalar loop, so answers are bit-identical.
  void PrepareColumnar() {
    col_ok_ = false;
    col_have_matches_ = false;
    if (!state_->degraded_atoms.empty()) return;
    if (node_->join_groups.size() != 1 || partials_.empty()) return;
    const BoundJoinGroup& group =
        state_->query->joins[node_->join_groups[0]];
    if (!IsAtomicEqJoinGroup(group)) return;
    const JoinClause& c = group.clauses[0];
    int last_atom = branches_.back()->atom;
    if (c.from_atom == last_atom && c.to_atom != last_atom) {
      col_last_path_ = c.from_path;
      col_partial_atom_ = c.to_atom;
      col_partial_path_ = c.to_path;
    } else if (c.to_atom == last_atom && c.from_atom != last_atom) {
      col_last_path_ = c.to_path;
      col_partial_atom_ = c.from_atom;
      col_partial_path_ = c.from_path;
    } else {
      return;
    }
    col_last_atom_ = last_atom;
    col_batch_.Clear();
    for (const SRow& partial : partials_) {
      const std::optional<Tuple>& t = partial.tuples[col_partial_atom_];
      if (!t.has_value() || col_partial_path_.attr_index < 0 ||
          col_partial_path_.attr_index >= t->num_slots() ||
          !t->IsAtomic(col_partial_path_.attr_index)) {
        col_batch_.Add(std::nullopt);
        break;
      }
      col_batch_.Add(CanonicalScalarKey(
          t->AtomicAt(col_partial_path_.attr_index), &col_dict_));
      if (!col_batch_.valid) break;
    }
    ++state_->columnar.chunks_decoded;
    if (!col_batch_.valid) {
      ++state_->columnar.decode_fallbacks;
      return;
    }
    col_ok_ = true;
  }

  /// Scans the current last row's canonical key against the partial batch.
  void PrepareMatches() {
    col_have_matches_ = false;
    if (!col_ok_) return;
    const std::optional<Tuple>& t = last_row_.tuples[col_last_atom_];
    std::optional<ScalarKey> key;
    if (t.has_value() && col_last_path_.attr_index >= 0 &&
        col_last_path_.attr_index < t->num_slots() &&
        t->IsAtomic(col_last_path_.attr_index)) {
      key = CanonicalScalarKey(t->AtomicAt(col_last_path_.attr_index),
                               &col_dict_);
    }
    KeyColumn view = col_batch_.View();
    std::optional<PairMode> mode;
    if (key.has_value()) mode = ComparableScalarMode(*key, view);
    if (!mode.has_value()) {
      ++state_->columnar.scalar_batches;
      state_->columnar.scalar_rows += static_cast<long long>(partials_.size());
      return;
    }
    auto t0 = std::chrono::steady_clock::now();
    col_matches_.clear();
    switch (*mode) {
      case PairMode::kI64:
        simd::MatchKeyI64(key->i64, view.i64, view.size, &col_matches_);
        break;
      case PairMode::kF64Bits:
        simd::MatchKeyI64(key->f64_bits, view.f64_bits, view.size,
                          &col_matches_);
        break;
      case PairMode::kDict:
        simd::MatchKeyU32(key->code, view.codes, view.size, &col_matches_);
        break;
    }
    state_->columnar.kernel_ns +=
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ++state_->columnar.kernel_batches;
    state_->columnar.kernel_rows += static_cast<long long>(view.size);
    col_match_pos_ = 0;
    col_have_matches_ = true;
  }

  std::unique_ptr<Op> upstream_;
  std::vector<const PlanNode*> branches_;
  const PlanNode* node_;
  RunState* state_;
  std::map<int, FetchCache>* caches_;
  bool seeded_ = false;
  std::vector<SRow> partials_;
  std::unique_ptr<ServiceCallOp> last_;
  SRow last_row_;
  bool have_last_row_ = false;
  size_t partial_idx_ = 0;
  KeyDictionary col_dict_;
  ScalarKeyBatch col_batch_;
  bool col_ok_ = false;
  int col_partial_atom_ = -1;
  int col_last_atom_ = -1;
  AttrPath col_partial_path_;
  AttrPath col_last_path_;
  std::vector<int32_t> col_matches_;
  size_t col_match_pos_ = 0;
  bool col_have_matches_ = false;
};

/// Recursively builds the operator tree rooted at `node_id`.
Result<std::unique_ptr<Op>> BuildOp(const QueryPlan& plan, int node_id,
                                    RunState* state,
                                    std::map<int, FetchCache>* caches) {
  const PlanNode& node = plan.node(node_id);
  switch (node.kind) {
    case PlanNodeKind::kInput:
      return std::unique_ptr<Op>(
          std::make_unique<InputOp>(static_cast<int>(plan.query().atoms.size())));
    case PlanNodeKind::kServiceCall: {
      SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> upstream,
                            BuildOp(plan, node.inputs[0], state, caches));
      return std::unique_ptr<Op>(std::make_unique<ServiceCallOp>(
          std::move(upstream), &node, state, &(*caches)[node.id]));
    }
    case PlanNodeKind::kSelection: {
      SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> upstream,
                            BuildOp(plan, node.inputs[0], state, caches));
      return std::unique_ptr<Op>(
          std::make_unique<SelectionOp>(std::move(upstream), &node, state));
    }
    case PlanNodeKind::kParallelJoin: {
      if (node.join_upstream < 0) {
        return Status::Unsupported(
            "streaming engine requires join nodes with a recorded upstream");
      }
      SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> upstream,
                            BuildOp(plan, node.join_upstream, state, caches));
      std::vector<const PlanNode*> branches;
      for (int pred : node.inputs) {
        const PlanNode& branch = plan.node(pred);
        if (branch.kind != PlanNodeKind::kServiceCall) {
          return Status::Unsupported(
              "streaming engine supports service-call join branches only");
        }
        branches.push_back(&branch);
      }
      return std::unique_ptr<Op>(std::make_unique<JoinOp>(
          std::move(upstream), std::move(branches), &node, state, caches));
    }
    case PlanNodeKind::kOutput:
      return BuildOp(plan, node.inputs[0], state, caches);
  }
  return Status::Internal("unknown node kind");
}

}  // namespace

Result<StreamingResult> StreamingEngine::Execute(const QueryPlan& plan) {
  // An externally-imposed degradation level (docs/SERVER.md) only removes
  // work: level >= 1 drops speculation, level >= 3 allows partial answers.
  if (options_.degradation_level >= 1) options_.prefetch_depth = 0;
  if (options_.degradation_level >= 3) options_.reliability.degrade = true;
  switch (options_.repair.policy) {
    case RepairPolicy::kOff:
      return ExecuteOnce(plan, nullptr, /*force_degrade=*/false);
    case RepairPolicy::kDegrade:
      return ExecuteOnce(plan, nullptr, /*force_degrade=*/true);
    default:
      break;
  }
  // Failover: all rounds share one cache so chunks materialized by an
  // abandoned round replay as free hits after replanning. (Wasted
  // speculation of earlier rounds also lands in this cache, so repaired
  // runs compare on combinations, not call counts, across prefetch depths.)
  ServiceCallCache round_cache;
  ServiceCallCache* cache = options_.cache ? options_.cache : &round_cache;
  auto run = [this, cache](const QueryPlan& p) {
    return ExecuteOnce(p, cache, /*force_degrade=*/true);
  };
  auto warm = [](const StreamingResult& r, const QueryPlan& p) {
    std::map<std::string, int64_t> warm_calls;
    for (const auto& [id, stats] : r.node_stats) {
      const PlanNode& node = p.node(id);
      if (node.kind != PlanNodeKind::kServiceCall || node.iface == nullptr) {
        continue;
      }
      warm_calls[node.iface->name()] += stats.calls + stats.cache_hits;
    }
    return warm_calls;
  };
  auto clock = [](const StreamingResult& r) { return r.total_latency_ms; };
  return RunWithRepair<StreamingResult>(plan, options_.repair, run, warm,
                                        clock);
}

Result<StreamingResult> StreamingEngine::ExecuteOnce(
    const QueryPlan& plan, ServiceCallCache* cache_override,
    bool force_degrade) {
  auto wall_start = std::chrono::steady_clock::now();
  SECO_RETURN_IF_ERROR(plan.Validate());
  if (options_.interrupt != nullptr) options_.interrupt->Reset();
  // Link the sticky cancel token to the (resettable) pacing flag so a
  // cancel fired mid-run wakes realtime sleeps immediately. The Reset
  // above never un-cancels the token — only the flag is re-armed.
  if (options_.cancel != nullptr) {
    if (options_.cancel->cancelled()) return options_.cancel->ToStatus();
    options_.cancel->LinkInterrupt(options_.interrupt);
  }

  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1 && options_.prefetch_depth > 0) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }
  CallScheduler scheduler(pool.get());
  scheduler.SetCancel(options_.cancel);
  ServiceCallCache local_cache;

  RunState state;
  state.query = &plan.query();
  state.options = &options_;
  state.cache = cache_override != nullptr  ? cache_override
                : options_.cache != nullptr ? options_.cache
                                            : &local_cache;
  state.scheduler = &scheduler;
  state.speculate = scheduler.concurrent() && options_.prefetch_depth > 0;
  state.policy = options_.reliability;
  if (force_degrade) state.policy.degrade = true;
  state.resilient = state.policy.enabled();
  // Attempt-level budget (every delivery attempt, demand or speculative,
  // claims a slot) plus the shared telemetry/breaker state. Only built when
  // the policy is live: the inert path keeps the historical charged-calls
  // guards and raw handlers, bit-for-bit.
  CallBudget budget(state.resilient ? options_.max_calls : -1,
                    options_.cancel);
  ReliabilityLedger ledger;
  CircuitBreakerRegistry local_breakers(state.policy.breaker_failure_threshold,
                                        state.policy.breaker_probe_interval);
  CircuitBreakerRegistry& breakers = options_.shared_breakers != nullptr
                                         ? *options_.shared_breakers
                                         : local_breakers;
  ServiceLostCollector lost_collector;
  SECO_ASSIGN_OR_RETURN(std::vector<int> speculation_order,
                        plan.TopologicalOrder());
  for (int id : speculation_order) {
    const PlanNode& node = plan.node(id);
    if (node.kind == PlanNodeKind::kServiceCall && node.iface) {
      state.service_nodes.push_back(&node);
      if (state.resilient) {
        ReliabilityContext ctx;
        ctx.policy = state.policy;
        ctx.budget = &budget;
        ctx.ledger = &ledger;
        ctx.breakers = &breakers;
        ctx.hedge_pool = pool.get();
        ctx.interrupt = options_.interrupt;
        ctx.lost = &lost_collector;
        ctx.cancel = options_.cancel;
        state.handlers[node.id] = std::make_shared<ResilientHandler>(
            node.iface->handler_ptr(), node.iface->name(), std::move(ctx));
      }
    }
  }
  std::map<int, FetchCache> caches;

  StreamingResult result;
  std::vector<double> weights = plan.query().EffectiveWeights();
  int num_atoms = static_cast<int>(plan.query().atoms.size());

  Status run_status = [&]() -> Status {
    SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> root,
                          BuildOp(plan, plan.output_node(), &state, &caches));
    SRow row;
    while (static_cast<int>(result.combinations.size()) < options_.k) {
      // Combination boundary: the pull pipeline's own cancellation point,
      // for plans whose next combination needs no further service calls
      // (everything cached) and would otherwise never hit a fetch check.
      if (options_.cancel != nullptr && options_.cancel->cancelled()) {
        return options_.cancel->ToStatus();
      }
      SECO_ASSIGN_OR_RETURN(bool got, root->Next(&row));
      if (!got) {
        result.exhausted = true;
        break;
      }
      Combination combo;
      bool viable = true;
      double total = 0.0;
      for (int a = 0; a < num_atoms; ++a) {
        if (!row.tuples[a].has_value()) {
          // A missing atom is only emittable as partial data when its
          // service degraded under a degrade policy; anything else means
          // the row never finished assembling.
          if (state.resilient && state.policy.degrade &&
              state.degraded_atoms.count(a) > 0) {
            combo.components.emplace_back();
            combo.component_scores.push_back(0.0);
            combo.missing_atoms.push_back(a);
            continue;
          }
          viable = false;
          break;
        }
        combo.components.push_back(*row.tuples[a]);
        combo.component_scores.push_back(row.scores[a]);
        total += weights[a] * row.scores[a];
      }
      if (!viable) continue;
      combo.combined_score = total;
      result.combinations.push_back(std::move(combo));
    }
    return Status::OK();
  }();

  // Teardown: wake any realtime-mode sleeps, then wait out speculation still
  // in flight — worker jobs hold pointers into the ledger and must not
  // outlive this frame. Their responses are already in the cache, so the
  // work is not lost, just not consumed by this run.
  if (options_.interrupt != nullptr) options_.interrupt->Trigger();
  for (auto& [key, fetch] : state.inflight) {
    if (fetch->done.valid()) fetch->done.wait();
  }
  pool.reset();
  result.speculative_calls = state.speculative_issued;
  result.speculative_wasted =
      state.speculative_issued - state.speculative_consumed;
  SECO_RETURN_IF_ERROR(run_status);

  result.total_calls = state.charged_calls;
  result.cache_hits = state.cache_hits;
  result.cache_misses = state.cache_misses;
  result.node_stats = std::move(state.node_stats);
  result.trace = std::move(state.trace);
  if (state.resilient) {
    result.reliability = ledger.Snapshot();
    result.reliability.overhead_ms = state.overhead_consumed_ms;
    result.reliability.breakers = breakers.States();
    result.reliability.services_lost = lost_collector.Snapshot();
    result.open_breakers = breakers.OpenBreakers();
  }
  for (auto& [node_id, status] : state.degraded) {
    result.degraded.push_back(std::move(status));
  }
  result.complete = result.degraded.empty();
  result.degradation_level = options_.degradation_level;
  result.columnar = state.columnar;

  // Overlap-aware simulated clock: per-node ready/finish times over the
  // plan DAG, exactly the materializing engine's model — parallel branches
  // count once, and the total is the critical path, not the sum. Computed
  // from charged latencies only, so it is identical at any thread count.
  SECO_ASSIGN_OR_RETURN(std::vector<int> order, plan.TopologicalOrder());
  std::map<int, double> finish;
  for (int id : order) {
    const PlanNode& node = plan.node(id);
    double ready_ms = 0.0;
    for (int pred : node.inputs) ready_ms = std::max(ready_ms, finish[pred]);
    NodeRuntimeStats& stats = result.node_stats[id];
    stats.finished_at_ms = ready_ms + stats.latency_ms;
    finish[id] = stats.finished_at_ms;
    result.total_latency_ms = std::max(result.total_latency_ms, finish[id]);
  }

  result.wall_clock_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace seco
