#include "exec/streaming.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "query/semantics.h"
#include "service/invocation.h"

namespace seco {

namespace {

/// A streaming row: one optional tuple+score per atom, plus the chunk index
/// that produced the newest tuple (for completion-strategy filtering).
struct SRow {
  std::vector<std::optional<Tuple>> tuples;
  std::vector<double> scores;
  int chunk_ord = 0;
};

/// Shared run-wide state: budgets and counters.
struct RunState {
  const BoundQuery* query = nullptr;
  const StreamingOptions* options = nullptr;
  int total_calls = 0;
  double total_latency_ms = 0.0;
};

/// Lazily-fetched, cached result list for one (service, binding) pair.
struct CacheEntry {
  struct Item {
    Tuple tuple;
    double score;
    int chunk_ord;
  };
  std::vector<Item> items;
  int chunks_fetched = 0;
  bool exhausted = false;
};

/// Per-service-node fetch cache shared by every operator touching the node.
using FetchCache = std::map<std::string, CacheEntry>;

std::string BindingKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

/// Fetches chunks into `entry` until it holds more than `index` items, the
/// fetch factor is reached, or the service is exhausted.
Status EnsureItem(const ServiceInterface& iface, const std::vector<Value>& binding,
                  int fetch_factor, CacheEntry* entry, RunState* state,
                  size_t index) {
  while (entry->items.size() <= index && !entry->exhausted &&
         entry->chunks_fetched < std::max(fetch_factor, 1)) {
    if (state->total_calls >= state->options->max_calls) {
      return Status::ResourceExhausted("service call budget exceeded (" +
                                       std::to_string(state->options->max_calls) +
                                       ")");
    }
    ServiceRequest request;
    request.inputs = binding;
    request.chunk_index = entry->chunks_fetched;
    SECO_ASSIGN_OR_RETURN(ServiceResponse resp, iface.handler()->Call(request));
    ++state->total_calls;
    state->total_latency_ms += resp.latency_ms;
    for (size_t t = 0; t < resp.tuples.size(); ++t) {
      entry->items.push_back(CacheEntry::Item{
          std::move(resp.tuples[t]), t < resp.scores.size() ? resp.scores[t] : 0.0,
          entry->chunks_fetched});
    }
    ++entry->chunks_fetched;
    if (resp.exhausted || !iface.is_chunked()) entry->exhausted = true;
  }
  return Status::OK();
}

/// Volcano-style operator interface.
class Op {
 public:
  virtual ~Op() = default;
  /// Fills *row with the next result; returns false at end of stream.
  virtual Result<bool> Next(SRow* row) = 0;
};

/// Emits the single empty seed row.
class InputOp : public Op {
 public:
  explicit InputOp(int num_atoms) : num_atoms_(num_atoms) {}
  Result<bool> Next(SRow* row) override {
    if (done_) return false;
    done_ = true;
    row->tuples.assign(num_atoms_, std::nullopt);
    row->scores.assign(num_atoms_, 0.0);
    row->chunk_ord = 0;
    return true;
  }

 private:
  int num_atoms_;
  bool done_ = false;
};

/// Emits one preset row (used to seed join-branch expanders).
class OneRowOp : public Op {
 public:
  explicit OneRowOp(SRow row) : row_(std::move(row)) {}
  Result<bool> Next(SRow* row) override {
    if (done_) return false;
    done_ = true;
    *row = row_;
    return true;
  }

 private:
  SRow row_;
  bool done_ = false;
};

/// Lazily extends upstream rows with a service's results: pipe joins,
/// constant/INPUT bindings, keep-per-input, pipe-group verification — the
/// streaming counterpart of the materializing engine's service node.
class ServiceCallOp : public Op {
 public:
  ServiceCallOp(std::unique_ptr<Op> upstream, const PlanNode* node,
                RunState* state, FetchCache* cache)
      : upstream_(std::move(upstream)), node_(node), state_(state),
        cache_(cache) {}

  Result<bool> Next(SRow* row) override {
    while (true) {
      if (!current_.has_value()) {
        SRow pulled;
        SECO_ASSIGN_OR_RETURN(bool got, upstream_->Next(&pulled));
        if (!got) return false;
        SECO_RETURN_IF_ERROR(ComputeBindings(pulled));
        current_ = std::move(pulled);
        binding_idx_ = 0;
        item_idx_ = 0;
        kept_ = 0;
      }
      const ServiceInterface& iface = *node_->iface;
      while (binding_idx_ < bindings_.size()) {
        if (node_->keep_per_input > 0 && kept_ >= node_->keep_per_input) break;
        const std::vector<Value>& binding = bindings_[binding_idx_];
        CacheEntry& entry = (*cache_)[BindingKey(binding)];
        SECO_RETURN_IF_ERROR(EnsureItem(iface, binding, node_->fetch_factor,
                                        &entry, state_, item_idx_));
        if (item_idx_ >= entry.items.size()) {
          ++binding_idx_;
          item_idx_ = 0;
          continue;
        }
        const CacheEntry::Item& item = entry.items[item_idx_++];
        SRow extended = *current_;
        extended.tuples[node_->atom] = item.tuple;
        extended.scores[node_->atom] = item.score;
        extended.chunk_ord = item.chunk_ord;
        SECO_ASSIGN_OR_RETURN(bool pipe_ok, VerifyPipeGroups(extended));
        if (!pipe_ok) continue;
        ++kept_;
        *row = std::move(extended);
        return true;
      }
      current_.reset();  // row drained; pull the next upstream row
    }
  }

 private:
  Status ComputeBindings(const SRow& pulled) {
    bindings_.clear();
    bindings_.emplace_back();
    const BoundQuery& query = *state_->query;
    const AccessPattern& pattern = node_->iface->pattern();
    for (const AttrPath& in_path : pattern.input_paths()) {
      std::vector<Value> values;
      for (int sel_idx : node_->input_selections) {
        const BoundSelection& sel = query.selections[sel_idx];
        if (sel.atom == node_->atom && sel.path == in_path) {
          SECO_ASSIGN_OR_RETURN(
              Value v,
              query.ResolveSelectionValue(sel, state_->options->input_bindings));
          values.push_back(std::move(v));
        }
      }
      if (values.empty()) {
        for (int group_idx : node_->pipe_groups) {
          for (const JoinClause& clause : query.joins[group_idx].clauses) {
            int provider = -1;
            AttrPath provider_path;
            if (clause.to_atom == node_->atom && clause.to_path == in_path) {
              provider = clause.from_atom;
              provider_path = clause.from_path;
            } else if (clause.from_atom == node_->atom &&
                       clause.from_path == in_path) {
              provider = clause.to_atom;
              provider_path = clause.to_path;
            }
            if (provider < 0 || !pulled.tuples[provider].has_value()) continue;
            for (Value& v :
                 pulled.tuples[provider]->CandidateValuesAt(provider_path)) {
              values.push_back(std::move(v));
            }
          }
          if (!values.empty()) break;
        }
      }
      if (values.empty()) {
        return Status::Internal("streaming engine: unbound input " +
                                node_->iface->schema().PathToString(in_path));
      }
      std::vector<std::vector<Value>> next;
      for (const std::vector<Value>& prefix : bindings_) {
        for (const Value& v : values) {
          std::vector<Value> extended = prefix;
          extended.push_back(v);
          next.push_back(std::move(extended));
        }
      }
      bindings_ = std::move(next);
    }
    return Status::OK();
  }

  Result<bool> VerifyPipeGroups(const SRow& extended) {
    const BoundQuery& query = *state_->query;
    for (int group_idx : node_->pipe_groups) {
      const BoundJoinGroup& group = query.joins[group_idx];
      const JoinClause& first = group.clauses[0];
      int a = first.from_atom, b = first.to_atom;
      if (!extended.tuples[a].has_value() || !extended.tuples[b].has_value()) {
        continue;
      }
      SECO_ASSIGN_OR_RETURN(bool holds,
                            SatisfiesJoinGroup(query, group, *extended.tuples[a],
                                               *extended.tuples[b]));
      if (!holds) return false;
    }
    return true;
  }

  std::unique_ptr<Op> upstream_;
  const PlanNode* node_;
  RunState* state_;
  FetchCache* cache_;
  std::optional<SRow> current_;
  std::vector<std::vector<Value>> bindings_;
  size_t binding_idx_ = 0;
  size_t item_idx_ = 0;
  int kept_ = 0;
};

/// Filters rows by re-evaluating the touched atoms' selections (joint
/// single-instance rule) and residual join groups.
class SelectionOp : public Op {
 public:
  SelectionOp(std::unique_ptr<Op> upstream, const PlanNode* node,
              RunState* state)
      : upstream_(std::move(upstream)), node_(node), state_(state) {
    for (int sel_idx : node_->selections) {
      int atom = state_->query->selections[sel_idx].atom;
      if (std::find(atoms_.begin(), atoms_.end(), atom) == atoms_.end()) {
        atoms_.push_back(atom);
      }
    }
  }

  Result<bool> Next(SRow* row) override {
    const BoundQuery& query = *state_->query;
    while (true) {
      SRow pulled;
      SECO_ASSIGN_OR_RETURN(bool got, upstream_->Next(&pulled));
      if (!got) return false;
      bool ok = true;
      for (int atom : atoms_) {
        if (!pulled.tuples[atom].has_value()) {
          ok = false;
          break;
        }
        SECO_ASSIGN_OR_RETURN(
            bool holds, SatisfiesSelections(query, atom, *pulled.tuples[atom],
                                            state_->options->input_bindings));
        if (!holds) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (int group_idx : node_->residual_join_groups) {
          const BoundJoinGroup& group = query.joins[group_idx];
          const JoinClause& first = group.clauses[0];
          int a = first.from_atom, b = first.to_atom;
          if (!pulled.tuples[a].has_value() || !pulled.tuples[b].has_value()) {
            ok = false;
            break;
          }
          SECO_ASSIGN_OR_RETURN(bool holds,
                                SatisfiesJoinGroup(query, group,
                                                   *pulled.tuples[a],
                                                   *pulled.tuples[b]));
          if (!holds) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        *row = std::move(pulled);
        return true;
      }
    }
  }

 private:
  std::unique_ptr<Op> upstream_;
  const PlanNode* node_;
  RunState* state_;
  std::vector<int> atoms_;
};

/// Parallel join: per upstream row, materializes every branch but the last,
/// streams the last, and emits verified merges. With triangular completion
/// on two branches, candidate pairs beyond the fetch grid's anti-diagonal
/// are skipped (§4.4.2).
class JoinOp : public Op {
 public:
  JoinOp(std::unique_ptr<Op> upstream, std::vector<const PlanNode*> branches,
         const PlanNode* node, RunState* state,
         std::map<int, FetchCache>* caches)
      : upstream_(std::move(upstream)), branches_(std::move(branches)),
        node_(node), state_(state), caches_(caches) {}

  Result<bool> Next(SRow* row) override {
    const BoundQuery& query = *state_->query;
    while (true) {
      if (!seeded_) {
        SRow pulled;
        SECO_ASSIGN_OR_RETURN(bool got, upstream_->Next(&pulled));
        if (!got) return false;
        // Materialize all branches but the last.
        partials_.clear();
        partials_.push_back(pulled);
        for (size_t b = 0; b + 1 < branches_.size(); ++b) {
          std::vector<SRow> next;
          for (const SRow& base : partials_) {
            ServiceCallOp expander(std::make_unique<OneRowOp>(base),
                                   branches_[b], state_,
                                   &(*caches_)[branches_[b]->id]);
            SRow extended;
            while (true) {
              SECO_ASSIGN_OR_RETURN(bool more, expander.Next(&extended));
              if (!more) break;
              next.push_back(extended);
            }
          }
          partials_ = std::move(next);
        }
        last_ = std::make_unique<ServiceCallOp>(
            std::make_unique<OneRowOp>(pulled), branches_.back(), state_,
            &(*caches_)[branches_.back()->id]);
        have_last_row_ = false;
        partial_idx_ = 0;
        seeded_ = true;
      }

      while (true) {
        if (!have_last_row_) {
          SECO_ASSIGN_OR_RETURN(bool got, last_->Next(&last_row_));
          if (!got) break;  // this upstream row is drained
          have_last_row_ = true;
          partial_idx_ = 0;
        }
        bool emitted = false;
        while (partial_idx_ < partials_.size()) {
          const SRow& partial = partials_[partial_idx_++];
          if (branches_.size() == 2 &&
              node_->strategy.completion == JoinCompletion::kTriangular) {
            double fx = std::max(branches_[0]->fetch_factor, 1);
            double fy = std::max(branches_[1]->fetch_factor, 1);
            double pos = (partial.chunk_ord + 0.5) / fx +
                         (last_row_.chunk_ord + 0.5) / fy;
            if (pos > 1.0) continue;
          }
          SRow merged = partial;
          for (size_t a = 0; a < merged.tuples.size(); ++a) {
            if (last_row_.tuples[a].has_value() && !merged.tuples[a].has_value()) {
              merged.tuples[a] = last_row_.tuples[a];
              merged.scores[a] = last_row_.scores[a];
            }
          }
          bool ok = true;
          for (int group_idx : node_->join_groups) {
            const BoundJoinGroup& group = query.joins[group_idx];
            const JoinClause& first = group.clauses[0];
            int a = first.from_atom, b = first.to_atom;
            if (!merged.tuples[a].has_value() || !merged.tuples[b].has_value()) {
              ok = false;
              break;
            }
            SECO_ASSIGN_OR_RETURN(bool holds,
                                  SatisfiesJoinGroup(query, group,
                                                     *merged.tuples[a],
                                                     *merged.tuples[b]));
            if (!holds) {
              ok = false;
              break;
            }
          }
          if (ok) {
            *row = std::move(merged);
            emitted = true;
            break;
          }
        }
        if (emitted) return true;
        have_last_row_ = false;  // exhausted partials for this last row
      }
      seeded_ = false;  // advance to the next upstream row
    }
  }

 private:
  std::unique_ptr<Op> upstream_;
  std::vector<const PlanNode*> branches_;
  const PlanNode* node_;
  RunState* state_;
  std::map<int, FetchCache>* caches_;
  bool seeded_ = false;
  std::vector<SRow> partials_;
  std::unique_ptr<ServiceCallOp> last_;
  SRow last_row_;
  bool have_last_row_ = false;
  size_t partial_idx_ = 0;
};

/// Recursively builds the operator tree rooted at `node_id`.
Result<std::unique_ptr<Op>> BuildOp(const QueryPlan& plan, int node_id,
                                    RunState* state,
                                    std::map<int, FetchCache>* caches) {
  const PlanNode& node = plan.node(node_id);
  switch (node.kind) {
    case PlanNodeKind::kInput:
      return std::unique_ptr<Op>(
          std::make_unique<InputOp>(static_cast<int>(plan.query().atoms.size())));
    case PlanNodeKind::kServiceCall: {
      SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> upstream,
                            BuildOp(plan, node.inputs[0], state, caches));
      return std::unique_ptr<Op>(std::make_unique<ServiceCallOp>(
          std::move(upstream), &node, state, &(*caches)[node.id]));
    }
    case PlanNodeKind::kSelection: {
      SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> upstream,
                            BuildOp(plan, node.inputs[0], state, caches));
      return std::unique_ptr<Op>(
          std::make_unique<SelectionOp>(std::move(upstream), &node, state));
    }
    case PlanNodeKind::kParallelJoin: {
      if (node.join_upstream < 0) {
        return Status::Unsupported(
            "streaming engine requires join nodes with a recorded upstream");
      }
      SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> upstream,
                            BuildOp(plan, node.join_upstream, state, caches));
      std::vector<const PlanNode*> branches;
      for (int pred : node.inputs) {
        const PlanNode& branch = plan.node(pred);
        if (branch.kind != PlanNodeKind::kServiceCall) {
          return Status::Unsupported(
              "streaming engine supports service-call join branches only");
        }
        branches.push_back(&branch);
      }
      return std::unique_ptr<Op>(std::make_unique<JoinOp>(
          std::move(upstream), std::move(branches), &node, state, caches));
    }
    case PlanNodeKind::kOutput:
      return BuildOp(plan, node.inputs[0], state, caches);
  }
  return Status::Internal("unknown node kind");
}

}  // namespace

Result<StreamingResult> StreamingEngine::Execute(const QueryPlan& plan) {
  SECO_RETURN_IF_ERROR(plan.Validate());
  RunState state;
  state.query = &plan.query();
  state.options = &options_;
  std::map<int, FetchCache> caches;
  SECO_ASSIGN_OR_RETURN(std::unique_ptr<Op> root,
                        BuildOp(plan, plan.output_node(), &state, &caches));

  StreamingResult result;
  std::vector<double> weights = plan.query().EffectiveWeights();
  int num_atoms = static_cast<int>(plan.query().atoms.size());
  SRow row;
  while (static_cast<int>(result.combinations.size()) < options_.k) {
    SECO_ASSIGN_OR_RETURN(bool got, root->Next(&row));
    if (!got) {
      result.exhausted = true;
      break;
    }
    Combination combo;
    bool complete = true;
    double total = 0.0;
    for (int a = 0; a < num_atoms; ++a) {
      if (!row.tuples[a].has_value()) {
        complete = false;
        break;
      }
      combo.components.push_back(*row.tuples[a]);
      combo.component_scores.push_back(row.scores[a]);
      total += weights[a] * row.scores[a];
    }
    if (!complete) continue;
    combo.combined_score = total;
    result.combinations.push_back(std::move(combo));
  }
  result.total_calls = state.total_calls;
  result.total_latency_ms = state.total_latency_ms;
  return result;
}

}  // namespace seco
