#ifndef SECO_EXEC_CALL_CACHE_H_
#define SECO_EXEC_CALL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/invocation.h"

namespace seco {

/// Serializes an input binding to a stable cache-key fragment: each value's
/// textual form followed by a 0x1f separator. The engine and the join layer
/// share this so their entries interoperate.
std::string SerializeBinding(const std::vector<Value>& values);

/// Aggregate counters of a `ServiceCallCache`.
struct CallCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Entries dropped because their generation stamp was older than the
  /// cache's current generation (see `BumpGeneration`).
  int64_t invalidations = 0;
  int64_t entries = 0;
  int64_t bytes = 0;
  /// Sum of the per-shard byte high-water marks — an upper bound on any
  /// instantaneous total footprint the cache ever had. Never exceeds the
  /// byte budget; the gap between it and `bytes` measures churn headroom.
  int64_t bytes_high_water = 0;
};

/// Per-shard counters, for diagnosing hash skew and contention hot spots.
struct CallCacheShardStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t bytes_high_water = 0;
};

/// A process-wide, sharded, byte-budgeted LRU cache of service responses.
///
/// Keyed by (service interface name, serialized input binding, chunk
/// index) — exactly the identity of one request-response — so any executor
/// (engine service nodes, `ChunkSource`, resumable cursors) can reuse warm
/// entries across queries and sessions. Each shard has its own mutex and
/// LRU list; a key is hashed to one shard, so concurrent callers touching
/// different shards never contend.
///
/// Determinism note: cached responses carry the latency the original call
/// was charged, but executors do NOT replay that latency on a hit — a hit
/// models "no remote call happened". Hit/miss behaviour is a deterministic
/// function of the request history as long as the byte budget is not
/// exceeded (eviction order under concurrent Put is schedule-dependent);
/// size the budget generously when bit-reproducibility matters.
class ServiceCallCache {
 public:
  static constexpr size_t kDefaultByteBudget = 64 << 20;  // 64 MiB
  static constexpr int kDefaultShards = 16;

  explicit ServiceCallCache(size_t byte_budget = kDefaultByteBudget,
                            int num_shards = kDefaultShards);

  ServiceCallCache(const ServiceCallCache&) = delete;
  ServiceCallCache& operator=(const ServiceCallCache&) = delete;

  /// Composes the canonical cache key of one request.
  static std::string Key(const std::string& service,
                         const std::string& binding_key, int chunk_index);

  /// Returns the cached response and refreshes its recency, or nullopt.
  std::optional<ServiceResponse> Get(const std::string& key);

  /// True if `key` is currently cached. Unlike `Get`, this is a pure probe:
  /// it bumps neither the hit/miss counters nor the entry's recency, so
  /// speculative planners can ask "is this fetch already covered?" without
  /// distorting the statistics a deterministic run must reproduce.
  bool Contains(const std::string& key) const;

  /// Inserts (or refreshes) `response` under `key`, evicting least-recently
  /// used entries of the same shard while the shard overflows its share of
  /// the byte budget. An entry larger than a whole shard's budget is not
  /// admitted.
  void Put(const std::string& key, const ServiceResponse& response);

  /// Counters summed over all shards.
  CallCacheStats stats() const;

  /// Per-shard counter snapshot, indexed by shard.
  std::vector<CallCacheShardStats> shard_stats() const;

  /// O(1) logical invalidation: entries stamped with an older generation
  /// are treated as absent and reclaimed lazily on their next touch. Lets
  /// callers flush stale responses (a backend's data changed, a registry
  /// epoch moved on) without a process restart or a stop-the-world Clear().
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Drops every entry; counters are reset too.
  void Clear();

  int num_shards() const { return num_shards_; }

  /// The configured byte budget (shard budget x shards). `stats().bytes`
  /// never exceeds this; `bytes / byte_budget()` is the cache-pressure
  /// signal the serving layer's degradation ladder reads (docs/SERVER.md).
  size_t byte_budget() const {
    return shard_budget_ * static_cast<size_t>(num_shards_);
  }

  /// Which shard `key` lives in (exposed for the distribution tests).
  size_t ShardOf(const std::string& key) const;

  /// The process-wide instance shared by all sessions (default budget).
  static ServiceCallCache* Process();

 private:
  struct Entry {
    std::string key;
    ServiceResponse response;
    size_t bytes = 0;
    uint64_t generation = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    size_t bytes_high_water = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t invalidations = 0;
  };

  /// Erases `it`'s entry from `shard` and counts it as an invalidation.
  void InvalidateLocked(Shard& shard,
                        std::unordered_map<std::string,
                                           std::list<Entry>::iterator>::iterator
                            it);

  int num_shards_;
  size_t shard_budget_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace seco

#endif  // SECO_EXEC_CALL_CACHE_H_
