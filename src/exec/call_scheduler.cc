#include "exec/call_scheduler.h"

#include <future>

namespace seco {

Status CallScheduler::RunAll(std::vector<CallJob> jobs) {
  if (!concurrent()) {
    for (CallJob& job : jobs) {
      if (cancel_ != nullptr && cancel_->cancelled()) {
        return cancel_->ToStatus();
      }
      Status status = job();
      if (!status.ok()) return status;
    }
    return Status::OK();
  }
  std::vector<std::future<Status>> futures;
  futures.reserve(jobs.size());
  for (CallJob& job : jobs) {
    if (cancel_ != nullptr) {
      // Wrap so a job popped off the queue after cancellation returns
      // immediately: the pool thread is released in O(1) rather than after
      // a full fetch chain.
      std::shared_ptr<CancelToken> token = cancel_;
      CallJob inner = std::move(job);
      job = [token = std::move(token), inner = std::move(inner)]() -> Status {
        if (token->cancelled()) return token->ToStatus();
        return inner();
      };
    }
    futures.push_back(pool_->Submit(std::move(job)));
  }
  Status first_error;
  for (std::future<Status>& future : futures) {
    Status status = future.get();
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  return first_error;
}

std::optional<std::future<Status>> CallScheduler::SubmitOne(CallJob job) {
  if (!concurrent()) return std::nullopt;
  return pool_->Submit(std::move(job));
}

}  // namespace seco
