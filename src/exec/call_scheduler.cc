#include "exec/call_scheduler.h"

#include <future>

namespace seco {

Status CallScheduler::RunAll(std::vector<CallJob> jobs) {
  if (!concurrent()) {
    for (CallJob& job : jobs) {
      Status status = job();
      if (!status.ok()) return status;
    }
    return Status::OK();
  }
  std::vector<std::future<Status>> futures;
  futures.reserve(jobs.size());
  for (CallJob& job : jobs) {
    futures.push_back(pool_->Submit(std::move(job)));
  }
  Status first_error;
  for (std::future<Status>& future : futures) {
    Status status = future.get();
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  return first_error;
}

std::optional<std::future<Status>> CallScheduler::SubmitOne(CallJob job) {
  if (!concurrent()) return std::nullopt;
  return pool_->Submit(std::move(job));
}

}  // namespace seco
