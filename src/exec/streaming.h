#ifndef SECO_EXEC_STREAMING_H_
#define SECO_EXEC_STREAMING_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "service/tuple.h"

namespace seco {

/// Options of a streaming execution.
struct StreamingOptions {
  /// Stop after emitting this many combinations.
  int k = 10;
  std::map<std::string, Value> input_bindings;
  /// Safety budget on service calls.
  int max_calls = 10000;
};

/// Result of a streaming run. Combinations appear in *arrival order* — the
/// §4.1 non-blocking dataflow: tuples reach the user while extraction is
/// still in progress, in an approximation of the ranking order (tiles are
/// explored best-first, but no global sort ever happens).
struct StreamingResult {
  std::vector<Combination> combinations;
  int total_calls = 0;
  double total_latency_ms = 0.0;
  /// True if the sources were exhausted before k combinations appeared.
  bool exhausted = false;
};

/// Pull-based (Volcano-style) interpreter for the same plans the
/// materializing `ExecutionEngine` runs. The crucial difference (§3.2: the
/// query interface "can be set so as to retrieve continuously tuples from
/// the execution engine, without waiting for the extraction of k tuples"):
///
///  - combinations stream out as soon as they are assembled, and
///  - upstream service calls happen lazily, so the run stops paying for
///    request-responses the moment the k-th combination is emitted —
///    fetch factors act as caps, not as prepaid work.
///
/// `bench_streaming` quantifies the calls saved versus the materializing
/// engine at equal k. Restrictions: parallel-join nodes stream their last
/// branch and materialize the others per upstream tuple; simulated time is
/// reported as the sequential latency sum (no overlap model).
class StreamingEngine {
 public:
  explicit StreamingEngine(StreamingOptions options)
      : options_(std::move(options)) {}

  Result<StreamingResult> Execute(const QueryPlan& plan);

 private:
  StreamingOptions options_;
};

}  // namespace seco

#endif  // SECO_EXEC_STREAMING_H_
