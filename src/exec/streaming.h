#ifndef SECO_EXEC_STREAMING_H_
#define SECO_EXEC_STREAMING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/interrupt.h"
#include "common/result.h"
#include "data/column_chunk.h"
#include "exec/engine.h"
#include "plan/plan.h"
#include "service/tuple.h"

namespace seco {

class ServiceCallCache;
class CircuitBreakerRegistry;

/// Options of a streaming execution.
struct StreamingOptions {
  /// Stop after emitting this many combinations.
  int k = 10;
  std::map<std::string, Value> input_bindings;
  /// Safety budget on *charged* service calls — the calls the sequential
  /// engine would make. Speculative fetches reserve budget while in flight
  /// (charged + outstanding never exceeds this) but are only charged when
  /// their result is actually consumed.
  int max_calls = 10000;
  /// Worker threads of the speculative prefetcher. 1 (default) keeps the
  /// historical fully sequential pull pipeline; any value yields
  /// bit-identical combinations, charged calls, and traces.
  int num_threads = 1;
  /// How far ahead of the consumer the prefetcher may run per service node:
  /// up to `prefetch_depth` chunks beyond the one being consumed, and the
  /// first chunks of up to `prefetch_depth` upcoming distinct bindings.
  /// 0 (default) disables speculation.
  int prefetch_depth = 0;
  /// Service-call cache. nullptr (default) = a fresh private cache per
  /// execution; point at `ServiceCallCache::Process()` (or any shared
  /// instance) to let repeated queries hit warm entries — including entries
  /// a speculative fetch paid for in an earlier run. Not owned.
  ServiceCallCache* cache = nullptr;
  /// When true, every charged call is recorded in StreamingResult::trace.
  bool collect_trace = false;
  /// Shared with realtime-mode services (`SimulatedService::set_interrupt`):
  /// triggered when the run ends so speculative fetches still sleeping on
  /// pool threads stop blocking teardown. Optional.
  std::shared_ptr<InterruptFlag> interrupt;
  /// Retry / deadline / breaker / hedging / degradation policy (see
  /// docs/RELIABILITY.md). The default policy is inert and preserves the
  /// historical behavior bit-for-bit. Under a policy, every delivery
  /// *attempt* — demand or speculative — claims a `max_calls` slot, so a
  /// retry storm can never overdraw the budget. The streaming engine
  /// applies `query_deadline_ms` to the cumulative charged latency plus
  /// reliability overhead (its deterministic mid-run clock).
  ReliabilityPolicy reliability;
  /// Plan-repair policy: what to do when a service is permanently lost
  /// (docs/RELIABILITY.md, "Failover & plan repair"). The failover policies
  /// need `repair.registry`; repair rounds share one call cache so an
  /// abandoned round's chunks replay as free hits after replanning.
  RepairOptions repair;
  /// Externally-imposed degradation level from the serving layer's ladder
  /// (docs/SERVER.md). 0 (default) = full quality. Level >= 1 drops
  /// speculation (`prefetch_depth` is treated as 0); level >= 3 additionally
  /// forces `reliability.degrade` on so permanent losses yield partial
  /// answers. Levels only remove work, so a degraded answer is always a
  /// subset-quality version of the undegraded one. Echoed into
  /// `StreamingResult::degradation_level`.
  int degradation_level = 0;
  /// Cross-query circuit-breaker registry (e.g. a `QueryServer`'s). When
  /// null (default) each execution gets a private registry — the historical
  /// behavior. Must outlive the execution. Not owned.
  CircuitBreakerRegistry* shared_breakers = nullptr;
  /// Cooperative cancellation token (docs/SERVER.md, "Cancellation").
  /// Polled at chunk boundaries by the pull pipeline and by in-flight
  /// fetch jobs; a fired token abandons speculation and aborts the run
  /// with kCancelled. The run's teardown is the same as a normal exit:
  /// every in-flight future is drained before the pool dies, so a
  /// cancelled run leaks nothing. null = never cancellable.
  std::shared_ptr<CancelToken> cancel;
};

/// Result of a streaming run. Combinations appear in *arrival order* — the
/// §4.1 non-blocking dataflow: tuples reach the user while extraction is
/// still in progress, in an approximation of the ranking order (tiles are
/// explored best-first, but no global sort ever happens).
struct StreamingResult {
  std::vector<Combination> combinations;
  /// Calls charged against `max_calls`: demand misses plus consumed
  /// speculative fetches. Identical at any thread count / prefetch depth.
  int total_calls = 0;
  /// Simulated critical-path time: per-node ready/finish times over the
  /// plan DAG, so overlapping branches count once (matches the
  /// materializing engine's `elapsed_ms` clock model).
  double total_latency_ms = 0.0;
  /// True if the sources were exhausted before k combinations appeared.
  bool exhausted = false;
  /// Measured real duration of Execute(), in milliseconds.
  double wall_clock_ms = 0.0;
  /// Request-responses served from the call cache / issued to services.
  /// Consumed speculative fetches count as misses (they are charged), never
  /// as hits, so these totals match the sequential baseline.
  int cache_hits = 0;
  int cache_misses = 0;
  /// Speculative fetches issued / issued-but-never-consumed. Wasted fetches
  /// are *not* in `total_calls` — their responses stay in the cache, so the
  /// work is recoverable by later runs.
  int speculative_calls = 0;
  int speculative_wasted = 0;
  std::map<int, NodeRuntimeStats> node_stats;
  /// Chronological charged-call log; empty unless
  /// `StreamingOptions::collect_trace`. Identical at any thread count.
  std::vector<CallEvent> trace;
  /// Retry / hedge / breaker / deadline telemetry (zero when the policy is
  /// inert).
  ReliabilityStats reliability;
  /// Plan nodes that lost data to permanent service failures; empty unless
  /// `ReliabilityPolicy::degrade` allowed a partial answer.
  std::vector<DegradedStatus> degraded;
  /// Interfaces whose circuit breaker ended the run open.
  std::vector<std::string> open_breakers;
  /// Replanning telemetry; inert (`!any()`) unless a repair policy was set
  /// and a service was actually lost.
  RepairStats repair;
  /// False when any node degraded: `combinations` may then contain partial
  /// combinations (see `Combination::missing_atoms`).
  bool complete = true;
  /// The `StreamingOptions::degradation_level` this run was executed under,
  /// echoed so multi-query ledgers can attribute quality loss per query.
  int degradation_level = 0;
  /// Columnar data-plane counters (docs/DATA_PLANE.md): join nodes whose
  /// single equality group ran as a key-scan kernel over canonicalized
  /// partial-row keys, vs. rows that took the scalar predicate.
  ColumnarStats columnar;
};

/// Pull-based (Volcano-style) interpreter for the same plans the
/// materializing `ExecutionEngine` runs. The crucial difference (§3.2: the
/// query interface "can be set so as to retrieve continuously tuples from
/// the execution engine, without waiting for the extraction of k tuples"):
///
///  - combinations stream out as soon as they are assembled, and
///  - upstream service calls happen lazily, so the run stops paying for
///    request-responses the moment the k-th combination is emitted —
///    fetch factors act as caps, not as prepaid work.
///
/// With `num_threads > 1` and `prefetch_depth > 0` a speculative prefetcher
/// overlaps the pull pipeline with upcoming fetches: while the consumer
/// digests chunk *i* of a node, chunk *i+1* (and the first chunks of the
/// next distinct bindings) fetch on a thread pool, and parallel-join nodes
/// prime all branches concurrently. Speculation changes only the real wall
/// clock — emitted combinations, charged calls, traces, and the simulated
/// clock stay bit-identical to the sequential run (docs/CONCURRENCY.md).
/// `total_latency_ms` is the overlap-aware critical path through the plan
/// DAG, matching the materializing engine's clock model.
///
/// `bench_streaming` quantifies the calls saved versus the materializing
/// engine at equal k, and the wall-clock speedup of prefetching under
/// realtime-mode services.
class StreamingEngine {
 public:
  explicit StreamingEngine(StreamingOptions options)
      : options_(std::move(options)) {}

  Result<StreamingResult> Execute(const QueryPlan& plan);

 private:
  /// One streaming round. `cache_override` (when non-null) takes precedence
  /// over `options_.cache` — the repair loop threads one cache through all
  /// rounds so abandoned prefixes replay as hits. `force_degrade` turns
  /// degradation on regardless of the reliability policy, so a lost service
  /// surfaces as `DegradedStatus` instead of aborting the round.
  Result<StreamingResult> ExecuteOnce(const QueryPlan& plan,
                                      ServiceCallCache* cache_override,
                                      bool force_degrade);

  StreamingOptions options_;
};

}  // namespace seco

#endif  // SECO_EXEC_STREAMING_H_
