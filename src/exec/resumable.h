#ifndef SECO_EXEC_RESUMABLE_H_
#define SECO_EXEC_RESUMABLE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/call_cache.h"
#include "exec/engine.h"

namespace seco {

/// Wraps a service handler, memoizing responses by (inputs, chunk index).
/// Repeated requests return the cached response with zero latency, so
/// re-running a plan after growing its fetch factors only pays for the new
/// calls — the substrate of resumable execution.
///
/// Storage is a `ServiceCallCache` keyed exactly like the engine and the
/// join layer key theirs, not a private map: hand the handler a shared
/// cache (e.g. `ServiceCallCache::Process()`) and resumable runs exchange
/// warm entries with engine and streaming runs — a response any executor
/// paid for is free here, and vice versa. Without one, the handler owns a
/// private cache, preserving the historical per-handler memoization.
class CachingHandler : public ServiceCallHandler {
 public:
  /// `service_name` scopes the cache keys (empty works but only separates
  /// handlers through their bindings); `cache` is not owned and may be
  /// null, in which case a private cache is created.
  explicit CachingHandler(std::shared_ptr<ServiceCallHandler> inner,
                          std::string service_name = "",
                          ServiceCallCache* cache = nullptr);

  Result<ServiceResponse> Call(const ServiceRequest& request) override;

  /// Requests actually forwarded to the backing service.
  int64_t novel_calls() const { return novel_calls_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  std::shared_ptr<ServiceCallHandler> inner_;
  std::string service_name_;
  std::unique_ptr<ServiceCallCache> owned_cache_;  // when no shared cache
  ServiceCallCache* cache_;
  int64_t novel_calls_ = 0;
  int64_t cache_hits_ = 0;
};

/// One batch of a resumable run.
struct ResumeBatch {
  /// The combinations *new in this batch* (not returned before), in
  /// decreasing combined score.
  std::vector<Combination> combinations;
  /// Calls actually paid to backing services in this batch.
  int64_t novel_calls = 0;
  /// Simulated time charged in this batch (cache hits are free).
  double elapsed_ms = 0.0;
  /// False when the sources cannot produce any further combination.
  bool may_have_more = true;
};

/// §3.2: "a plan execution can be continued, after an explicit user
/// request, thereby producing more tuples". ResumableExecution re-runs the
/// plan with progressively larger fetching factors; a per-service response
/// cache makes the already-paid prefix free, so each `FetchMore` charges
/// only the increment.
class ResumableExecution {
 public:
  /// `plan` is copied; its service interfaces are rebound to caching
  /// handlers. `options.k` is the batch size of the first FetchMore.
  ResumableExecution(const QueryPlan& plan, ExecutionOptions options);

  /// Produces up to `count` combinations beyond everything returned so far.
  Result<ResumeBatch> FetchMore(int count);

  /// Combinations handed out across all batches.
  int total_returned() const { return total_returned_; }
  /// Novel (paid) backend calls across all batches.
  int64_t total_novel_calls() const;
  int rounds() const { return rounds_; }

 private:
  QueryPlan plan_;
  ExecutionOptions options_;
  std::vector<std::shared_ptr<CachingHandler>> caches_;
  std::set<std::string> seen_;  ///< content keys of returned combinations
  int total_returned_ = 0;
  int rounds_ = 0;
  bool exhausted_ = false;
};

}  // namespace seco

#endif  // SECO_EXEC_RESUMABLE_H_
