#include "core/session.h"

namespace seco {

Result<BoundQuery> QuerySession::Prepare(const std::string& query_text) const {
  SECO_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(query_text));
  return BindQuery(parsed, *registry_);
}

Result<OptimizationResult> QuerySession::Optimize(const BoundQuery& query) const {
  Optimizer optimizer(optimizer_options_);
  return optimizer.Optimize(query);
}

Result<QueryOutcome> QuerySession::Run(
    const std::string& query_text, const std::map<std::string, Value>& inputs,
    int max_calls) const {
  QueryOutcome outcome;
  SECO_ASSIGN_OR_RETURN(outcome.parsed, ParseQuery(query_text));
  SECO_ASSIGN_OR_RETURN(outcome.bound, BindQuery(outcome.parsed, *registry_));
  Optimizer optimizer(optimizer_options_);
  SECO_ASSIGN_OR_RETURN(outcome.optimization, optimizer.Optimize(outcome.bound));
  ExecutionOptions exec_options = execution_options_;
  exec_options.k = optimizer_options_.k;
  exec_options.input_bindings = inputs;
  exec_options.max_calls = max_calls;
  ExecutionEngine engine(exec_options);
  SECO_ASSIGN_OR_RETURN(outcome.execution,
                        engine.Execute(outcome.optimization.plan));
  return outcome;
}

}  // namespace seco
