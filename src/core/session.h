#ifndef SECO_CORE_SESSION_H_
#define SECO_CORE_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "exec/engine.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "service/registry.h"

namespace seco {

/// Everything known about one answered query.
struct QueryOutcome {
  ParsedQuery parsed;
  BoundQuery bound;
  OptimizationResult optimization;
  ExecutionResult execution;
};

/// The high-level entry point of the SeCo library: holds a service registry
/// and runs the full chain  parse -> bind -> optimize -> execute  for each
/// submitted query.
///
/// ```
/// QuerySession session(registry);
/// auto outcome = session.Run(
///     "select Movie11 as M, Theatre11 as T where Shows(M, T) and ...",
///     {{"INPUT1", Value("action")}});
/// for (const Combination& combo : outcome->execution.combinations) ...
/// ```
class QuerySession {
 public:
  explicit QuerySession(std::shared_ptr<ServiceRegistry> registry,
                        OptimizerOptions optimizer_options = {})
      : registry_(std::move(registry)),
        optimizer_options_(optimizer_options) {}

  const ServiceRegistry& registry() const { return *registry_; }
  OptimizerOptions& optimizer_options() { return optimizer_options_; }

  /// Template for the engine options of every `Run`: set `num_threads` for
  /// a concurrent service-call fan-out, or `cache` (e.g.
  /// `ServiceCallCache::Process()`) to share warm call results across
  /// queries and sessions. `k`, `input_bindings` and `max_calls` are
  /// overwritten per Run from its arguments.
  ExecutionOptions& execution_options() { return execution_options_; }

  /// Parses and binds a query without running it (e.g. to inspect
  /// feasibility or plans).
  Result<BoundQuery> Prepare(const std::string& query_text) const;

  /// Optimizes a prepared query into a fully instantiated plan.
  Result<OptimizationResult> Optimize(const BoundQuery& query) const;

  /// Full chain: parse, bind, optimize, execute with the given INPUT
  /// variable bindings.
  Result<QueryOutcome> Run(const std::string& query_text,
                           const std::map<std::string, Value>& inputs,
                           int max_calls = 10000) const;

 private:
  std::shared_ptr<ServiceRegistry> registry_;
  OptimizerOptions optimizer_options_;
  ExecutionOptions execution_options_;
};

}  // namespace seco

#endif  // SECO_CORE_SESSION_H_
