#ifndef SECO_CORE_SECO_H_
#define SECO_CORE_SECO_H_

/// \file
/// Umbrella header: include this to get the whole public SeCo API.
///
/// SeCo reproduces the Search Computing query processor: multi-domain
/// conjunctive queries over ranked *search services* and relational *exact
/// services*, compiled into dataflow plans whose joins are explored with
/// nested-loop / merge-scan invocation and rectangular / triangular
/// completion strategies, optimized by a three-phase branch-and-bound.
///
/// Layering (each header is independently includable):
///   common/    Status, Result, deterministic RNG
///   service/   values, tuples, schemas, access patterns, interfaces, marts
///   sim/       simulated service substrate + scenario fixtures
///   query/     parser, binder, feasibility, reference semantics
///   plan/      plan DAGs, cardinality annotation, topology builder
///   join/      search-space model, parallel/pipe join executors
///   cost/      the five cost metrics of the chapter
///   optimizer/ three-phase branch-and-bound + WSMS baseline
///   reliability/ fault-handling decorators: retry, deadlines, breakers
///   repair/    mid-query plan repair: replica failover + re-optimization
///   exec/      dataflow execution engine
///   server/    overload-safe query server: admission, shedding, degradation
///   net/       TCP front end, wire codec, remote backend adapters
///   core/      QuerySession facade

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "cost/metrics.h"
#include "exec/call_cache.h"
#include "exec/call_scheduler.h"
#include "exec/engine.h"
#include "exec/estimate_report.h"
#include "exec/resumable.h"
#include "exec/streaming.h"
#include "join/clock.h"
#include "join/parallel_join.h"
#include "join/pipe_join.h"
#include "join/search_space.h"
#include "join/strategy_select.h"
#include "join/topk_join.h"
#include "net/backend_server.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/remote_handler.h"
#include "net/socket.h"
#include "net/wire.h"
#include "optimizer/augmentation.h"
#include "optimizer/calibration.h"
#include "optimizer/optimizer.h"
#include "optimizer/wsms_baseline.h"
#include "plan/annotate.h"
#include "plan/builder.h"
#include "plan/plan.h"
#include "plan/plan_json.h"
#include "query/feasibility.h"
#include "query/parser.h"
#include "query/printer.h"
#include "query/semantics.h"
#include "reliability/circuit_breaker.h"
#include "reliability/policy.h"
#include "reliability/resilient_handler.h"
#include "repair/plan_repairer.h"
#include "repair/repair.h"
#include "repair/repair_driver.h"
#include "server/admission.h"
#include "server/degradation.h"
#include "server/server.h"
#include "service/registry.h"
#include "sim/fault_model.h"
#include "sim/fixtures.h"
#include "sim/load_generator.h"
#include "sim/service_builder.h"

#endif  // SECO_CORE_SECO_H_
