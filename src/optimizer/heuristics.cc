#include "optimizer/heuristics.h"

namespace seco {

const char* AccessHeuristicToString(AccessHeuristic h) {
  switch (h) {
    case AccessHeuristic::kBoundIsBetter:
      return "bound-is-better";
    case AccessHeuristic::kUnboundIsEasier:
      return "unbound-is-easier";
  }
  return "?";
}

const char* TopologyHeuristicToString(TopologyHeuristic h) {
  switch (h) {
    case TopologyHeuristic::kSelectiveFirst:
      return "selective-first";
    case TopologyHeuristic::kParallelIsBetter:
      return "parallel-is-better";
  }
  return "?";
}

const char* FetchHeuristicToString(FetchHeuristic h) {
  switch (h) {
    case FetchHeuristic::kGreedy:
      return "greedy";
    case FetchHeuristic::kSquareIsBetter:
      return "square-is-better";
  }
  return "?";
}

}  // namespace seco
