#ifndef SECO_OPTIMIZER_OPTIMIZER_H_
#define SECO_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <optional>

#include "common/result.h"
#include "cost/metrics.h"
#include "optimizer/heuristics.h"
#include "plan/annotate.h"
#include "plan/builder.h"

namespace seco {

class PlanMemo;

/// Options steering the branch-and-bound search (§5.2, Fig. 8).
struct OptimizerOptions {
  CostMetricKind metric = CostMetricKind::kSumCost;
  CostParams cost_params;
  /// Number of answer combinations to optimize for.
  int k = 10;

  AccessHeuristic access_heuristic = AccessHeuristic::kBoundIsBetter;
  TopologyHeuristic topology_heuristic = TopologyHeuristic::kSelectiveFirst;
  FetchHeuristic fetch_heuristic = FetchHeuristic::kGreedy;

  /// Anytime budget: stop after costing this many complete plans; the best
  /// plan found so far (the current upper bound) is returned.
  int max_plans = 10000;
  /// Phase 3 bounds.
  int max_fetch_iterations = 64;
  int max_fetch_factor = 100;
  /// When true, parallel-join strategies are auto-selected from the joined
  /// services' score models (nested-loop for step services, merge-scan with
  /// latency-derived ratio otherwise).
  bool auto_join_strategy = true;

  /// Cross-query memoization of subplan costs, partial-plan lower bounds,
  /// and feasibility verdicts (src/cache/plan_memo.h). nullptr (default) =
  /// off; the search then behaves exactly as before. With a memo the search
  /// returns bit-identical results — memo keys are order-preserving content
  /// hashes, so a hit replays the same pure floating-point computation.
  /// Not owned; must outlive the optimization. Excluded from
  /// OptimizerFingerprint.
  PlanMemo* memo = nullptr;
};

/// Outcome of an optimization run.
struct OptimizationResult {
  QueryPlan plan;  ///< the best fully instantiated plan found
  double cost = 0.0;
  double estimated_answers = 0.0;
  /// Search statistics.
  int plans_costed = 0;        ///< complete plans built and costed
  int branches_pruned = 0;     ///< subtrees discarded by the bounding step
  int topologies_tried = 0;
  bool search_exhausted = true;  ///< false if stopped by the anytime budget
};

/// The three-phase branch-and-bound optimizer of §5: (1) access-pattern /
/// service-interface selection, (2) topology selection, (3) fetch-factor
/// assignment. The search keeps the best complete plan as an incumbent
/// upper bound and prunes any partial plan whose (monotonic) cost already
/// exceeds it; stopped early it still returns a valid plan (§5.2).
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options) : options_(options) {}

  /// Finds the minimum-cost fully instantiated plan for `query` producing
  /// at least k answers (estimated). Fails with kInfeasible when no choice
  /// of interfaces makes the query feasible.
  Result<OptimizationResult> Optimize(const BoundQuery& query);

  const OptimizerOptions& options() const { return options_; }

 private:
  struct SearchState;

  OptimizerOptions options_;
};

}  // namespace seco

#endif  // SECO_OPTIMIZER_OPTIMIZER_H_
