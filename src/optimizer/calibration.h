#ifndef SECO_OPTIMIZER_CALIBRATION_H_
#define SECO_OPTIMIZER_CALIBRATION_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "service/service_interface.h"

namespace seco {

/// What probing a service revealed about its behaviour. §4.1 notes that
/// when the ranking function is opaque, "classifying services and
/// determining h ... is more difficult" — this module does exactly that
/// classification empirically, so the optimizer can pick invocation
/// strategies (nested-loop for step services, merge-scan otherwise) without
/// trusting declared statistics.
struct ServiceProfile {
  /// Fitted score-decay class: kStep, kLinear, or kQuadratic.
  ScoreDecay decay = ScoreDecay::kOpaque;
  /// For kStep: the number of high-ranking chunks before the drop (h).
  int step_h = 1;
  /// Mean tuples per fetched chunk.
  double avg_chunk_size = 0.0;
  /// Mean observed request-response latency.
  double avg_latency_ms = 0.0;
  /// Coefficient of determination (R^2) of the winning progressive fit;
  /// 1.0 for perfect fits, meaningless for kStep.
  double fit_r2 = 0.0;
  /// Chunks actually fetched.
  int probes = 0;
  /// True if the service ran out of results during probing.
  bool exhausted = false;
};

/// Probes `iface` with the given input binding for up to `max_probes`
/// chunks and classifies its scoring function:
///
///  - a relative drop of more than `step_drop_fraction` between consecutive
///    chunk representative scores marks a *step* function, with h = number
///    of chunks before the drop;
///  - otherwise the tuple scores are regressed against position under the
///    linear model s = a + b*pos and the quadratic model sqrt(s) = a + b*pos
///    (the two §4.1 "progressive" archetypes); the better R^2 wins.
///
/// Unranked services (no scores returned and none synthesizable) fail with
/// kInvalidArgument.
Result<ServiceProfile> ProfileService(std::shared_ptr<ServiceInterface> iface,
                                      const std::vector<Value>& inputs,
                                      int max_probes = 8,
                                      double step_drop_fraction = 0.4);

}  // namespace seco

#endif  // SECO_OPTIMIZER_CALIBRATION_H_
