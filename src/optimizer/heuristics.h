#ifndef SECO_OPTIMIZER_HEURISTICS_H_
#define SECO_OPTIMIZER_HEURISTICS_H_

namespace seco {

/// Phase 1 branching order (§5.3): which access pattern / interface to try
/// first for each atom.
enum class AccessHeuristic {
  /// Prefer interfaces with many input attributes: tighter bindings mean
  /// smaller answer sets and faster services.
  kBoundIsBetter,
  /// Prefer interfaces with few input attributes: easier to find an
  /// assignment that keeps the query feasible.
  kUnboundIsEasier,
};

const char* AccessHeuristicToString(AccessHeuristic h);

/// Phase 2 branching order (§5.4): how to grow the plan DAG.
enum class TopologyHeuristic {
  /// Long linear paths ordered by decreasing selectivity (most selective
  /// service first), ideally one chain from input to output.
  kSelectiveFirst,
  /// Always make the choice that maximizes parallelism; optimal when there
  /// are no access limitations under the bottleneck metric.
  kParallelIsBetter,
};

const char* TopologyHeuristicToString(TopologyHeuristic h);

/// Phase 3 fetch-factor growth (§5.5).
enum class FetchHeuristic {
  /// Increment the fetching factor with the highest marginal answers gained
  /// per unit of cost (sensitivity-driven).
  kGreedy,
  /// Increment factors so every chunked service explores about the same
  /// number of tuples (keeps binary-join search spaces square).
  kSquareIsBetter,
};

const char* FetchHeuristicToString(FetchHeuristic h);

}  // namespace seco

#endif  // SECO_OPTIMIZER_HEURISTICS_H_
