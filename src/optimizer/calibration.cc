#include "optimizer/calibration.h"

#include <algorithm>
#include <cmath>

#include "join/chunk_source.h"

namespace seco {

namespace {

/// Least-squares R^2 of y against x under y = a + b*x.
double LinearFitR2(const std::vector<double>& x, const std::vector<double>& y) {
  size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  double b = (n * sxy - sx * sy) / denom;
  double a = (sy - b * sx) / n;
  double ss_res = 0, ss_tot = 0;
  double mean_y = sy / n;
  for (size_t i = 0; i < n; ++i) {
    double fit = a + b * x[i];
    ss_res += (y[i] - fit) * (y[i] - fit);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  if (ss_tot < 1e-12) return 1.0;  // constant data: any line fits
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

Result<ServiceProfile> ProfileService(std::shared_ptr<ServiceInterface> iface,
                                      const std::vector<Value>& inputs,
                                      int max_probes,
                                      double step_drop_fraction) {
  ChunkSource source(iface, inputs);
  ServiceProfile profile;
  std::vector<double> representatives;  // first score per chunk
  std::vector<double> positions;
  std::vector<double> scores;
  int position = 0;
  int total_tuples = 0;
  for (int probe = 0; probe < max_probes; ++probe) {
    SECO_ASSIGN_OR_RETURN(bool got, source.FetchNext());
    if (!got) {
      profile.exhausted = true;
      break;
    }
    const Chunk& chunk = source.chunk(source.num_chunks() - 1);
    if (chunk.scores.empty()) {
      return Status::InvalidArgument("service '" + iface->name() +
                                     "' returns no scores; cannot profile");
    }
    representatives.push_back(chunk.RepresentativeScore());
    for (double s : chunk.scores) {
      positions.push_back(position++);
      scores.push_back(std::max(s, 0.0));
    }
    total_tuples += static_cast<int>(chunk.tuples.size());
  }
  profile.probes = source.calls();
  if (representatives.empty()) {
    return Status::InvalidArgument("service '" + iface->name() +
                                   "' produced no chunks to profile");
  }
  profile.avg_chunk_size =
      static_cast<double>(total_tuples) / representatives.size();
  profile.avg_latency_ms = source.total_latency_ms() / source.calls();

  // Step detection on chunk representatives: the drop must be large AND
  // anomalous — a short progressive list also shows a big relative drop at
  // its tail, so the candidate drop must dwarf the median of the others.
  // A single inter-chunk drop (2 chunks) is no evidence: a short
  // progressive list ends the same way. At least two drops are needed.
  if (representatives.size() >= 3) {
    std::vector<double> drops;
    for (size_t c = 1; c < representatives.size(); ++c) {
      double prev = representatives[c - 1];
      double cur = representatives[c];
      drops.push_back(prev > 1e-9 ? (prev - cur) / prev : 0.0);
    }
    size_t max_idx = 0;
    for (size_t i = 1; i < drops.size(); ++i) {
      if (drops[i] > drops[max_idx]) max_idx = i;
    }
    std::vector<double> others = drops;
    others.erase(others.begin() + max_idx);
    double median_other = 0.0;
    if (!others.empty()) {
      std::sort(others.begin(), others.end());
      median_other = others[others.size() / 2];
    }
    if (drops[max_idx] > step_drop_fraction &&
        drops[max_idx] >= 3.0 * median_other) {
      profile.decay = ScoreDecay::kStep;
      profile.step_h = static_cast<int>(max_idx) + 1;
      return profile;
    }
  }

  // Progressive fits: linear on s, linear on sqrt(s) (the quadratic model).
  std::vector<double> sqrt_scores(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    sqrt_scores[i] = std::sqrt(scores[i]);
  }
  double r2_linear = LinearFitR2(positions, scores);
  double r2_quadratic = LinearFitR2(positions, sqrt_scores);
  if (r2_quadratic > r2_linear) {
    profile.decay = ScoreDecay::kQuadratic;
    profile.fit_r2 = r2_quadratic;
  } else {
    profile.decay = ScoreDecay::kLinear;
    profile.fit_r2 = r2_linear;
  }
  return profile;
}

}  // namespace seco
