#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "cache/plan_memo.h"
#include "cache/signature.h"
#include "join/strategy_select.h"
#include "query/feasibility.h"

namespace seco {

namespace {

/// Atoms whose every input path is bound by an equality selection or by an
/// equality join clause whose other side is an output of a placed atom.
std::vector<int> ReachableUnplaced(const BoundQuery& query,
                                   const std::vector<bool>& placed) {
  std::vector<int> out;
  for (int a = 0; a < static_cast<int>(query.atoms.size()); ++a) {
    if (placed[a]) continue;
    const ServiceInterface& iface = *query.atoms[a].iface;
    bool all_bound = true;
    for (const AttrPath& in_path : iface.pattern().input_paths()) {
      bool bound = false;
      for (const BoundSelection& sel : query.selections) {
        if (sel.atom == a && sel.path == in_path && sel.op == Comparator::kEq) {
          bound = true;
        }
      }
      if (!bound) {
        for (const BoundJoinGroup& group : query.joins) {
          for (const JoinClause& clause : group.clauses) {
            if (clause.op != Comparator::kEq) continue;
            int other = -1;
            AttrPath other_path;
            if (clause.to_atom == a && clause.to_path == in_path) {
              other = clause.from_atom;
              other_path = clause.from_path;
            } else if (clause.from_atom == a && clause.from_path == in_path) {
              other = clause.to_atom;
              other_path = clause.to_path;
            } else {
              continue;
            }
            if (other == a || !placed[other]) continue;
            if (query.atoms[other].iface->pattern().At(other_path) !=
                Adornment::kInput) {
              bound = true;
            }
          }
        }
      }
      if (!bound) {
        all_bound = false;
        break;
      }
    }
    if (all_bound) out.push_back(a);
  }
  return out;
}

/// Expected per-input yield of an atom's service after its own residual
/// selections; used to order the selective-first heuristic.
double EstimatedYield(const BoundQuery& query, int atom) {
  const ServiceInterface& iface = *query.atoms[atom].iface;
  double base = iface.is_chunked()
                    ? static_cast<double>(iface.stats().chunk_size)
                    : iface.stats().avg_tuples_per_call;
  for (const BoundSelection& sel : query.selections) {
    if (sel.atom != atom) continue;
    bool consumed_as_input = sel.op == Comparator::kEq &&
                             iface.pattern().At(sel.path) == Adornment::kInput;
    if (!consumed_as_input) base *= sel.selectivity;
  }
  return base;
}

/// Restricts `query` to a subset of atoms (for partial-plan bounding).
/// `index_map[old] = new` or -1.
BoundQuery RestrictQuery(const BoundQuery& query, const std::vector<bool>& keep,
                         std::vector<int>* index_map) {
  BoundQuery sub;
  index_map->assign(query.atoms.size(), -1);
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    if (!keep[a]) continue;
    (*index_map)[a] = static_cast<int>(sub.atoms.size());
    sub.atoms.push_back(query.atoms[a]);
  }
  for (const BoundSelection& sel : query.selections) {
    if (sel.atom >= 0 && keep[sel.atom]) {
      BoundSelection copy = sel;
      copy.atom = (*index_map)[sel.atom];
      sub.selections.push_back(copy);
    }
  }
  for (const BoundJoinGroup& group : query.joins) {
    bool all_kept = true;
    for (const JoinClause& clause : group.clauses) {
      if (!keep[clause.from_atom] || !keep[clause.to_atom]) all_kept = false;
    }
    if (!all_kept) continue;
    BoundJoinGroup copy = group;
    for (JoinClause& clause : copy.clauses) {
      clause.from_atom = (*index_map)[clause.from_atom];
      clause.to_atom = (*index_map)[clause.to_atom];
    }
    sub.joins.push_back(std::move(copy));
  }
  sub.input_vars = query.input_vars;
  // Explicit weights do not matter for costing; leave empty.
  return sub;
}

}  // namespace

struct Optimizer::SearchState {
  const OptimizerOptions* options = nullptr;
  std::optional<QueryPlan> incumbent;
  double incumbent_cost = std::numeric_limits<double>::infinity();
  double incumbent_answers = 0.0;
  bool incumbent_reaches_k = false;
  OptimizationResult stats;
  bool budget_exhausted = false;

  bool Budget() {
    if (stats.plans_costed >= options->max_plans) {
      budget_exhausted = true;
    }
    return !budget_exhausted;
  }

  /// Whether `cost` can be pruned against the incumbent. Pruning is only
  /// sound once an incumbent that reaches k answers exists (otherwise a
  /// costlier plan that does reach k would be lost).
  bool CanPrune(double cost) const {
    return incumbent_reaches_k && cost >= incumbent_cost;
  }

  void Offer(QueryPlan plan, double cost, double answers) {
    ++stats.plans_costed;
    bool reaches = answers >= options->k;
    bool better;
    if (reaches != incumbent_reaches_k) {
      better = reaches;
    } else if (reaches) {
      better = cost < incumbent_cost;
    } else {
      // Neither reaches k: prefer more answers, then lower cost.
      better = answers > incumbent_answers ||
               (answers == incumbent_answers && cost < incumbent_cost);
    }
    if (!incumbent.has_value() || better) {
      incumbent = std::move(plan);
      incumbent_cost = cost;
      incumbent_answers = answers;
      incumbent_reaches_k = reaches;
    }
  }
};

namespace {

struct PlanBuildOutput {
  QueryPlan plan;
  double cost = 0.0;
  double answers = 0.0;
};

Result<PlanBuildOutput> BuildAnnotateCost(const BoundQuery& query,
                                          const TopologySpec& spec,
                                          const OptimizerOptions& options) {
  SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(query, spec));
  if (options.auto_join_strategy) ApplyAutoStrategies(&plan);
  AnnotationParams params;
  params.k = options.k;
  SECO_ASSIGN_OR_RETURN(double answers, AnnotatePlan(&plan, params));
  SECO_ASSIGN_OR_RETURN(double cost,
                        PlanCost(plan, options.metric, options.cost_params));
  return PlanBuildOutput{std::move(plan), cost, answers};
}

/// Lower bound for a partial topology: cost of the plan over the placed
/// atoms only, with every fetching factor at its minimum of 1. Monotonicity
/// of the metrics makes this a valid bound (§5.2).
Result<double> PartialLowerBound(const BoundQuery& query,
                                 const std::vector<std::vector<int>>& stages,
                                 const OptimizerOptions& options) {
  std::vector<bool> keep(query.atoms.size(), false);
  for (const std::vector<int>& stage : stages) {
    for (int atom : stage) keep[atom] = true;
  }
  std::vector<int> index_map;
  BoundQuery sub = RestrictQuery(query, keep, &index_map);
  TopologySpec spec;
  for (const std::vector<int>& stage : stages) {
    std::vector<int> mapped;
    for (int atom : stage) mapped.push_back(index_map[atom]);
    spec.stages.push_back(std::move(mapped));
  }
  SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(sub, spec));
  if (options.auto_join_strategy) ApplyAutoStrategies(&plan);
  AnnotationParams params;
  params.k = options.k;
  SECO_RETURN_IF_ERROR(AnnotatePlan(&plan, params).status());
  return PlanCost(plan, options.metric, options.cost_params);
}

}  // namespace

Result<OptimizationResult> Optimizer::Optimize(const BoundQuery& query) {
  for (const BoundAtom& atom : query.atoms) {
    if (atom.candidates.empty() && !atom.iface) {
      return Status::Infeasible("atom '" + atom.alias +
                                "' has no candidate interfaces");
    }
  }

  SearchState state;
  state.options = &options_;
  bool any_feasible = false;

  // ---------- Cross-query memoization (optional) ----------
  // Keys are order-preserving content hashes: (assignment signature,
  // incrementally-maintained topology signature, fetch factors, options
  // fingerprint). Equal keys imply the memoized pure FP computation would
  // replay bit-identically, so a warm memo changes wall-clock only — never
  // the OptimizationResult.
  PlanMemo* memo = options_.memo;
  const uint64_t options_fp = memo ? OptimizerFingerprint(options_) : 0;
  Signature assignment_sig;  // alias-free content sig of the current leaf
  uint64_t exact_tag = 0;    // alias-inclusive tag gating plan reuse
  CommutativeAccumulator topo_acc;  // Zobrist-incremental placed stages

  auto stage_feature = [](const std::vector<int>& stage, size_t depth) {
    SignatureBuilder b(0x57A6EULL);
    b.Add(depth);  // position tweak: stage order stays significant
    for (int a : stage) b.AddInt(a);
    return b.Finish();
  };

  // Memoized BuildAnnotateCost. Probe-only callers (`want_plan` false) get
  // cost/answers with an empty plan; plan-bearing hits are reused only when
  // the exact (alias-inclusive) tag matches, since the stored plan embeds
  // the bound query verbatim.
  auto build_cost = [&](const BoundQuery& q, const TopologySpec& spec,
                        const std::map<int, int>& fetch,
                        bool want_plan) -> Result<PlanBuildOutput> {
    if (!memo) return BuildAnnotateCost(q, spec, options_);
    SignatureBuilder kb(0x91A7B11DULL);
    kb.AddSignature(assignment_sig);
    kb.AddSignature(topo_acc.Finish());
    for (const auto& [atom, f] : fetch) {
      kb.AddInt(atom);
      kb.AddInt(f);
    }
    kb.Add(options_fp);
    const Signature key = kb.Finish();
    if (auto hit = memo->plans().Probe(key)) {
      if (!want_plan) return PlanBuildOutput{QueryPlan{}, hit->cost, hit->answers};
      if (hit->plan && hit->exact_tag == exact_tag) {
        return PlanBuildOutput{*hit->plan, hit->cost, hit->answers};
      }
    }
    SECO_ASSIGN_OR_RETURN(PlanBuildOutput out,
                          BuildAnnotateCost(q, spec, options_));
    PlanCostEntry entry;
    entry.cost = out.cost;
    entry.answers = out.answers;
    entry.exact_tag = exact_tag;
    size_t bytes = 160;
    if (want_plan) {
      entry.plan = std::make_shared<const QueryPlan>(out.plan);
      bytes = 512 + static_cast<size_t>(out.plan.num_nodes()) * 256;
    }
    memo->plans().Insert(key, std::move(entry), want_plan ? 4.0 : 1.0, bytes);
    return out;
  };

  auto lower_bound = [&](const BoundQuery& q,
                         const std::vector<std::vector<int>>& stages)
      -> Result<double> {
    if (!memo) return PartialLowerBound(q, stages, options_);
    SignatureBuilder kb(0xB0DB0DULL);
    kb.AddSignature(assignment_sig);
    kb.AddSignature(topo_acc.Finish());
    kb.Add(options_fp);
    const Signature key = kb.Finish();
    if (auto hit = memo->bounds().Probe(key)) return *hit;
    SECO_ASSIGN_OR_RETURN(double bound, PartialLowerBound(q, stages, options_));
    memo->bounds().Insert(key, bound, 1.0, 64);
    return bound;
  };

  // ---------- Phase 3: fetch factors for a fixed topology ----------
  auto run_phase3 = [&](const BoundQuery& q,
                        const std::vector<std::vector<int>>& stages) -> Status {
    ++state.stats.topologies_tried;
    std::vector<int> chunked;
    for (size_t a = 0; a < q.atoms.size(); ++a) {
      if (q.atoms[a].iface->is_chunked()) chunked.push_back(static_cast<int>(a));
    }
    std::map<int, int> fetch;  // atom -> F
    for (int a : chunked) fetch[a] = 1;

    auto make_spec = [&]() {
      TopologySpec spec;
      spec.stages = stages;
      for (const auto& [atom, f] : fetch) {
        spec.atom_settings[atom].fetch_factor = f;
      }
      return spec;
    };

    PlanBuildOutput current;
    {
      SECO_ASSIGN_OR_RETURN(
          current, build_cost(q, make_spec(), fetch, /*want_plan=*/true));
    }
    for (int iter = 0; iter < options_.max_fetch_iterations; ++iter) {
      if (state.CanPrune(current.cost)) {
        ++state.stats.branches_pruned;
        return Status::OK();
      }
      if (current.answers >= options_.k || chunked.empty()) break;

      int pick = -1;
      if (options_.fetch_heuristic == FetchHeuristic::kSquareIsBetter) {
        // Equalize explored tuples F_i * chunk_i across chunked services.
        double best = std::numeric_limits<double>::infinity();
        for (int a : chunked) {
          if (fetch[a] >= options_.max_fetch_factor) continue;
          double explored = fetch[a] * q.atoms[a].iface->stats().chunk_size;
          if (explored < best) {
            best = explored;
            pick = a;
          }
        }
      } else {
        // Greedy: highest marginal answers per unit of added cost.
        double best_ratio = -1.0;
        for (int a : chunked) {
          if (fetch[a] >= options_.max_fetch_factor) continue;
          ++fetch[a];
          SECO_ASSIGN_OR_RETURN(
              PlanBuildOutput probe,
              build_cost(q, make_spec(), fetch, /*want_plan=*/false));
          --fetch[a];
          double dcost = std::max(probe.cost - current.cost, 1e-9);
          double dans = probe.answers - current.answers;
          double ratio = dans / dcost;
          if (ratio > best_ratio) {
            best_ratio = ratio;
            pick = a;
          }
        }
        if (best_ratio <= 0.0) pick = -1;
      }
      if (pick < 0) break;
      ++fetch[pick];
      SECO_ASSIGN_OR_RETURN(
          current, build_cost(q, make_spec(), fetch, /*want_plan=*/true));
    }
    if (state.CanPrune(current.cost)) {
      ++state.stats.branches_pruned;
      return Status::OK();
    }
    state.Offer(std::move(current.plan), current.cost, current.answers);
    return Status::OK();
  };

  // ---------- Phase 2: topology enumeration ----------
  std::function<Status(const BoundQuery&, std::vector<bool>&,
                       std::vector<std::vector<int>>&)>
      enum_topologies = [&](const BoundQuery& q, std::vector<bool>& placed,
                            std::vector<std::vector<int>>& stages) -> Status {
    if (!state.Budget()) return Status::OK();
    bool all_placed = true;
    for (bool p : placed) {
      if (!p) all_placed = false;
    }
    if (all_placed) return run_phase3(q, stages);

    std::vector<int> reachable = ReachableUnplaced(q, placed);
    if (reachable.empty()) return Status::OK();  // dead end

    // Candidate next stages: every reachable singleton, plus the full
    // reachable set as one parallel stage.
    std::vector<std::vector<int>> candidates;
    std::vector<int> singles = reachable;
    if (options_.topology_heuristic == TopologyHeuristic::kSelectiveFirst) {
      std::stable_sort(singles.begin(), singles.end(), [&](int a, int b) {
        return EstimatedYield(q, a) < EstimatedYield(q, b);
      });
    }
    if (options_.topology_heuristic == TopologyHeuristic::kParallelIsBetter &&
        reachable.size() >= 2) {
      candidates.push_back(reachable);
    }
    for (int a : singles) candidates.push_back({a});
    if (options_.topology_heuristic != TopologyHeuristic::kParallelIsBetter &&
        reachable.size() >= 2) {
      candidates.push_back(reachable);
    }

    for (const std::vector<int>& stage : candidates) {
      if (!state.Budget()) return Status::OK();
      const Signature feature = stage_feature(stage, stages.size());
      stages.push_back(stage);
      for (int a : stage) placed[a] = true;
      topo_acc.Add(feature);  // O(1) incremental push
      Status status = [&]() -> Status {
        SECO_ASSIGN_OR_RETURN(double bound, lower_bound(q, stages));
        if (state.CanPrune(bound)) {
          ++state.stats.branches_pruned;
          return Status::OK();
        }
        return enum_topologies(q, placed, stages);
      }();
      topo_acc.Remove(feature);  // O(1) incremental pop
      for (int a : stage) placed[a] = false;
      stages.pop_back();
      SECO_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  };

  // ---------- Phase 1: interface assignment ----------
  std::vector<std::shared_ptr<ServiceInterface>> assignment(query.atoms.size());
  std::function<Status(size_t)> enum_assignments = [&](size_t index) -> Status {
    if (!state.Budget()) return Status::OK();
    if (index == query.atoms.size()) {
      BoundQuery q = query;
      for (size_t a = 0; a < q.atoms.size(); ++a) {
        q.atoms[a].iface = assignment[a];
        q.atoms[a].schema = assignment[a]->schema_ptr();
      }
      bool feasible = false;
      if (memo) {
        assignment_sig = QueryContentSignature(q, /*include_aliases=*/false);
        exact_tag = ExactContentTag(q);
        SignatureBuilder fb(0xFEA5ULL);
        fb.AddSignature(assignment_sig);
        const Signature key = fb.Finish();
        if (auto hit = memo->feasibility().Probe(key)) {
          feasible = *hit != 0;
        } else {
          SECO_ASSIGN_OR_RETURN(FeasibilityReport report, CheckFeasibility(q));
          feasible = report.feasible;
          memo->feasibility().Insert(key, feasible ? 1 : 0, 1.0, 64);
        }
      } else {
        SECO_ASSIGN_OR_RETURN(FeasibilityReport report, CheckFeasibility(q));
        feasible = report.feasible;
      }
      if (!feasible) return Status::OK();
      any_feasible = true;
      std::vector<bool> placed(q.atoms.size(), false);
      std::vector<std::vector<int>> stages;
      return enum_topologies(q, placed, stages);
    }
    std::vector<std::shared_ptr<ServiceInterface>> candidates =
        query.atoms[index].candidates;
    if (candidates.empty() && query.atoms[index].iface) {
      candidates = {query.atoms[index].iface};
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const auto& a, const auto& b) {
                       int na = a->pattern().num_inputs();
                       int nb = b->pattern().num_inputs();
                       return options_.access_heuristic ==
                                      AccessHeuristic::kBoundIsBetter
                                  ? na > nb
                                  : na < nb;
                     });
    for (const auto& candidate : candidates) {
      assignment[index] = candidate;
      SECO_RETURN_IF_ERROR(enum_assignments(index + 1));
      if (!state.Budget()) return Status::OK();
    }
    return Status::OK();
  };

  SECO_RETURN_IF_ERROR(enum_assignments(0));

  if (!state.incumbent.has_value()) {
    if (!any_feasible) {
      return Status::Infeasible(
          "no choice of service interfaces makes the query feasible");
    }
    return Status::Infeasible("no executable plan found");
  }
  OptimizationResult result = std::move(state.stats);
  result.plan = std::move(*state.incumbent);
  result.cost = state.incumbent_cost;
  result.estimated_answers = state.incumbent_answers;
  result.search_exhausted = !state.budget_exhausted;
  return result;
}

}  // namespace seco
