#include "optimizer/augmentation.h"

#include <algorithm>

namespace seco {

namespace {

/// Leaf name of a path ("Genre" for "Genres.Genre", "City" for "City").
std::string LeafName(const ServiceSchema& schema, const AttrPath& path) {
  const AttributeDef& attr = schema.attribute(path.attr_index);
  if (path.is_sub_attribute()) return attr.sub_attributes[path.sub_index].name;
  return attr.name;
}

}  // namespace

Result<std::vector<AugmentationSuggestion>> SuggestAugmentations(
    const BoundQuery& query, const ServiceRegistry& registry) {
  std::vector<AugmentationSuggestion> out;
  SECO_ASSIGN_OR_RETURN(FeasibilityReport report, CheckFeasibility(query));
  if (report.feasible) return out;

  // Interfaces already used by the query are not "off-query".
  std::vector<std::string> used;
  for (const BoundAtom& atom : query.atoms) {
    if (atom.iface) used.push_back(atom.iface->name());
  }

  for (int a = 0; a < static_cast<int>(query.atoms.size()); ++a) {
    const AtomFeasibility& info = report.atoms[a];
    if (info.reachable) continue;
    const ServiceSchema& schema = *query.atoms[a].schema;
    for (const InputBinding& binding : info.inputs) {
      if (binding.source != BindingSource::kUnbound) continue;
      std::string leaf = LeafName(schema, binding.path);
      ValueType type = schema.TypeAt(binding.path);

      for (const std::string& iface_name : registry.interface_names()) {
        if (std::find(used.begin(), used.end(), iface_name) != used.end()) {
          continue;
        }
        SECO_ASSIGN_OR_RETURN(std::shared_ptr<ServiceInterface> provider,
                              registry.FindInterface(iface_name));
        const ServiceSchema& pschema = provider->schema();
        const AccessPattern& ppattern = provider->pattern();
        // Look for an output of the provider with matching leaf name+type.
        for (const AttrPath& out_path : ppattern.output_paths()) {
          if (LeafName(pschema, out_path) != leaf) continue;
          if (pschema.TypeAt(out_path) != type) continue;

          AugmentationSuggestion suggestion;
          suggestion.atom = a;
          suggestion.input_path = binding.path;
          suggestion.input_name = schema.PathToString(binding.path);
          suggestion.provider_interface = iface_name;
          suggestion.provider_output = pschema.PathToString(out_path);

          // Can the provider itself be invoked from the query's constants?
          suggestion.provider_invocable = true;
          for (const AttrPath& pin : ppattern.input_paths()) {
            std::string pin_leaf = LeafName(pschema, pin);
            ValueType pin_type = pschema.TypeAt(pin);
            int found = -1;
            for (size_t s = 0; s < query.selections.size(); ++s) {
              const BoundSelection& sel = query.selections[s];
              if (sel.op != Comparator::kEq) continue;
              const ServiceSchema& sel_schema = *query.atoms[sel.atom].schema;
              if (LeafName(sel_schema, sel.path) == pin_leaf &&
                  sel_schema.TypeAt(sel.path) == pin_type) {
                found = static_cast<int>(s);
                break;
              }
            }
            suggestion.provider_input_bindings.push_back(found);
            if (found < 0) suggestion.provider_invocable = false;
          }
          out.push_back(std::move(suggestion));
        }
      }
    }
  }
  // Invocable providers first; stable within groups.
  std::stable_sort(out.begin(), out.end(),
                   [](const AugmentationSuggestion& a,
                      const AugmentationSuggestion& b) {
                     return a.provider_invocable > b.provider_invocable;
                   });
  return out;
}

Result<BoundQuery> ApplyAugmentation(const BoundQuery& query,
                                     const ServiceRegistry& registry,
                                     const AugmentationSuggestion& suggestion) {
  if (!suggestion.provider_invocable) {
    return Status::Unsupported(
        "provider '" + suggestion.provider_interface +
        "' is not invocable from the query's constants; recursive "
        "augmentation is not supported");
  }
  SECO_ASSIGN_OR_RETURN(std::shared_ptr<ServiceInterface> provider,
                        registry.FindInterface(suggestion.provider_interface));

  BoundQuery augmented = query;
  BoundAtom atom;
  atom.alias = "_aug" + std::to_string(query.atoms.size());
  atom.service_name = provider->name();
  atom.mart_name = registry.MartOfInterface(provider->name());
  atom.schema = provider->schema_ptr();
  atom.iface = provider;
  atom.candidates = {provider};
  int provider_atom = static_cast<int>(augmented.atoms.size());
  augmented.atoms.push_back(std::move(atom));
  if (!augmented.explicit_weights.empty()) {
    augmented.explicit_weights.push_back(0.0);  // auxiliary atom: no ranking
  }

  // Bind the provider's inputs by duplicating the matched selections.
  const AccessPattern& ppattern = provider->pattern();
  for (size_t i = 0; i < ppattern.input_paths().size(); ++i) {
    int sel_index = i < suggestion.provider_input_bindings.size()
                        ? suggestion.provider_input_bindings[i]
                        : -1;
    if (sel_index < 0) {
      return Status::Internal("invocable suggestion lacks a binding for input " +
                              std::to_string(i));
    }
    BoundSelection sel = query.selections[sel_index];
    sel.atom = provider_atom;
    sel.path = ppattern.input_paths()[i];
    augmented.selections.push_back(std::move(sel));
  }

  // Join the provider's output to the formerly unbound input.
  SECO_ASSIGN_OR_RETURN(AttrPath out_path,
                        provider->schema().Resolve(suggestion.provider_output));
  BoundJoinGroup group;
  group.pattern_name = "";  // ad-hoc augmentation join
  group.selectivity = 1.0;  // the binding is definitional, not filtering
  JoinClause clause;
  clause.from_atom = provider_atom;
  clause.from_path = out_path;
  clause.op = Comparator::kEq;
  clause.to_atom = suggestion.atom;
  clause.to_path = suggestion.input_path;
  group.clauses.push_back(clause);
  augmented.joins.push_back(std::move(group));
  return augmented;
}

}  // namespace seco
