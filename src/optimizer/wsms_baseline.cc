#include "optimizer/wsms_baseline.h"

#include "query/feasibility.h"

namespace seco {

Result<OptimizationResult> WsmsOptimize(const BoundQuery& query, int k) {
  BoundQuery q = query;
  for (BoundAtom& atom : q.atoms) {
    if (!atom.iface) {
      if (atom.candidates.empty()) {
        return Status::Infeasible("atom '" + atom.alias + "' has no interface");
      }
      atom.iface = atom.candidates.front();
      atom.schema = atom.iface->schema_ptr();
    }
  }
  SECO_ASSIGN_OR_RETURN(FeasibilityReport report, CheckFeasibility(q));
  if (!report.feasible) return Status::Infeasible(report.reason);

  // Maximal parallelism: each stage is the full set of invocable services.
  TopologySpec spec;
  std::vector<bool> placed(q.atoms.size(), false);
  while (true) {
    std::vector<int> stage;
    for (int a = 0; a < static_cast<int>(q.atoms.size()); ++a) {
      if (placed[a]) continue;
      // An atom is invocable when its join providers are placed.
      bool ready = true;
      for (int dep : report.atoms[a].depends_on) {
        if (!placed[dep]) ready = false;
      }
      if (ready) stage.push_back(a);
    }
    if (stage.empty()) break;
    for (int a : stage) placed[a] = true;
    spec.stages.push_back(std::move(stage));
  }

  SECO_ASSIGN_OR_RETURN(QueryPlan plan, BuildPlan(q, spec));
  AnnotationParams params;
  params.k = k;
  SECO_ASSIGN_OR_RETURN(double answers, AnnotatePlan(&plan, params));
  SECO_ASSIGN_OR_RETURN(double cost, PlanCost(plan, CostMetricKind::kBottleneck));

  OptimizationResult result;
  result.plan = std::move(plan);
  result.cost = cost;
  result.estimated_answers = answers;
  result.plans_costed = 1;
  result.topologies_tried = 1;
  result.search_exhausted = true;
  return result;
}

}  // namespace seco
