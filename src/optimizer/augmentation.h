#ifndef SECO_OPTIMIZER_AUGMENTATION_H_
#define SECO_OPTIMIZER_AUGMENTATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/bound_query.h"
#include "query/feasibility.h"

namespace seco {

/// A proposal to make an infeasible query answerable (§2.3): an *off-query*
/// service — available in the schema but not mentioned by the query — whose
/// output field can supply bindings for an unbound input field with the same
/// abstract domain (approximated here as matching leaf attribute name and
/// value type).
struct AugmentationSuggestion {
  /// The atom whose input cannot be bound.
  int atom = -1;
  AttrPath input_path;
  std::string input_name;  ///< dotted name of the unbound input

  /// The off-query provider.
  std::string provider_interface;
  std::string provider_output;  ///< dotted name of the matching output

  /// How the provider itself becomes invocable: true when all of its own
  /// inputs are coverable by the query's constant/INPUT selections (matched
  /// by leaf name and type) or when it has no inputs. Providers that are
  /// not self-invocable would require recursive augmentation, which §2.3
  /// notes may need recursive query plans.
  bool provider_invocable = false;
  /// The selections (indexes into BoundQuery::selections) that would bind
  /// the provider's inputs, in provider input order (-1 for uncovered).
  std::vector<int> provider_input_bindings;
};

/// Analyzes an infeasible query and lists every off-query service whose
/// outputs could bind the unreachable atoms' unbound inputs. Returns an
/// empty list when the query is already feasible. Suggestions are an
/// approximation of the original query (§2.3): joining through an off-query
/// service restricts results to the bindings that service can produce.
Result<std::vector<AugmentationSuggestion>> SuggestAugmentations(
    const BoundQuery& query, const ServiceRegistry& registry);

/// Applies a suggestion: returns a copy of `query` extended with the
/// provider as a new atom (aliased `_aug<i>`), the selections that bind the
/// provider's inputs, and an equality join from the provider's output to
/// the unbound input. The suggestion must be `provider_invocable`; the
/// result is feasible whenever the original query's only defect was the
/// suggested input (re-check with CheckFeasibility — several unbound inputs
/// may need several applications).
///
/// Note the §2.3 caveat: the augmented query computes an *approximation* of
/// the original — combinations are restricted to bindings the provider
/// produces.
Result<BoundQuery> ApplyAugmentation(const BoundQuery& query,
                                     const ServiceRegistry& registry,
                                     const AugmentationSuggestion& suggestion);

}  // namespace seco

#endif  // SECO_OPTIMIZER_AUGMENTATION_H_
