#ifndef SECO_OPTIMIZER_WSMS_BASELINE_H_
#define SECO_OPTIMIZER_WSMS_BASELINE_H_

#include "common/result.h"
#include "optimizer/optimizer.h"

namespace seco {

/// The Srivastava et al. (VLDB'06) Web Service Management System optimizer
/// that §2.4 and §5.1 use as the reference point. It models every service
/// as exact and unchunked, optimizes the *bottleneck* metric (the slowest
/// service), and maximizes pipeline parallelism: at each step it dispatches
/// every invocable service in parallel. It is provably optimal in that
/// setting (no access limitations, homogeneous exact services) but ignores
/// ranking, chunking, and the k-answer termination that characterize search
/// services — the chapter's motivation for the SeCo optimizer.
///
/// Interfaces are taken as already selected (the first candidate when a
/// mart-level atom has several); fetching factors stay at 1.
Result<OptimizationResult> WsmsOptimize(const BoundQuery& query, int k = 10);

}  // namespace seco

#endif  // SECO_OPTIMIZER_WSMS_BASELINE_H_
