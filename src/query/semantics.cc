#include "query/semantics.h"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

namespace seco {

namespace {

/// Identifies one repeating group occurrence: (atom index, attribute index).
using GroupKey = std::pair<int, int>;

/// Collects the repeating groups occurring in a set of predicate paths.
void CollectGroup(std::vector<GroupKey>* groups, int atom, const AttrPath& path) {
  if (!path.is_sub_attribute()) return;
  GroupKey key{atom, path.attr_index};
  if (std::find(groups->begin(), groups->end(), key) == groups->end()) {
    groups->push_back(key);
  }
}

/// Evaluates a set of predicates over concrete tuples under the paper's
/// single-instance semantics: existentially chooses one instance per
/// repeating group occurring in the predicates, shared by all of them.
class InstanceSearch {
 public:
  /// `tuple_of(atom)` must return the concrete tuple for that atom.
  using TupleFn = const Tuple& (*)(int, const void*);

  InstanceSearch(const Tuple* (*get)(int, const void*), const void* ctx)
      : get_(get), ctx_(ctx) {}

  void AddGroupsForPath(int atom, const AttrPath& path) {
    CollectGroup(&groups_, atom, path);
  }

  /// `eval(assignment)` must evaluate every predicate under the given
  /// instance choice. Tries all assignments; true if any satisfies.
  Result<bool> Exists(
      const std::function<Result<bool>(const std::map<GroupKey, int>&)>& eval) {
    // Verify all groups are non-empty; an empty group occurring in the
    // predicates admits no mapping M, so the combination is excluded.
    std::vector<int> sizes;
    for (const GroupKey& key : groups_) {
      const Tuple* t = get_(key.first, ctx_);
      const RepeatingGroupValue& group = t->GroupAt(key.second);
      if (group.empty()) return false;
      sizes.push_back(static_cast<int>(group.size()));
    }
    std::map<GroupKey, int> assignment;
    return Recurse(0, sizes, &assignment, eval);
  }

  /// Value of `path` on `tuple` under `assignment`.
  static const Value& ValueUnder(const Tuple& tuple, int atom,
                                 const AttrPath& path,
                                 const std::map<GroupKey, int>& assignment) {
    if (!path.is_sub_attribute()) return tuple.ValueAt(path);
    int inst = assignment.at(GroupKey{atom, path.attr_index});
    return tuple.GroupAt(path.attr_index)[inst][path.sub_index];
  }

 private:
  Result<bool> Recurse(
      size_t i, const std::vector<int>& sizes, std::map<GroupKey, int>* assignment,
      const std::function<Result<bool>(const std::map<GroupKey, int>&)>& eval) {
    if (i == groups_.size()) return eval(*assignment);
    for (int choice = 0; choice < sizes[i]; ++choice) {
      (*assignment)[groups_[i]] = choice;
      SECO_ASSIGN_OR_RETURN(bool ok, Recurse(i + 1, sizes, assignment, eval));
      if (ok) return true;
    }
    assignment->erase(groups_[i]);
    return false;
  }

  const Tuple* (*get_)(int, const void*);
  const void* ctx_;
  std::vector<GroupKey> groups_;
};

struct ComboContext {
  const std::vector<const Tuple*>* tuples;
};

const Tuple* GetComboTuple(int atom, const void* ctx) {
  return (*static_cast<const ComboContext*>(ctx)->tuples)[atom];
}

}  // namespace

Result<bool> SatisfiesSelections(
    const BoundQuery& query, int atom, const Tuple& tuple,
    const std::map<std::string, Value>& input_bindings) {
  std::vector<const Tuple*> tuples(query.atoms.size(), nullptr);
  tuples[atom] = &tuple;
  ComboContext ctx{&tuples};
  InstanceSearch search(&GetComboTuple, &ctx);
  std::vector<const BoundSelection*> sels;
  for (const BoundSelection& sel : query.selections) {
    if (sel.atom != atom) continue;
    sels.push_back(&sel);
    search.AddGroupsForPath(atom, sel.path);
  }
  if (sels.empty()) return true;
  return search.Exists([&](const std::map<std::pair<int, int>, int>& assignment)
                           -> Result<bool> {
    for (const BoundSelection* sel : sels) {
      SECO_ASSIGN_OR_RETURN(Value rhs,
                            query.ResolveSelectionValue(*sel, input_bindings));
      const Value& lhs =
          InstanceSearch::ValueUnder(tuple, atom, sel->path, assignment);
      SECO_ASSIGN_OR_RETURN(bool ok, lhs.Compare(sel->op, rhs));
      if (!ok) return false;
    }
    return true;
  });
}

Result<bool> SatisfiesJoinGroup(const BoundQuery& query,
                                const BoundJoinGroup& group,
                                const Tuple& from_tuple, const Tuple& to_tuple) {
  if (group.clauses.empty()) return true;
  int from_atom = group.clauses[0].from_atom;
  int to_atom = group.clauses[0].to_atom;
  std::vector<const Tuple*> tuples(query.atoms.size(), nullptr);
  tuples[from_atom] = &from_tuple;
  tuples[to_atom] = &to_tuple;
  ComboContext ctx{&tuples};
  InstanceSearch search(&GetComboTuple, &ctx);
  for (const JoinClause& clause : group.clauses) {
    search.AddGroupsForPath(clause.from_atom, clause.from_path);
    search.AddGroupsForPath(clause.to_atom, clause.to_path);
  }
  return search.Exists([&](const std::map<std::pair<int, int>, int>& assignment)
                           -> Result<bool> {
    for (const JoinClause& clause : group.clauses) {
      const Value& lhs = InstanceSearch::ValueUnder(
          *tuples[clause.from_atom], clause.from_atom, clause.from_path, assignment);
      const Value& rhs = InstanceSearch::ValueUnder(
          *tuples[clause.to_atom], clause.to_atom, clause.to_path, assignment);
      SECO_ASSIGN_OR_RETURN(bool ok, lhs.Compare(clause.op, rhs));
      if (!ok) return false;
    }
    return true;
  });
}

Result<std::vector<Combination>> EvaluateOracle(
    const BoundQuery& query, const OracleInput& input,
    const std::map<std::string, Value>& input_bindings, int k) {
  int n = static_cast<int>(query.atoms.size());
  if (static_cast<int>(input.tuples.size()) != n) {
    return Status::InvalidArgument("oracle input must cover every atom");
  }

  std::vector<double> weights;
  bool all_resolved = true;
  for (const BoundAtom& atom : query.atoms) {
    if (!atom.iface) all_resolved = false;
  }
  if (query.has_explicit_weights()) {
    weights = query.explicit_weights;
  } else if (all_resolved) {
    weights = query.EffectiveWeights();
  } else {
    weights.assign(n, 1.0 / n);
  }

  std::vector<Combination> out;
  std::vector<int> idx(n, 0);

  // Odometer over the full cross product (oracle only: exponential).
  while (true) {
    std::vector<const Tuple*> tuples(n);
    bool empty = false;
    for (int a = 0; a < n; ++a) {
      if (input.tuples[a].empty()) {
        empty = true;
        break;
      }
      tuples[a] = &input.tuples[a][idx[a]];
    }
    if (empty) break;

    // Build the global instance search over every predicate in P.
    ComboContext ctx{&tuples};
    InstanceSearch search(&GetComboTuple, &ctx);
    for (const BoundSelection& sel : query.selections) {
      search.AddGroupsForPath(sel.atom, sel.path);
    }
    for (const BoundJoinGroup& group : query.joins) {
      for (const JoinClause& clause : group.clauses) {
        search.AddGroupsForPath(clause.from_atom, clause.from_path);
        search.AddGroupsForPath(clause.to_atom, clause.to_path);
      }
    }
    SECO_ASSIGN_OR_RETURN(
        bool accepted,
        search.Exists([&](const std::map<std::pair<int, int>, int>& assignment)
                          -> Result<bool> {
          for (const BoundSelection& sel : query.selections) {
            SECO_ASSIGN_OR_RETURN(Value rhs,
                                  query.ResolveSelectionValue(sel, input_bindings));
            const Value& lhs = InstanceSearch::ValueUnder(
                *tuples[sel.atom], sel.atom, sel.path, assignment);
            SECO_ASSIGN_OR_RETURN(bool ok, lhs.Compare(sel.op, rhs));
            if (!ok) return false;
          }
          for (const BoundJoinGroup& group : query.joins) {
            for (const JoinClause& clause : group.clauses) {
              const Value& lhs = InstanceSearch::ValueUnder(
                  *tuples[clause.from_atom], clause.from_atom, clause.from_path,
                  assignment);
              const Value& rhs = InstanceSearch::ValueUnder(
                  *tuples[clause.to_atom], clause.to_atom, clause.to_path,
                  assignment);
              SECO_ASSIGN_OR_RETURN(bool ok, lhs.Compare(clause.op, rhs));
              if (!ok) return false;
            }
          }
          return true;
        }));

    if (accepted) {
      Combination combo;
      combo.components.reserve(n);
      combo.component_scores.reserve(n);
      double total = 0.0;
      for (int a = 0; a < n; ++a) {
        combo.components.push_back(*tuples[a]);
        double score = 0.0;
        if (a < static_cast<int>(input.scores.size()) &&
            idx[a] < static_cast<int>(input.scores[a].size())) {
          score = input.scores[a][idx[a]];
        }
        combo.component_scores.push_back(score);
        total += weights[a] * score;
      }
      combo.combined_score = total;
      out.push_back(std::move(combo));
    }

    // Advance odometer.
    int a = n - 1;
    while (a >= 0) {
      if (++idx[a] < static_cast<int>(input.tuples[a].size())) break;
      idx[a] = 0;
      --a;
    }
    if (a < 0) break;
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Combination& a, const Combination& b) {
                     return a.combined_score > b.combined_score;
                   });
  if (k >= 0 && static_cast<int>(out.size()) > k) out.resize(k);
  return out;
}

}  // namespace seco
