#ifndef SECO_QUERY_SEMANTICS_H_
#define SECO_QUERY_SEMANTICS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/bound_query.h"
#include "service/tuple.h"

namespace seco {

/// Materialized per-atom data for the reference evaluator: `tuples[i]` are
/// all tuples of atom i, `scores[i]` their scores (may be empty for
/// unranked atoms; missing scores count as 0).
struct OracleInput {
  std::vector<std::vector<Tuple>> tuples;
  std::vector<std::vector<double>> scores;
};

/// Reference (oracle) evaluator implementing the §3.1 semantics literally:
/// the result is the largest set of composite tuples t1...tn such that some
/// single mapping M — choosing ONE instance per repeating group occurring in
/// the predicate set P — satisfies every predicate. Used as ground truth by
/// tests and by extraction-optimality measurements; cost is exponential in
/// the number of atoms and not intended for production execution.
///
/// Combinations are returned in decreasing `combined_score` (stable order),
/// scored with `query.EffectiveWeights()` when atoms have interfaces, or
/// equal weights otherwise. If `k >= 0`, only the top-k are returned.
Result<std::vector<Combination>> EvaluateOracle(
    const BoundQuery& query, const OracleInput& input,
    const std::map<std::string, Value>& input_bindings, int k = -1);

/// Evaluates all selection predicates of `query` that target `atom` against
/// `tuple`, with the given INPUT bindings. Implements the single-instance
/// repeating-group rule: all predicates over the same repeating group of
/// this atom must be satisfied by one common group instance.
Result<bool> SatisfiesSelections(const BoundQuery& query, int atom,
                                 const Tuple& tuple,
                                 const std::map<std::string, Value>& input_bindings);

/// Evaluates one join group between two concrete tuples (single-instance
/// rule applied per repeating group on each side).
Result<bool> SatisfiesJoinGroup(const BoundQuery& query,
                                const BoundJoinGroup& group,
                                const Tuple& from_tuple, const Tuple& to_tuple);

}  // namespace seco

#endif  // SECO_QUERY_SEMANTICS_H_
