#ifndef SECO_QUERY_PRINTER_H_
#define SECO_QUERY_PRINTER_H_

#include <string>

#include "query/ast.h"
#include "query/bound_query.h"

namespace seco {

/// Renders a parsed query back to SeCo query text. `ParseQuery` of the
/// output yields a structurally identical query (round-trip property).
std::string ToQueryText(const ParsedQuery& query);

/// Debug rendering of a bound query: atoms with their interfaces,
/// selections, and join groups.
std::string BoundQueryDebugString(const BoundQuery& query);

}  // namespace seco

#endif  // SECO_QUERY_PRINTER_H_
