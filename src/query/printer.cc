#include "query/printer.h"

#include <sstream>

namespace seco {

namespace {

std::string OperandText(const Operand& operand) {
  if (const Value* v = std::get_if<Value>(&operand)) {
    return v->ToString();  // strings already quoted
  }
  if (const InputVarRef* var = std::get_if<InputVarRef>(&operand)) {
    return var->name;
  }
  const AttrRef& ref = std::get<AttrRef>(operand);
  return ref.alias + "." + ref.path;
}

}  // namespace

std::string ToQueryText(const ParsedQuery& query) {
  std::ostringstream out;
  out << "select ";
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    if (i > 0) out << ", ";
    out << query.atoms[i].service_name;
    if (query.atoms[i].alias != query.atoms[i].service_name) {
      out << " as " << query.atoms[i].alias;
    }
  }
  out << " where ";
  bool first = true;
  for (const ConnectionUse& use : query.connections) {
    if (!first) out << " and ";
    first = false;
    out << use.pattern_name << "(" << use.from_alias << ", " << use.to_alias
        << ")";
  }
  for (const ParsedPredicate& pred : query.predicates) {
    if (!first) out << " and ";
    first = false;
    out << pred.lhs.alias << "." << pred.lhs.path << " "
        << ComparatorToString(pred.op) << " " << OperandText(pred.rhs);
  }
  if (!query.ranking_weights.empty()) {
    out << " rank by (";
    for (size_t i = 0; i < query.ranking_weights.size(); ++i) {
      if (i > 0) out << ", ";
      out << query.ranking_weights[i];
    }
    out << ")";
  }
  return out.str();
}

std::string BoundQueryDebugString(const BoundQuery& query) {
  std::ostringstream out;
  out << "atoms:\n";
  for (const BoundAtom& atom : query.atoms) {
    out << "  " << atom.alias << " -> "
        << (atom.iface ? atom.iface->name() : "<mart:" + atom.mart_name + ">");
    if (atom.iface) {
      out << " [" << ServiceKindToString(atom.iface->kind());
      if (atom.iface->is_chunked()) out << ", chunked";
      out << "]";
    }
    out << "\n";
  }
  out << "selections:\n";
  for (const BoundSelection& sel : query.selections) {
    const BoundAtom& atom = query.atoms[sel.atom];
    out << "  " << atom.alias << "." << atom.schema->PathToString(sel.path)
        << " " << ComparatorToString(sel.op) << " "
        << (sel.input_var.empty() ? sel.constant.ToString() : sel.input_var)
        << "  (sel " << sel.selectivity << ")\n";
  }
  out << "joins:\n";
  for (const BoundJoinGroup& group : query.joins) {
    out << "  " << (group.pattern_name.empty() ? "<predicate>" : group.pattern_name)
        << " (sel " << group.selectivity << "):";
    for (const JoinClause& clause : group.clauses) {
      const BoundAtom& from = query.atoms[clause.from_atom];
      const BoundAtom& to = query.atoms[clause.to_atom];
      out << " " << from.alias << "." << from.schema->PathToString(clause.from_path)
          << ComparatorToString(clause.op) << to.alias << "."
          << to.schema->PathToString(clause.to_path);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace seco
