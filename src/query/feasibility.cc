#include "query/feasibility.h"

namespace seco {

namespace {

/// True if `path` is an output (O or R) under `pattern`.
bool IsOutput(const AccessPattern& pattern, const AttrPath& path) {
  return pattern.At(path) != Adornment::kInput;
}

}  // namespace

Result<FeasibilityReport> CheckFeasibility(const BoundQuery& query) {
  for (const BoundAtom& atom : query.atoms) {
    if (!atom.iface) {
      return Status::InvalidArgument(
          "atom '" + atom.alias +
          "' has no selected service interface; run access-pattern selection first");
    }
  }

  int n = static_cast<int>(query.atoms.size());
  FeasibilityReport report;
  report.atoms.resize(n);

  // Seed the per-atom input lists and the constant/INPUT bindings.
  for (int a = 0; a < n; ++a) {
    const AccessPattern& pattern = query.atoms[a].iface->pattern();
    for (const AttrPath& in_path : pattern.input_paths()) {
      InputBinding binding;
      binding.path = in_path;
      for (size_t s = 0; s < query.selections.size(); ++s) {
        const BoundSelection& sel = query.selections[s];
        if (sel.atom == a && sel.path == in_path && sel.op == Comparator::kEq) {
          binding.source = sel.input_var.empty() ? BindingSource::kConstant
                                                 : BindingSource::kInput;
          binding.selection_index = static_cast<int>(s);
          break;
        }
      }
      report.atoms[a].inputs.push_back(binding);
    }
  }

  // Fixpoint: an atom becomes reachable when all of its inputs are bound;
  // join bindings require the providing side to be reachable already.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < n; ++a) {
      AtomFeasibility& info = report.atoms[a];
      if (info.reachable) continue;
      bool all_bound = true;
      for (InputBinding& binding : info.inputs) {
        if (binding.source != BindingSource::kUnbound) continue;
        // Look for an equality join clause binding this input from a
        // reachable atom's output (in either clause direction).
        bool bound = false;
        for (size_t g = 0; g < query.joins.size() && !bound; ++g) {
          const BoundJoinGroup& group = query.joins[g];
          for (size_t c = 0; c < group.clauses.size() && !bound; ++c) {
            const JoinClause& clause = group.clauses[c];
            if (clause.op != Comparator::kEq) continue;
            int other = -1;
            AttrPath other_path;
            if (clause.to_atom == a && clause.to_path == binding.path) {
              other = clause.from_atom;
              other_path = clause.from_path;
            } else if (clause.from_atom == a && clause.from_path == binding.path) {
              other = clause.to_atom;
              other_path = clause.to_path;
            } else {
              continue;
            }
            if (other == a || !report.atoms[other].reachable) continue;
            if (!IsOutput(query.atoms[other].iface->pattern(), other_path)) continue;
            binding.source = BindingSource::kJoin;
            binding.join_group = static_cast<int>(g);
            binding.clause_index = static_cast<int>(c);
            binding.provider_atom = other;
            binding.provider_path = other_path;
            bound = true;
          }
        }
        if (!bound) {
          all_bound = false;
        }
      }
      if (all_bound) {
        info.reachable = true;
        for (const InputBinding& binding : info.inputs) {
          if (binding.source == BindingSource::kJoin) {
            bool seen = false;
            for (int d : info.depends_on) {
              if (d == binding.provider_atom) seen = true;
            }
            if (!seen) info.depends_on.push_back(binding.provider_atom);
          }
        }
        report.reachable_order.push_back(a);
        changed = true;
      }
    }
  }

  report.feasible = static_cast<int>(report.reachable_order.size()) == n;
  if (!report.feasible) {
    std::string unreached;
    for (int a = 0; a < n; ++a) {
      if (!report.atoms[a].reachable) {
        if (!unreached.empty()) unreached += ", ";
        unreached += query.atoms[a].alias;
        for (const InputBinding& binding : report.atoms[a].inputs) {
          if (binding.source == BindingSource::kUnbound) {
            unreached += " (unbound input " +
                         query.atoms[a].schema->PathToString(binding.path) + ")";
            break;
          }
        }
      }
    }
    report.reason = "unreachable atoms: " + unreached;
  }
  return report;
}

}  // namespace seco
