#ifndef SECO_QUERY_BOUND_QUERY_H_
#define SECO_QUERY_BOUND_QUERY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "service/registry.h"

namespace seco {

/// A query atom resolved against the registry. When the query names a
/// service interface directly, `iface` is set; when it names a service mart,
/// `iface` stays null and `candidates` lists the interfaces the optimizer's
/// Phase 1 may choose among.
struct BoundAtom {
  std::string alias;
  std::string service_name;
  std::string mart_name;  // empty if the interface has no registered mart
  std::shared_ptr<const ServiceSchema> schema;
  std::shared_ptr<ServiceInterface> iface;  // null for mart-level atoms
  std::vector<std::shared_ptr<ServiceInterface>> candidates;
};

/// A resolved selection predicate `atom.path op (const | INPUTvar)`.
struct BoundSelection {
  int atom = -1;
  AttrPath path;
  Comparator op = Comparator::kEq;
  Value constant;         // used when input_var is empty
  std::string input_var;  // non-empty when bound to an INPUT variable
  double selectivity = 0.1;
};

/// One comparison of a join: `from_atom.from_path op to_atom.to_path`.
struct JoinClause {
  int from_atom = -1;
  AttrPath from_path;
  Comparator op = Comparator::kEq;
  int to_atom = -1;
  AttrPath to_path;
};

/// A group of join clauses evaluated together with one combined selectivity:
/// either the expansion of a connection-pattern use, or a singleton group
/// for an ad-hoc join predicate.
struct BoundJoinGroup {
  std::vector<JoinClause> clauses;
  std::string pattern_name;  // empty for ad-hoc predicates
  double selectivity = 0.05;
};

/// Default selectivity estimates used when the registry provides none.
struct BindOptions {
  double eq_selectivity = 0.1;
  double range_selectivity = 0.33;
  double like_selectivity = 0.2;
  double join_eq_selectivity = 0.05;
  double join_range_selectivity = 0.3;
};

/// The registry-resolved form of a query, input to feasibility checking and
/// optimization.
struct BoundQuery {
  std::vector<BoundAtom> atoms;
  std::vector<BoundSelection> selections;
  std::vector<BoundJoinGroup> joins;
  /// Distinct INPUT variable names in first-use order.
  std::vector<std::string> input_vars;
  /// Per-atom ranking weights; empty when the query had no `rank by`.
  std::vector<double> explicit_weights;

  int AtomIndex(const std::string& alias) const;
  bool has_explicit_weights() const { return !explicit_weights.empty(); }

  /// Weights actually used for scoring: the explicit ones, or the chapter's
  /// default (unranked services weigh 0; ranked services share weight
  /// equally). Requires every atom to have a resolved interface.
  std::vector<double> EffectiveWeights() const;

  /// Resolves the comparison value of `sel` against the user's bindings.
  Result<Value> ResolveSelectionValue(
      const BoundSelection& sel,
      const std::map<std::string, Value>& input_bindings) const;
};

/// Resolves a parsed query against the registry: atoms to interfaces (or
/// mart candidates), attribute names to paths, connection-pattern uses to
/// join groups, and collects INPUT variables.
Result<BoundQuery> BindQuery(const ParsedQuery& parsed,
                             const ServiceRegistry& registry,
                             const BindOptions& options = {});

}  // namespace seco

#endif  // SECO_QUERY_BOUND_QUERY_H_
