#include "query/parser.h"

#include <cctype>
#include <optional>

#include "common/string_util.h"

namespace seco {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kDot,
  kOp,  // = != < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const std::string& s = text_;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                                s[i] == '_')) {
          ++i;
        }
        out.push_back({TokenKind::kIdent, s.substr(start, i - start), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < s.size() &&
                  std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
        ++i;
        bool seen_dot = false;
        while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                                (s[i] == '.' && !seen_dot &&
                                 i + 1 < s.size() &&
                                 std::isdigit(static_cast<unsigned char>(s[i + 1]))))) {
          if (s[i] == '.') seen_dot = true;
          ++i;
        }
        out.push_back({TokenKind::kNumber, s.substr(start, i - start), start});
      } else if (c == '\'' || c == '"') {
        char quote = c;
        ++i;
        std::string lit;
        while (i < s.size() && s[i] != quote) lit.push_back(s[i++]);
        if (i >= s.size()) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        ++i;  // closing quote
        out.push_back({TokenKind::kString, lit, start});
      } else if (c == ',') {
        out.push_back({TokenKind::kComma, ",", start});
        ++i;
      } else if (c == '(') {
        out.push_back({TokenKind::kLParen, "(", start});
        ++i;
      } else if (c == ')') {
        out.push_back({TokenKind::kRParen, ")", start});
        ++i;
      } else if (c == '.') {
        out.push_back({TokenKind::kDot, ".", start});
        ++i;
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        std::string op(1, c);
        ++i;
        if (i < s.size() && s[i] == '=') {
          op.push_back('=');
          ++i;
        }
        if (op == "!") {
          return Status::ParseError("stray '!' at offset " + std::to_string(start));
        }
        out.push_back({TokenKind::kOp, op, start});
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
      }
    }
    out.push_back({TokenKind::kEnd, "", s.size()});
    return out;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery query;
    SECO_RETURN_IF_ERROR(ExpectKeyword("select"));
    SECO_RETURN_IF_ERROR(ParseAtomList(&query));
    SECO_RETURN_IF_ERROR(ExpectKeyword("where"));
    SECO_RETURN_IF_ERROR(ParseConditionList(&query));
    if (IsKeyword("rank")) {
      Advance();
      SECO_RETURN_IF_ERROR(ExpectKeyword("by"));
      SECO_RETURN_IF_ERROR(ParseWeights(&query));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    if (!query.ranking_weights.empty() &&
        query.ranking_weights.size() != query.atoms.size()) {
      return Status::ParseError(
          "rank by lists " + std::to_string(query.ranking_weights.size()) +
          " weights for " + std::to_string(query.atoms.size()) + " atoms");
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }

  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && AsciiToLower(Peek().text) == kw;
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return Error(std::string("expected '") + kw + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(Peek().offset) +
                              (Peek().text.empty() ? "" : " near '" + Peek().text + "'"));
  }

  Status ParseAtomList(ParsedQuery* query) {
    while (true) {
      if (Peek().kind != TokenKind::kIdent) return Error("expected service name");
      QueryAtom atom;
      atom.service_name = Peek().text;
      Advance();
      if (IsKeyword("as")) {
        Advance();
        if (Peek().kind != TokenKind::kIdent) return Error("expected alias");
        atom.alias = Peek().text;
        Advance();
      } else {
        atom.alias = atom.service_name;
      }
      for (const QueryAtom& prev : query->atoms) {
        if (prev.alias == atom.alias) {
          return Status::ParseError("duplicate alias '" + atom.alias + "'");
        }
      }
      query->atoms.push_back(std::move(atom));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseConditionList(ParsedQuery* query) {
    while (true) {
      SECO_RETURN_IF_ERROR(ParseCondition(query));
      if (!IsKeyword("and")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseCondition(ParsedQuery* query) {
    if (Peek().kind != TokenKind::kIdent) return Error("expected condition");
    // Connection use: IDENT '(' IDENT ',' IDENT ')'
    if (Peek(1).kind == TokenKind::kLParen) {
      ConnectionUse use;
      use.pattern_name = Peek().text;
      Advance();
      Advance();  // '('
      if (Peek().kind != TokenKind::kIdent) return Error("expected alias");
      use.from_alias = Peek().text;
      Advance();
      SECO_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
      if (Peek().kind != TokenKind::kIdent) return Error("expected alias");
      use.to_alias = Peek().text;
      Advance();
      SECO_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      query->connections.push_back(std::move(use));
      return Status::OK();
    }
    // Predicate: ref op operand
    ParsedPredicate pred;
    SECO_RETURN_IF_ERROR(ParseRef(&pred.lhs));
    SECO_ASSIGN_OR_RETURN(pred.op, ParseOp());
    SECO_ASSIGN_OR_RETURN(pred.rhs, ParseOperand());
    query->predicates.push_back(std::move(pred));
    return Status::OK();
  }

  Status ParseRef(AttrRef* ref) {
    if (Peek().kind != TokenKind::kIdent) return Error("expected attribute reference");
    ref->alias = Peek().text;
    Advance();
    if (Peek().kind != TokenKind::kDot) return Error("expected '.' after alias");
    Advance();
    if (Peek().kind != TokenKind::kIdent) return Error("expected attribute name");
    ref->path = Peek().text;
    Advance();
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) return Error("expected sub-attribute name");
      ref->path += "." + Peek().text;
      Advance();
    }
    return Status::OK();
  }

  Result<Comparator> ParseOp() {
    if (IsKeyword("like")) {
      Advance();
      return Comparator::kLike;
    }
    if (Peek().kind != TokenKind::kOp) {
      Status err = Error("expected comparison operator");
      return err;
    }
    std::string op = Peek().text;
    Advance();
    if (op == "=") return Comparator::kEq;
    if (op == "!=") return Comparator::kNe;
    if (op == "<") return Comparator::kLt;
    if (op == "<=") return Comparator::kLe;
    if (op == ">") return Comparator::kGt;
    if (op == ">=") return Comparator::kGe;
    return Status::ParseError("unknown operator '" + op + "'");
  }

  Result<Operand> ParseOperand() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kNumber) {
      Advance();
      if (tok.text.find('.') != std::string::npos) {
        return Operand(Value(std::stod(tok.text)));
      }
      return Operand(Value(static_cast<int64_t>(std::stoll(tok.text))));
    }
    if (tok.kind == TokenKind::kString) {
      Advance();
      return Operand(Value(tok.text));
    }
    if (tok.kind == TokenKind::kIdent) {
      if (tok.text.rfind("INPUT", 0) == 0 && Peek(1).kind != TokenKind::kDot) {
        Advance();
        return Operand(InputVarRef{tok.text});
      }
      std::string lowered = AsciiToLower(tok.text);
      if ((lowered == "true" || lowered == "false") &&
          Peek(1).kind != TokenKind::kDot) {
        Advance();
        return Operand(Value(lowered == "true"));
      }
      AttrRef ref;
      SECO_RETURN_IF_ERROR(ParseRef(&ref));
      return Operand(std::move(ref));
    }
    Status err = Error("expected operand");
    return err;
  }

  Status ParseWeights(ParsedQuery* query) {
    SECO_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      if (Peek().kind != TokenKind::kNumber) return Error("expected weight");
      query->ranking_weights.push_back(std::stod(Peek().text));
      Advance();
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return Expect(TokenKind::kRParen, "')'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  SECO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace seco
