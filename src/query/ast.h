#ifndef SECO_QUERY_AST_H_
#define SECO_QUERY_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "service/value.h"

namespace seco {

/// One atom of the conjunctive query: a service (mart or interface) name
/// plus the alias it is used under. The same service may occur several times
/// under different aliases (§3.1).
struct QueryAtom {
  std::string service_name;
  std::string alias;
};

/// A reference to an attribute of a query atom, e.g. `M.Genres.Genre`
/// (alias "M", path "Genres.Genre").
struct AttrRef {
  std::string alias;
  std::string path;
};

/// A reference to a user-supplied INPUT variable (§3.1), e.g. `INPUT1`.
struct InputVarRef {
  std::string name;
};

/// The right-hand side of a predicate: constant, INPUT variable, or another
/// attribute (making the predicate a join predicate).
using Operand = std::variant<Value, InputVarRef, AttrRef>;

/// A selection (`A op const`/`A op INPUTi`) or join (`A op B`) predicate.
struct ParsedPredicate {
  AttrRef lhs;
  Comparator op = Comparator::kEq;
  Operand rhs;
};

/// A use of a registered connection pattern, e.g. `Shows(M, T)`.
struct ConnectionUse {
  std::string pattern_name;
  std::string from_alias;
  std::string to_alias;
};

/// The parsed form of a SeCo query:
///
///   select <svc> [as <alias>] (, ...)*
///   where <cond> (and <cond>)*
///   [rank by (w1, ..., wn)]
///
/// where each cond is a connection-pattern use or a predicate.
struct ParsedQuery {
  std::vector<QueryAtom> atoms;
  std::vector<ConnectionUse> connections;
  std::vector<ParsedPredicate> predicates;
  /// Ranking-function weights, one per atom in select order; empty when the
  /// query has no `rank by` clause.
  std::vector<double> ranking_weights;
};

}  // namespace seco

#endif  // SECO_QUERY_AST_H_
