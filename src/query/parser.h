#ifndef SECO_QUERY_PARSER_H_
#define SECO_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace seco {

/// Parses the SeCo conjunctive query language (§3.1) into a ParsedQuery.
///
/// Grammar (keywords case-insensitive; identifiers case-sensitive):
///
///   query      := 'select' atom (',' atom)*
///                 'where' cond ('and' cond)*
///                 [ 'rank' 'by' '(' number (',' number)* ')' ]
///   atom       := IDENT [ 'as' IDENT ]
///   cond       := IDENT '(' IDENT ',' IDENT ')'          -- connection use
///               | ref op operand                         -- predicate
///   ref        := IDENT '.' IDENT [ '.' IDENT ]
///   operand    := NUMBER | STRING | INPUTVAR | ref
///   op         := '=' | '!=' | '<' | '<=' | '>' | '>=' | 'like'
///
/// An identifier whose name starts with "INPUT" denotes an input variable.
Result<ParsedQuery> ParseQuery(const std::string& text);

}  // namespace seco

#endif  // SECO_QUERY_PARSER_H_
