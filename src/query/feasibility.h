#ifndef SECO_QUERY_FEASIBILITY_H_
#define SECO_QUERY_FEASIBILITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/bound_query.h"

namespace seco {

/// How one input (sub-)attribute of an atom's access pattern gets its value.
enum class BindingSource {
  kUnbound,   // nothing in the query binds it -> atom unreachable
  kConstant,  // equality selection with a constant
  kInput,     // equality selection with an INPUT variable
  kJoin,      // equality join clause whose other side is a reachable output
};

/// Resolution of a single input path of an atom.
struct InputBinding {
  AttrPath path;
  BindingSource source = BindingSource::kUnbound;
  /// For kConstant/kInput: index into BoundQuery::selections.
  int selection_index = -1;
  /// For kJoin: join group / clause indexes and the providing atom.
  int join_group = -1;
  int clause_index = -1;
  int provider_atom = -1;
  /// For kJoin: the provider's output path feeding this input.
  AttrPath provider_path;
};

/// Per-atom reachability detail.
struct AtomFeasibility {
  bool reachable = false;
  std::vector<InputBinding> inputs;
  /// Atoms whose outputs feed this atom's inputs (pipe/I-O dependencies).
  std::vector<int> depends_on;
};

/// The result of the reachability analysis (§3.1): a query is feasible iff
/// every atom is reachable through constants, INPUT variables, and equality
/// joins against outputs of reachable atoms.
struct FeasibilityReport {
  bool feasible = false;
  std::string reason;  // why not, when infeasible
  std::vector<AtomFeasibility> atoms;
  /// Atom indices in an order compatible with the I/O dependencies.
  std::vector<int> reachable_order;
};

/// Analyzes `query`, whose atoms must all have resolved interfaces
/// (mart-level atoms must first go through the optimizer's Phase 1).
Result<FeasibilityReport> CheckFeasibility(const BoundQuery& query);

}  // namespace seco

#endif  // SECO_QUERY_FEASIBILITY_H_
