#include "query/bound_query.h"

#include <algorithm>

namespace seco {

int BoundQuery::AtomIndex(const std::string& alias) const {
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (atoms[i].alias == alias) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> BoundQuery::EffectiveWeights() const {
  if (!explicit_weights.empty()) return explicit_weights;
  std::vector<double> weights(atoms.size(), 0.0);
  int ranked = 0;
  for (const BoundAtom& atom : atoms) {
    if (atom.iface && atom.iface->is_ranked()) ++ranked;
  }
  if (ranked == 0) return weights;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (atoms[i].iface && atoms[i].iface->is_ranked()) {
      weights[i] = 1.0 / ranked;
    }
  }
  return weights;
}

Result<Value> BoundQuery::ResolveSelectionValue(
    const BoundSelection& sel,
    const std::map<std::string, Value>& input_bindings) const {
  if (sel.input_var.empty()) return sel.constant;
  auto it = input_bindings.find(sel.input_var);
  if (it == input_bindings.end()) {
    return Status::InvalidArgument("no binding for input variable '" +
                                   sel.input_var + "'");
  }
  return it->second;
}

namespace {

double SelectionSelectivity(Comparator op, const BindOptions& options) {
  switch (op) {
    case Comparator::kEq:
      return options.eq_selectivity;
    case Comparator::kLike:
      return options.like_selectivity;
    default:
      return options.range_selectivity;
  }
}

void RecordInputVar(BoundQuery* query, const std::string& name) {
  if (std::find(query->input_vars.begin(), query->input_vars.end(), name) ==
      query->input_vars.end()) {
    query->input_vars.push_back(name);
  }
}

}  // namespace

Result<BoundQuery> BindQuery(const ParsedQuery& parsed,
                             const ServiceRegistry& registry,
                             const BindOptions& options) {
  BoundQuery query;

  for (const QueryAtom& atom : parsed.atoms) {
    BoundAtom bound;
    bound.alias = atom.alias;
    bound.service_name = atom.service_name;
    auto iface_result = registry.FindInterface(atom.service_name);
    if (iface_result.ok()) {
      bound.iface = iface_result.value();
      bound.candidates = {bound.iface};
      bound.schema = bound.iface->schema_ptr();
      bound.mart_name = registry.MartOfInterface(atom.service_name);
    } else {
      SECO_ASSIGN_OR_RETURN(std::shared_ptr<ServiceMart> mart,
                            registry.FindMart(atom.service_name));
      bound.mart_name = mart->name();
      bound.schema = mart->schema_ptr();
      bound.candidates = registry.InterfacesOfMart(mart->name());
      if (bound.candidates.empty()) {
        return Status::Infeasible("mart '" + mart->name() +
                                  "' has no registered service interfaces");
      }
    }
    query.atoms.push_back(std::move(bound));
  }

  // Expand connection-pattern uses into join groups.
  for (const ConnectionUse& use : parsed.connections) {
    SECO_ASSIGN_OR_RETURN(std::shared_ptr<ConnectionPattern> pattern,
                          registry.FindConnectionPattern(use.pattern_name));
    int from = query.AtomIndex(use.from_alias);
    int to = query.AtomIndex(use.to_alias);
    if (from < 0 || to < 0) {
      return Status::InvalidArgument("connection '" + use.pattern_name +
                                     "' references unknown alias");
    }
    if (!query.atoms[from].mart_name.empty() &&
        query.atoms[from].mart_name != pattern->source_mart()) {
      return Status::InvalidArgument(
          "connection '" + use.pattern_name + "' expects source mart '" +
          pattern->source_mart() + "' but alias '" + use.from_alias + "' is over '" +
          query.atoms[from].mart_name + "'");
    }
    if (!query.atoms[to].mart_name.empty() &&
        query.atoms[to].mart_name != pattern->target_mart()) {
      return Status::InvalidArgument(
          "connection '" + use.pattern_name + "' expects target mart '" +
          pattern->target_mart() + "' but alias '" + use.to_alias + "' is over '" +
          query.atoms[to].mart_name + "'");
    }
    BoundJoinGroup group;
    group.pattern_name = pattern->name();
    group.selectivity = pattern->selectivity();
    for (const ConnectionClause& clause : pattern->clauses()) {
      JoinClause bound_clause;
      bound_clause.from_atom = from;
      bound_clause.to_atom = to;
      bound_clause.op = clause.op;
      SECO_ASSIGN_OR_RETURN(bound_clause.from_path,
                            query.atoms[from].schema->Resolve(clause.from_attribute));
      SECO_ASSIGN_OR_RETURN(bound_clause.to_path,
                            query.atoms[to].schema->Resolve(clause.to_attribute));
      group.clauses.push_back(bound_clause);
    }
    query.joins.push_back(std::move(group));
  }

  // Resolve plain predicates into selections or singleton join groups.
  for (const ParsedPredicate& pred : parsed.predicates) {
    int atom = query.AtomIndex(pred.lhs.alias);
    if (atom < 0) {
      return Status::InvalidArgument("unknown alias '" + pred.lhs.alias + "'");
    }
    SECO_ASSIGN_OR_RETURN(AttrPath lhs_path,
                          query.atoms[atom].schema->Resolve(pred.lhs.path));
    if (const AttrRef* rhs_ref = std::get_if<AttrRef>(&pred.rhs)) {
      int rhs_atom = query.AtomIndex(rhs_ref->alias);
      if (rhs_atom < 0) {
        return Status::InvalidArgument("unknown alias '" + rhs_ref->alias + "'");
      }
      SECO_ASSIGN_OR_RETURN(AttrPath rhs_path,
                            query.atoms[rhs_atom].schema->Resolve(rhs_ref->path));
      if (rhs_atom == atom) {
        return Status::Unsupported(
            "self-comparison predicates within one atom are not supported");
      }
      BoundJoinGroup group;
      group.selectivity = pred.op == Comparator::kEq
                              ? options.join_eq_selectivity
                              : options.join_range_selectivity;
      JoinClause clause;
      clause.from_atom = atom;
      clause.from_path = lhs_path;
      clause.op = pred.op;
      clause.to_atom = rhs_atom;
      clause.to_path = rhs_path;
      group.clauses.push_back(clause);
      query.joins.push_back(std::move(group));
      continue;
    }
    BoundSelection sel;
    sel.atom = atom;
    sel.path = lhs_path;
    sel.op = pred.op;
    sel.selectivity = SelectionSelectivity(pred.op, options);
    if (const InputVarRef* var = std::get_if<InputVarRef>(&pred.rhs)) {
      sel.input_var = var->name;
      RecordInputVar(&query, var->name);
    } else {
      sel.constant = std::get<Value>(pred.rhs);
    }
    query.selections.push_back(std::move(sel));
  }

  query.explicit_weights = parsed.ranking_weights;
  return query;
}

}  // namespace seco
