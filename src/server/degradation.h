#ifndef SECO_SERVER_DEGRADATION_H_
#define SECO_SERVER_DEGRADATION_H_

#include <algorithm>
#include <cstdint>

namespace seco {

/// Point-in-time resource pressure of a `QueryServer`, assembled from every
/// shared facility a query consumes: the admission window, the runner pool,
/// the per-class waiting queues, the cross-query circuit breakers, and the
/// shared service-call cache. All inputs are cheap gauges; the snapshot is
/// taken under the server mutex at each admission, so a query's degradation
/// level is a pure function of the server state at its arrival.
struct PressureSignals {
  /// Queries dispatched to the runner pool and not yet finished.
  int in_flight = 0;
  /// The admission window (`ServerOptions::max_in_flight`).
  int max_in_flight = 1;
  /// Dispatched queries still waiting for a free runner thread
  /// (`ThreadPool::queue_depth()` of the runner pool).
  int pool_queue_depth = 0;
  int runner_threads = 1;
  /// Queries waiting in the per-class admission queues, summed.
  int queued = 0;
  /// Total waiting-room capacity, summed over classes (>= 1 for scoring).
  int queue_capacity = 1;
  /// Currently open circuit breakers in the server's shared registry.
  int open_breakers = 0;
  /// Shared call-cache footprint vs its byte budget.
  double cache_bytes = 0.0;
  double cache_budget = 1.0;
};

/// Thresholds and weights of the graceful-degradation ladder
/// (docs/SERVER.md). The ladder maps a pressure score in [0, ~1.5] onto a
/// level 0..3; each level strictly removes work from *newly admitted*
/// queries (running queries are never touched):
///
///   level 0  full quality
///   level 1  drop speculation (streaming `prefetch_depth` -> 0)
///   level 2  additionally cut k and the call budget (`k_factor`,
///            `call_budget_factor`) — fewer answers, less chunk lookahead
///   level 3  additionally force `reliability.degrade`: partial answers
///            are preferred over failing the query
struct DegradationLadderConfig {
  /// Master switch: disabled = every admission runs at level 0.
  bool enabled = true;
  /// Score thresholds of levels 1..3 (monotone non-decreasing).
  double level1_threshold = 0.50;
  double level2_threshold = 0.75;
  double level3_threshold = 0.90;
  /// Multipliers applied to k / max_calls at level >= 2.
  double k_factor = 0.5;
  int min_k = 1;
  double call_budget_factor = 0.5;
  /// Score contributed by >= 1 open breaker (a sick backend is pressure
  /// even when queues are empty). 0.75 lands on level 2 by default.
  double breaker_weight = 0.75;
  /// Weight of the cache-fill fraction. A full LRU cache is the normal
  /// steady state, so its weight sits below `level2_threshold` by default:
  /// cache churn alone only drops speculation (the main cache polluter).
  double cache_weight = 0.6;
  /// Weight of runner-pool backlog relative to `runner_threads`.
  double pool_weight = 0.9;
};

/// The pressure-to-level policy. Stateless and deterministic: the same
/// signals always yield the same level, so admission ledgers are exactly
/// reproducible from an arrival/completion trace.
class DegradationLadder {
 public:
  explicit DegradationLadder(DegradationLadderConfig config)
      : config_(config) {}

  const DegradationLadderConfig& config() const { return config_; }

  /// Pressure score: the max over per-facility components, each normalized
  /// so 1.0 means "this facility is exhausted".
  ///  - load: half saturation (in_flight / max_in_flight), half backlog
  ///    (queued / queue_capacity) — all slots busy with empty queues scores
  ///    0.5 (level 1), full queues push toward 1.0;
  ///  - pool: dispatched-but-not-running vs runner threads, capped at 1;
  ///  - breakers: a fixed weight while any breaker is open;
  ///  - cache: fill fraction times its weight.
  static double Score(const PressureSignals& signals,
                      const DegradationLadderConfig& config);

  /// Level for `signals` under this ladder's config: 0 when disabled,
  /// otherwise the highest threshold the score reaches.
  int LevelFor(const PressureSignals& signals) const;

  /// Applies `level` to the per-query knobs the server owns. Level >= 2
  /// multiplies `k` (floored at `min_k`) and `max_calls` (floored at 1);
  /// the engine-side effects (speculation, partial answers) ride on
  /// `ExecutionOptions::degradation_level` instead.
  void ApplyToRequest(int level, int* k, int* max_calls) const;

  static constexpr int kMaxLevel = 3;

 private:
  DegradationLadderConfig config_;
};

}  // namespace seco

#endif  // SECO_SERVER_DEGRADATION_H_
