#include "server/watchdog.h"

#include <chrono>
#include <utility>
#include <vector>

namespace seco {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void QueryWatchdog::Start() {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  scanner_ = std::thread([this] { ScanLoop(); });
}

void QueryWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    tracked_.clear();
  }
  cv_.notify_all();
  if (scanner_.joinable()) scanner_.join();
}

void QueryWatchdog::Track(uint64_t id, std::shared_ptr<CancelToken> token) {
  if (!enabled() || token == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  Entry entry;
  entry.last_progress = token->progress();
  entry.last_advance_ms = NowMs();
  entry.token = std::move(token);
  tracked_.emplace(id, std::move(entry));
  ++stats_.tracked;
}

void QueryWatchdog::Untrack(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  tracked_.erase(id);
}

WatchdogStats QueryWatchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryWatchdog::ScanLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.scan_interval_ms > 0.0 ? options_.scan_interval_ms : 50.0);
  while (running_) {
    cv_.wait_for(lock, interval, [this] { return !running_; });
    if (!running_) break;
    ++stats_.scans;
    const double now = NowMs();
    std::vector<std::shared_ptr<CancelToken>> reap;
    for (auto& [id, entry] : tracked_) {
      const uint64_t progress = entry.token->progress();
      if (progress != entry.last_progress) {
        entry.last_progress = progress;
        entry.last_advance_ms = now;
        continue;
      }
      if (now - entry.last_advance_ms >= options_.stall_grace_ms &&
          !entry.token->cancelled()) {
        reap.push_back(entry.token);
        // Reset the clock so a query that ignores the cancel (it may be
        // stuck in an uninterruptible syscall) is not re-reaped every scan.
        entry.last_advance_ms = now;
      }
    }
    stats_.reaped += static_cast<int64_t>(reap.size());
    // Cancel outside the lock: Cancel() fans out to children and linked
    // interrupt flags, and must not hold up Track/Untrack.
    lock.unlock();
    for (auto& token : reap) {
      token->Cancel("watchdog: no progress for " +
                    std::to_string(options_.stall_grace_ms) + " ms");
    }
    lock.lock();
  }
}

}  // namespace seco
