#include "server/admission.h"

#include <algorithm>
#include <vector>

namespace seco {

const char* PriorityClassToString(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "unknown";
}

namespace {

std::vector<int> DrainWeights(const AdmissionConfig& config) {
  return {std::max(1, config.interactive.weight),
          std::max(1, config.batch.weight)};
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config), wrr_(Clock::Create(DrainWeights(config)).value()) {}

std::optional<uint64_t> AdmissionController::Offer(PriorityClass priority,
                                                   double now_ms,
                                                   double request_deadline_ms) {
  const AdmissionClassConfig& cls = config_.of(priority);
  std::deque<QueueTicket>& queue = queues_[static_cast<int>(priority)];
  if (static_cast<int>(queue.size()) >= cls.queue_capacity) {
    return std::nullopt;  // shed: backlog is bounded by construction
  }
  QueueTicket ticket;
  ticket.id = next_id_++;
  ticket.priority = priority;
  ticket.enqueued_ms = now_ms;
  ticket.deadline_ms =
      request_deadline_ms > 0.0 ? request_deadline_ms : cls.queue_deadline_ms;
  queue.push_back(ticket);
  return ticket.id;
}

std::optional<QueueTicket> AdmissionController::NextToDispatch(double now_ms) {
  // Expired tickets resolve without running and never claim an in-flight
  // slot, so they are swept regardless of the window — interactive class
  // first, FIFO within a class. A later ticket can expire before an earlier
  // one (per-request deadlines differ), hence the full scan.
  for (auto& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->deadline_ms > 0.0 &&
          now_ms - it->enqueued_ms > it->deadline_ms) {
        QueueTicket ticket = *it;
        queue.erase(it);
        ticket.expired = true;
        return ticket;
      }
    }
  }

  if (in_flight_ >= config_.max_in_flight) return std::nullopt;

  // The WRR clock only ticks callable (non-empty) classes; syncing the
  // suspension set here keeps empty classes from absorbing drain credit.
  for (int i = 0; i < kNumPriorityClasses; ++i) {
    if (queues_[i].empty()) {
      if (!wrr_.suspended(i)) wrr_.Suspend(i);
    } else if (wrr_.suspended(i)) {
      wrr_.Resume(i);
    }
  }
  int next = wrr_.NextService();
  if (next < 0) return std::nullopt;

  QueueTicket ticket = queues_[next].front();
  queues_[next].pop_front();
  ++in_flight_;
  return ticket;
}

void AdmissionController::OnFinished() {
  if (in_flight_ > 0) --in_flight_;
}

bool AdmissionController::Remove(uint64_t id) {
  for (auto& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->id == id) {
        queue.erase(it);
        return true;
      }
    }
  }
  return false;
}

}  // namespace seco
