#include "server/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "query/parser.h"

namespace seco {

const char* ServedOutcomeToString(ServedOutcome outcome) {
  switch (outcome) {
    case ServedOutcome::kCompleted:
      return "completed";
    case ServedOutcome::kDegraded:
      return "degraded";
    case ServedOutcome::kShed:
      return "shed";
    case ServedOutcome::kDeadlineExpired:
      return "deadline_expired";
    case ServedOutcome::kFailed:
      return "failed";
    case ServedOutcome::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size());
  int index = static_cast<int>(std::ceil(rank)) - 1;
  index = std::clamp(index, 0, static_cast<int>(samples.size()) - 1);
  return samples[index];
}

QueryServer::QueryServer(std::shared_ptr<ServiceRegistry> registry,
                         ServerOptions options,
                         OptimizerOptions optimizer_options)
    : registry_(std::move(registry)),
      options_(std::move(options)),
      optimizer_options_(optimizer_options),
      cache_(options_.cache_byte_budget),
      // The shared registry's breaker parameters come from the server-wide
      // default policy; per-request policies only decide whether breakers
      // are consulted at all.
      breakers_(options_.reliability.breaker_failure_threshold,
                options_.reliability.breaker_probe_interval),
      ladder_(options_.ladder),
      pool_(options_.runner_threads > 0
                ? options_.runner_threads
                : std::max(1, options_.admission.max_in_flight)),
      watchdog_(options_.watchdog),
      admission_(options_.admission),
      epoch_(std::chrono::steady_clock::now()) {
  watchdog_.Start();
  if (options_.runner_threads <= 0) {
    options_.runner_threads = std::max(1, options_.admission.max_in_flight);
  }
  if (options_.answer_cache) {
    answer_cache_ = std::make_unique<AnswerCache>(options_.answer_cache_bytes);
    if (options_.plan_memo_bytes > 0) {
      plan_memo_ = std::make_unique<PlanMemo>(options_.plan_memo_bytes);
    }
  }
  registry_gen_seen_.store(registry_->generation(), std::memory_order_release);
}

QueryServer::~QueryServer() {
  Drain();
  // Join the scanner before the runners: the watchdog only touches tokens,
  // but a scan racing pool teardown buys nothing.
  watchdog_.Stop();
  // Join the runners before any member the tasks touch is destroyed
  // (members destruct in reverse declaration order, which would tear down
  // the stats/mutex before the pool).
  pool_.Shutdown();
}

double QueryServer::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

PressureSignals QueryServer::PressureLocked() const {
  PressureSignals signals;
  signals.in_flight = admission_.in_flight();
  signals.max_in_flight = std::max(1, options_.admission.max_in_flight);
  signals.pool_queue_depth = pool_.queue_depth();
  signals.runner_threads = options_.runner_threads;
  signals.queued = admission_.queued_total();
  signals.queue_capacity = std::max(1, admission_.queue_capacity_total());
  signals.open_breakers = breakers_.OpenCount();
  CallCacheStats cache_stats = cache_.stats();
  signals.cache_bytes = static_cast<double>(cache_stats.bytes);
  signals.cache_budget =
      static_cast<double>(std::max<size_t>(1, cache_.byte_budget()));
  return signals;
}

std::future<QueryResponse> QueryServer::Submit(QueryRequest request) {
  return SubmitWithId(std::move(request)).future;
}

QueryServer::SubmittedQuery QueryServer::SubmitWithId(QueryRequest request) {
  std::promise<QueryResponse> promise;
  SubmittedQuery submitted;
  std::future<QueryResponse>& future = submitted.future;
  future = promise.get_future();

  PriorityClass priority = request.priority;
  bool was_shed = false;
  bool was_hit = false;
  QueryResponse ready_response;
  std::vector<Dispatch> dispatches;

  // Graceful shutdown: once draining, arrivals are shed before touching
  // the cache or admission state — in-flight queries keep their resources.
  if (draining_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ClassServingStats& cls = stats_.of(priority);
      ++cls.submitted;
      ++cls.shed;
    }
    ready_response.outcome = ServedOutcome::kShed;
    ready_response.priority = priority;
    ready_response.retry_after_ms = options_.retry_after_ms;
    ready_response.status = Status::Rejected(
        "server draining; retry after " +
        std::to_string(ready_response.retry_after_ms) + " ms");
    promise.set_value(std::move(ready_response));
    return submitted;
  }

  // Answer-cache preparation happens before the server lock: parsing,
  // binding, and hashing the canonical signature are pure work that must
  // not serialize the admission path. Trace requests bypass the cache — a
  // cached answer carries no fresh trace.
  std::optional<AnswerKey> key_base;
  if (answer_cache_ && !request.collect_trace) {
    RefreshCacheEpoch();
    key_base = BuildAnswerKeyBase(request);
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    double now = NowMs();
    ClassServingStats& cls = stats_.of(priority);
    ++cls.submitted;

    // The degradation level is decided from the pressure at arrival, before
    // this query itself contributes to it.
    int level = ladder_.LevelFor(PressureLocked());

    // The level-dependent key parts (degradation level, the ladder's k /
    // call-budget cuts) are only known now, so the final signature is
    // assembled under the lock. A warm hit resolves right here: it consumes
    // no admission-window slot and no runner thread.
    std::optional<Signature> answer_sig;
    if (key_base.has_value()) {
      AnswerKey key = *key_base;
      key.k = request.k;
      key.max_calls = request.max_calls;
      ladder_.ApplyToRequest(level, &key.k, &key.max_calls);
      key.degradation_level = level;
      answer_sig = AnswerSignature(key, request.input_bindings);
      if (std::shared_ptr<const CachedAnswer> hit =
              answer_cache_->Probe(*answer_sig)) {
        ready_response = ResponseFromCached(*hit, level);
        if (ready_response.outcome == ServedOutcome::kDegraded) {
          ++cls.degraded;
        } else {
          ++cls.completed;
        }
        ++cls.answer_cache_hits;
        ++cls.degradation_levels[std::clamp(level, 0,
                                            DegradationLadder::kMaxLevel)];
        cls.queue_wait_ms.push_back(0.0);
        cls.sim_elapsed_ms.push_back(
            ready_response.streamed
                ? ready_response.streaming.total_latency_ms
                : ready_response.execution.elapsed_ms);
        was_hit = true;
      }
    }

    std::optional<uint64_t> ticket;
    if (!was_hit) {
      ticket = admission_.Offer(priority, now, request.deadline_ms);
    }
    if (was_hit) {
      // Resolved from cache above; nothing to enqueue.
    } else if (!ticket.has_value()) {
      ++cls.shed;
      double backlog =
          static_cast<double>(admission_.queued_total()) /
          static_cast<double>(std::max(1, admission_.queue_capacity_total()));
      ready_response.outcome = ServedOutcome::kShed;
      ready_response.priority = priority;
      ready_response.retry_after_ms =
          options_.retry_after_ms * (1.0 + backlog);
      ready_response.status = Status::Rejected(
          std::string(PriorityClassToString(priority)) +
          " admission queue full; retry after " +
          std::to_string(ready_response.retry_after_ms) + " ms");
      was_shed = true;
    } else {
      auto pending = std::make_unique<Pending>();
      pending->request = std::move(request);
      pending->promise = std::move(promise);
      pending->degradation_level = level;
      pending->answer_sig = answer_sig;
      pending->cancel = std::make_shared<CancelToken>();
      pending->enqueued_ms = now;
      submitted.id = *ticket;
      waiting_.emplace(*ticket, std::move(pending));
      ++unresolved_;
      cls.peak_queue_depth =
          std::max(cls.peak_queue_depth, admission_.queued(priority));
      dispatches = CollectDispatchesLocked();
    }
  }
  // Shed queries and warm cache hits touch no execution state and their
  // futures are ready immediately; the promise fires outside the lock, like
  // every other.
  if (was_shed || was_hit) {
    ready_response.priority = priority;
    promise.set_value(std::move(ready_response));
  }
  LaunchDispatches(std::move(dispatches));
  return submitted;
}

bool QueryServer::Cancel(uint64_t id, std::string reason) {
  if (id == 0) return false;
  std::unique_ptr<Pending> purged;
  std::shared_ptr<CancelToken> token;
  double wait = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = waiting_.find(id);
    if (it != waiting_.end()) {
      // Still queued: purge. The ticket never claimed an in-flight slot,
      // so there is no OnFinished — the window is untouched and whoever
      // was going to dispatch next still dispatches next.
      admission_.Remove(id);
      purged = std::move(it->second);
      waiting_.erase(it);
      wait = NowMs() - purged->enqueued_ms;
      ClassServingStats& cls = stats_.of(purged->request.priority);
      ++cls.cancelled;
      cls.queue_wait_ms.push_back(wait);
      --unresolved_;
      drain_cv_.notify_all();
    } else {
      auto run = running_.find(id);
      if (run == running_.end()) return false;  // unknown or already resolved
      token = run->second;
    }
  }
  if (purged != nullptr) {
    QueryResponse response;
    response.outcome = ServedOutcome::kCancelled;
    response.priority = purged->request.priority;
    response.degradation_level = purged->degradation_level;
    response.queue_wait_ms = wait;
    response.status = Status::Cancelled(std::move(reason));
    purged->promise.set_value(std::move(response));
    return true;
  }
  // Running: fire the token and let RunOne resolve it. Racing a concurrent
  // completion is fine — the promise is set exactly once, by RunOne, with
  // whichever outcome the race produced.
  token->Cancel(std::move(reason));
  return true;
}

std::vector<QueryServer::Dispatch> QueryServer::CollectDispatchesLocked() {
  std::vector<Dispatch> dispatches;
  double now = NowMs();
  while (std::optional<QueueTicket> ticket = admission_.NextToDispatch(now)) {
    auto it = waiting_.find(ticket->id);
    if (it == waiting_.end()) continue;  // unreachable: every ticket has a payload
    Dispatch dispatch;
    dispatch.ticket = *ticket;
    dispatch.pending = std::move(it->second);
    waiting_.erase(it);
    if (!ticket->expired) {
      // Hand the id over to the running set in the same critical section
      // that removes it from `waiting_`: Cancel always finds it in exactly
      // one place.
      running_.emplace(ticket->id, dispatch.pending->cancel);
    }
    dispatches.push_back(std::move(dispatch));
  }
  stats_.peak_in_flight =
      std::max(stats_.peak_in_flight, admission_.in_flight());
  return dispatches;
}

void QueryServer::LaunchDispatches(std::vector<Dispatch> dispatches) {
  for (Dispatch& dispatch : dispatches) {
    if (dispatch.ticket.expired) {
      // Overran its queue deadline: resolve without running. No in-flight
      // slot was claimed, so there is no OnFinished here.
      double wait = NowMs() - dispatch.ticket.enqueued_ms;
      QueryResponse response;
      response.outcome = ServedOutcome::kDeadlineExpired;
      response.priority = dispatch.ticket.priority;
      response.degradation_level = dispatch.pending->degradation_level;
      response.queue_wait_ms = wait;
      response.status = Status::DeadlineExceeded(
          "query waited " + std::to_string(wait) +
          " ms in the admission queue, past its deadline of " +
          std::to_string(dispatch.ticket.deadline_ms) + " ms");
      {
        std::lock_guard<std::mutex> lock(mu_);
        ClassServingStats& cls = stats_.of(dispatch.ticket.priority);
        ++cls.expired;
        cls.queue_wait_ms.push_back(wait);
        --unresolved_;
        drain_cv_.notify_all();
      }
      dispatch.pending->promise.set_value(std::move(response));
      continue;
    }
    // std::function requires a copyable target, so the payload rides a
    // shared_ptr into the pool task.
    std::shared_ptr<Pending> pending(std::move(dispatch.pending));
    QueueTicket ticket = dispatch.ticket;
    watchdog_.Track(ticket.id, pending->cancel);
    pool_.Submit([this, ticket, pending] { RunOne(ticket, pending); });
  }
}

void QueryServer::RunOne(QueueTicket ticket,
                         std::shared_ptr<Pending> pending) {
  // Queue wait is measured when the runner actually picks the query up, so
  // it includes any time spent queued inside the pool itself.
  double wait = NowMs() - ticket.enqueued_ms;
  PriorityClass priority = pending->request.priority;

  QueryResponse response =
      ExecuteRequest(pending->request, pending->degradation_level,
                     pending->answer_sig, pending->cancel);
  response.queue_wait_ms = wait;
  response.priority = priority;

  watchdog_.Untrack(ticket.id);
  std::vector<Dispatch> dispatches;
  {
    std::unique_lock<std::mutex> lock(mu_);
    admission_.OnFinished();
    running_.erase(ticket.id);
    ClassServingStats& cls = stats_.of(priority);
    switch (response.outcome) {
      case ServedOutcome::kCompleted:
        ++cls.completed;
        break;
      case ServedOutcome::kDegraded:
        ++cls.degraded;
        break;
      case ServedOutcome::kDeadlineExpired:
        ++cls.expired;
        break;
      case ServedOutcome::kCancelled:
        ++cls.cancelled;
        break;
      default:
        ++cls.failed;
        break;
    }
    if (response.answer_cache_hit) ++cls.answer_cache_hits;
    ++cls.degradation_levels[std::clamp(pending->degradation_level, 0,
                                        DegradationLadder::kMaxLevel)];
    cls.queue_wait_ms.push_back(wait);
    cls.sim_elapsed_ms.push_back(response.streamed
                                     ? response.streaming.total_latency_ms
                                     : response.execution.elapsed_ms);
    --unresolved_;
    dispatches = CollectDispatchesLocked();
    drain_cv_.notify_all();
  }
  pending->promise.set_value(std::move(response));
  LaunchDispatches(std::move(dispatches));
}

QueryResponse QueryServer::ExecuteRequest(
    const QueryRequest& request, int level,
    const std::optional<Signature>& answer_sig,
    const std::shared_ptr<CancelToken>& cancel) {
  if (!answer_cache_ || !answer_sig.has_value()) {
    return ExecuteUncached(request, level, cancel);
  }

  // Single-flight: re-probe (the answer may have landed while this query
  // waited in the admission queue), then either lead the execution or wait
  // for the identical one already running.
  AnswerCache::Flight flight = answer_cache_->JoinOrLead(*answer_sig);
  if (flight.cached) return ResponseFromCached(*flight.cached, level);
  if (!flight.leader) {
    std::shared_ptr<const CachedAnswer> answer = flight.wait.get();
    if (answer) return ResponseFromCached(*answer, level);
    // The leader's run turned out uncacheable (failed, incomplete,
    // repaired mid-run, or cancelled); execute independently rather than
    // convoying a chain of new flights behind one another. A follower that
    // was itself cancelled while waiting aborts right away inside
    // ExecuteUncached.
    return ExecuteUncached(request, level, cancel);
  }

  // A cancelled leader still reaches CompleteFlight below — with a null
  // payload, because a kCancelled outcome is never cacheable — so its
  // followers are explicitly released, never wedged, and a cancelled
  // partial answer can never poison the cache.
  QueryResponse response = ExecuteUncached(request, level, cancel);
  std::shared_ptr<const CachedAnswer> payload;
  const bool outcome_ok = response.outcome == ServedOutcome::kCompleted ||
                          response.outcome == ServedOutcome::kDegraded;
  if (response.status.ok() && outcome_ok) {
    const bool cacheable =
        response.streamed
            ? (response.streaming.complete && !response.streaming.repair.any())
            : (response.execution.complete && !response.execution.repair.any());
    if (cacheable) {
      auto answer = std::make_shared<CachedAnswer>();
      answer->streamed = response.streamed;
      answer->degradation_level = level;
      if (response.streamed) {
        answer->streaming = response.streaming;
      } else {
        answer->execution = response.execution;
      }
      payload = std::move(answer);
    }
  }
  answer_cache_->CompleteFlight(*answer_sig, std::move(payload));
  return response;
}

QueryResponse QueryServer::ExecuteUncached(
    const QueryRequest& request, int level,
    const std::shared_ptr<CancelToken>& cancel) {
  QueryResponse response;
  response.degradation_level = level;
  response.streamed = request.streaming;

  auto fail = [&response](Status status) -> QueryResponse {
    response.outcome = status.code() == StatusCode::kDeadlineExceeded
                           ? ServedOutcome::kDeadlineExpired
                       : status.code() == StatusCode::kCancelled
                           ? ServedOutcome::kCancelled
                           : ServedOutcome::kFailed;
    response.status = std::move(status);
    return std::move(response);
  };

  // Cancelled while waiting for a runner (or for a single-flight leader):
  // skip parse/optimize/execute outright.
  if (cancel != nullptr && cancel->cancelled()) {
    return fail(cancel->ToStatus());
  }

  // Prepare: either the caller pre-bound the query, or parse + bind here.
  const BoundQuery* bound = request.bound.get();
  BoundQuery local_bound;
  if (bound == nullptr) {
    Result<ParsedQuery> parsed = ParseQuery(request.query_text);
    if (!parsed.ok()) return fail(parsed.status());
    Result<BoundQuery> bound_result = BindQuery(parsed.value(), *registry_);
    if (!bound_result.ok()) return fail(bound_result.status());
    local_bound = std::move(bound_result).value();
    bound = &local_bound;
  }

  // The ladder cuts k / max_calls at admission level >= 2; the optimizer
  // then plans for the cut k, so fetch factors shrink along with it.
  int k = request.k;
  int max_calls = request.max_calls;
  ladder_.ApplyToRequest(level, &k, &max_calls);

  OptimizerOptions optimizer_options = optimizer_options_;
  optimizer_options.k = k;
  optimizer_options.memo = plan_memo_.get();
  Optimizer optimizer(optimizer_options);
  Result<OptimizationResult> optimized = optimizer.Optimize(*bound);
  if (!optimized.ok()) return fail(optimized.status());

  ReliabilityPolicy reliability =
      request.reliability.enabled() ? request.reliability
                                    : options_.reliability;
  RepairOptions repair =
      request.repair.active() ? request.repair : options_.repair;
  repair.registry = registry_.get();
  repair.optimizer = optimizer_options;

  if (request.streaming) {
    StreamingOptions stream;
    stream.k = k;
    stream.input_bindings = request.input_bindings;
    stream.max_calls = max_calls;
    stream.num_threads = options_.num_threads;
    stream.prefetch_depth = options_.prefetch_depth;
    stream.cache = &cache_;
    stream.collect_trace = request.collect_trace;
    stream.reliability = reliability;
    stream.repair = repair;
    stream.degradation_level = level;
    stream.shared_breakers = &breakers_;
    stream.cancel = cancel;
    StreamingEngine engine(std::move(stream));
    Result<StreamingResult> result = engine.Execute(optimized->plan);
    if (!result.ok()) return fail(result.status());
    response.streaming = std::move(result).value();
    response.outcome = (level > 0 || !response.streaming.complete)
                           ? ServedOutcome::kDegraded
                           : ServedOutcome::kCompleted;
  } else {
    ExecutionOptions exec;
    exec.k = k;
    exec.input_bindings = request.input_bindings;
    exec.max_calls = max_calls;
    exec.num_threads = options_.num_threads;
    exec.cache = &cache_;
    exec.collect_trace = request.collect_trace;
    exec.reliability = reliability;
    exec.repair = repair;
    exec.degradation_level = level;
    exec.shared_breakers = &breakers_;
    exec.cancel = cancel;
    ExecutionEngine engine(std::move(exec));
    Result<ExecutionResult> result = engine.Execute(optimized->plan);
    if (!result.ok()) return fail(result.status());
    response.execution = std::move(result).value();
    response.outcome = (level > 0 || !response.execution.complete)
                           ? ServedOutcome::kDegraded
                           : ServedOutcome::kCompleted;
  }
  // A repair event means a replica was swapped mid-run: plans and answers
  // derived from the old replica health may no longer reproduce, so the
  // derived caches roll their generation. The call cache keeps its entries
  // (a recorded backend response is still that response) — salvage across
  // repair rounds depends on them staying warm.
  const RepairStats& rep = response.streamed ? response.streaming.repair
                                             : response.execution.repair;
  if (rep.any() && answer_cache_) {
    answer_cache_->BumpGeneration();
    if (plan_memo_) plan_memo_->BumpGeneration();
  }
  return response;
}

std::optional<AnswerKey> QueryServer::BuildAnswerKeyBase(
    const QueryRequest& request) const {
  // Parse + bind failures are not cached: the normal execution path reports
  // them with its usual diagnostics.
  const BoundQuery* bound = request.bound.get();
  BoundQuery local_bound;
  if (bound == nullptr) {
    Result<ParsedQuery> parsed = ParseQuery(request.query_text);
    if (!parsed.ok()) return std::nullopt;
    Result<BoundQuery> bound_result = BindQuery(parsed.value(), *registry_);
    if (!bound_result.ok()) return std::nullopt;
    local_bound = std::move(bound_result).value();
    bound = &local_bound;
  }
  AnswerKey key;
  key.query = QueryAnswerSignature(*bound);
  key.streaming = request.streaming;
  // Mirror ExecuteUncached's policy defaulting so the fingerprints hash the
  // configuration that will actually run. The ladder's k/max_calls cuts are
  // a pure function of (request.k, level), both already in the key, so the
  // fingerprints can use the server-wide optimizer options as-is.
  const ReliabilityPolicy& reliability = request.reliability.enabled()
                                             ? request.reliability
                                             : options_.reliability;
  RepairOptions repair =
      request.repair.active() ? request.repair : options_.repair;
  repair.optimizer = optimizer_options_;
  key.reliability_fp = ReliabilityFingerprint(reliability);
  key.repair_fp = RepairFingerprint(repair);
  key.optimizer_fp = OptimizerFingerprint(optimizer_options_);
  return key;
}

QueryResponse QueryServer::ResponseFromCached(const CachedAnswer& answer,
                                              int level) const {
  QueryResponse response;
  response.degradation_level = level;
  response.streamed = answer.streamed;
  response.answer_cache_hit = true;
  if (answer.streamed) {
    response.streaming = answer.streaming;
    response.outcome = (level > 0 || !response.streaming.complete)
                           ? ServedOutcome::kDegraded
                           : ServedOutcome::kCompleted;
  } else {
    response.execution = answer.execution;
    response.outcome = (level > 0 || !response.execution.complete)
                           ? ServedOutcome::kDegraded
                           : ServedOutcome::kCompleted;
  }
  return response;
}

void QueryServer::RefreshCacheEpoch() {
  uint64_t gen = registry_->generation();
  uint64_t seen = registry_gen_seen_.load(std::memory_order_acquire);
  while (gen != seen) {
    if (registry_gen_seen_.compare_exchange_weak(seen, gen,
                                                 std::memory_order_acq_rel)) {
      // The catalog moved (a replica, interface, or pattern appeared): the
      // optimizer's candidate sets shifted, so memoized plans and whole
      // answers may differ from what a fresh run would produce now.
      answer_cache_->BumpGeneration();
      if (plan_memo_) plan_memo_->BumpGeneration();
      return;
    }
  }
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return unresolved_ == 0; });
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PressureSignals QueryServer::pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PressureLocked();
}

}  // namespace seco
