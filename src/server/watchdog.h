#ifndef SECO_SERVER_WATCHDOG_H_
#define SECO_SERVER_WATCHDOG_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/cancel.h"

namespace seco {

/// Knobs of the stuck-query watchdog (docs/SERVER.md, "Watchdog").
struct WatchdogOptions {
  /// A running query whose progress heartbeat has not advanced for this
  /// many real milliseconds is force-cancelled. <= 0 disables the watchdog
  /// entirely (the historical behavior: a wedged backend strands its slot
  /// until drain).
  double stall_grace_ms = 0.0;
  /// How often the scanner thread wakes to compare heartbeat snapshots.
  /// Effective reap latency is stall_grace_ms + up to one scan interval.
  double scan_interval_ms = 50.0;
};

/// Cumulative watchdog counters, surfaced in the shell serving report.
struct WatchdogStats {
  int64_t tracked = 0;  ///< queries ever registered with the scanner
  int64_t scans = 0;    ///< scanner passes over the tracked set
  int64_t reaped = 0;   ///< queries force-cancelled for stalling
};

/// Scanner thread that force-cancels queries whose progress heartbeats go
/// quiet. Each running query registers its `CancelToken`; work loops bump
/// the token's heartbeat at chunk/call boundaries. The scanner snapshots
/// the counters every `scan_interval_ms` and cancels any query whose
/// counter has not moved for `stall_grace_ms` — so a black-holed socket, a
/// wedged backend, or a bug strands an admission slot for a bounded time
/// only. Cancellation is cooperative: the reaped query unwinds through the
/// ordinary kCancelled path and resolves with `ServedOutcome::kCancelled`.
class QueryWatchdog {
 public:
  explicit QueryWatchdog(WatchdogOptions options) : options_(options) {}
  ~QueryWatchdog() { Stop(); }

  QueryWatchdog(const QueryWatchdog&) = delete;
  QueryWatchdog& operator=(const QueryWatchdog&) = delete;

  /// Starts the scanner thread. No-op when disabled or already running.
  void Start();

  /// Stops and joins the scanner. Tracked entries are dropped; their
  /// queries keep running (stopping the watchdog never cancels anything).
  void Stop();

  /// Registers a running query. Untrack on completion — a completed
  /// query's token must not be reaped late and pollute a reused id.
  void Track(uint64_t id, std::shared_ptr<CancelToken> token);
  void Untrack(uint64_t id);

  WatchdogStats stats() const;
  bool enabled() const { return options_.stall_grace_ms > 0.0; }

 private:
  struct Entry {
    std::shared_ptr<CancelToken> token;
    uint64_t last_progress = 0;
    /// Steady-clock ms of the last observed progress change (or of Track).
    double last_advance_ms = 0.0;
  };

  void ScanLoop();

  WatchdogOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  std::map<uint64_t, Entry> tracked_;
  WatchdogStats stats_;
  std::thread scanner_;
};

}  // namespace seco

#endif  // SECO_SERVER_WATCHDOG_H_
