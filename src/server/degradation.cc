#include "server/degradation.h"

namespace seco {

double DegradationLadder::Score(const PressureSignals& signals,
                                const DegradationLadderConfig& config) {
  double saturation =
      static_cast<double>(signals.in_flight) /
      static_cast<double>(std::max(signals.max_in_flight, 1));
  double backlog = static_cast<double>(signals.queued) /
                   static_cast<double>(std::max(signals.queue_capacity, 1));
  double load = 0.5 * saturation + 0.5 * backlog;

  double pool = config.pool_weight *
                std::min(1.0, static_cast<double>(signals.pool_queue_depth) /
                                  static_cast<double>(
                                      std::max(signals.runner_threads, 1)));
  double breakers = signals.open_breakers > 0 ? config.breaker_weight : 0.0;
  double cache =
      config.cache_weight *
      std::min(1.0, signals.cache_bytes / std::max(signals.cache_budget, 1.0));

  return std::max({load, pool, breakers, cache});
}

int DegradationLadder::LevelFor(const PressureSignals& signals) const {
  if (!config_.enabled) return 0;
  double score = Score(signals, config_);
  if (score >= config_.level3_threshold) return 3;
  if (score >= config_.level2_threshold) return 2;
  if (score >= config_.level1_threshold) return 1;
  return 0;
}

void DegradationLadder::ApplyToRequest(int level, int* k,
                                       int* max_calls) const {
  if (level < 2) return;
  *k = std::max(config_.min_k,
                static_cast<int>(*k * config_.k_factor));
  *max_calls = std::max(1, static_cast<int>(*max_calls *
                                            config_.call_budget_factor));
}

}  // namespace seco
