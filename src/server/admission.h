#ifndef SECO_SERVER_ADMISSION_H_
#define SECO_SERVER_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "join/clock.h"

namespace seco {

/// Priority class of one query submission. Interactive traffic is drained
/// ahead of batch by the weighted round-robin scheduler, and batch absorbs
/// the shedding first when the server overloads.
enum class PriorityClass {
  kInteractive = 0,
  kBatch = 1,
};

inline constexpr int kNumPriorityClasses = 2;

const char* PriorityClassToString(PriorityClass priority);

/// Per-class admission knobs.
struct AdmissionClassConfig {
  /// Waiting-room size beyond the in-flight window. An arrival finding the
  /// queue full is shed with `Status::kRejected` — the server builds
  /// backlog up to here and not one query further. 0 = shed everything.
  int queue_capacity = 16;
  /// Default queue-time deadline: a query that waited longer than this when
  /// its turn comes is resolved `deadline_expired` without running.
  /// 0 = no deadline. A per-request deadline overrides it.
  double queue_deadline_ms = 0.0;
  /// Weighted round-robin drain weight (clamped to >= 1). The defaults give
  /// interactive four drain tickets for every batch one.
  int weight = 1;
};

struct AdmissionConfig {
  /// Concurrent queries dispatched to the runner pool (the server's
  /// capacity). Arrivals beyond it wait in the class queues.
  int max_in_flight = 4;
  AdmissionClassConfig interactive{/*queue_capacity=*/16,
                                   /*queue_deadline_ms=*/0.0, /*weight=*/4};
  AdmissionClassConfig batch{/*queue_capacity=*/32,
                             /*queue_deadline_ms=*/0.0, /*weight=*/1};

  const AdmissionClassConfig& of(PriorityClass priority) const {
    return priority == PriorityClass::kInteractive ? interactive : batch;
  }
};

/// One queued admission. `id` keys the caller's payload; times ride a
/// caller-supplied millisecond clock so tests can drive a virtual one.
struct QueueTicket {
  uint64_t id = 0;
  PriorityClass priority = PriorityClass::kInteractive;
  double enqueued_ms = 0.0;
  /// Effective queue deadline (request override or class default; 0 = none).
  double deadline_ms = 0.0;
  /// Set by `NextToDispatch`: the ticket overran its queue deadline and must
  /// be resolved `deadline_expired` without running (no in-flight slot was
  /// claimed for it).
  bool expired = false;
};

/// Token/concurrency admission control with bounded priority queues and
/// weighted round-robin draining — the policy half of the `QueryServer`
/// (docs/SERVER.md). NOT thread-safe: the server calls it under its own
/// mutex; keeping it lock-free makes the decision sequence a deterministic
/// function of the arrival/completion order.
///
/// The drain order across classes reuses the chapter's §4.3.2 `Clock` (the
/// smooth weighted round-robin that paces service calls inside a join):
/// with weights 4:1, out of every 5 consecutive dispatches interactive gets
/// 4 and batch 1, interleaved as evenly as possible — batch cannot starve
/// interactive, and interactive cannot completely starve batch either.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  const AdmissionConfig& config() const { return config_; }

  /// Admission decision for one arrival at `now_ms`. Returns the queued
  /// ticket id, or nullopt when the class queue is full (shed — the caller
  /// rejects with `Status::kRejected` and a retry-after hint).
  std::optional<uint64_t> Offer(PriorityClass priority, double now_ms,
                                double request_deadline_ms = 0.0);

  /// Pops the next ticket in weighted round-robin order. Returns nullopt
  /// when the in-flight window is full or every queue is empty. A returned
  /// ticket either claimed an in-flight slot (`expired == false` — run it,
  /// then call `OnFinished`) or overran its queue deadline (`expired ==
  /// true` — resolve it without running; no slot was claimed).
  std::optional<QueueTicket> NextToDispatch(double now_ms);

  /// Releases the in-flight slot of a dispatched (non-expired) ticket.
  void OnFinished();

  /// Purges a still-queued ticket (cancellation before dispatch). Returns
  /// true if the ticket was found and removed. A queued ticket holds no
  /// in-flight slot, so no `OnFinished` follows a successful Remove.
  bool Remove(uint64_t id);

  // Gauges (inputs of the pressure score and the stats ledger).
  int in_flight() const { return in_flight_; }
  int queued(PriorityClass priority) const {
    return static_cast<int>(queues_[static_cast<int>(priority)].size());
  }
  int queued_total() const {
    return queued(PriorityClass::kInteractive) + queued(PriorityClass::kBatch);
  }
  int queue_capacity_total() const {
    return config_.interactive.queue_capacity + config_.batch.queue_capacity;
  }

 private:
  AdmissionConfig config_;
  std::deque<QueueTicket> queues_[kNumPriorityClasses];
  Clock wrr_;  // weighted round-robin drain order across classes
  int in_flight_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace seco

#endif  // SECO_SERVER_ADMISSION_H_
