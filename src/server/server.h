#ifndef SECO_SERVER_SERVER_H_
#define SECO_SERVER_SERVER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/plan_memo.h"
#include "cache/signature.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/call_cache.h"
#include "exec/engine.h"
#include "exec/streaming.h"
#include "optimizer/optimizer.h"
#include "query/bound_query.h"
#include "reliability/circuit_breaker.h"
#include "server/admission.h"
#include "server/degradation.h"
#include "server/watchdog.h"
#include "service/registry.h"

namespace seco {

/// One query submission to a `QueryServer`.
struct QueryRequest {
  /// SeCoQL text; parsed and bound per execution. Ignored when `bound` is
  /// set (a pre-prepared query skips parse + bind on the serving path).
  std::string query_text;
  std::shared_ptr<const BoundQuery> bound;

  PriorityClass priority = PriorityClass::kInteractive;
  /// Queue-time deadline: if the query is still waiting in the admission
  /// queue after this many ms, it resolves `kDeadlineExpired` without
  /// running. 0 = the class default (`AdmissionClassConfig`).
  double deadline_ms = 0.0;

  /// Requested answer count and charged-call budget. The degradation ladder
  /// may cut both at admission (level >= 2); the response records the level.
  int k = 10;
  int max_calls = 10000;
  std::map<std::string, Value> input_bindings;

  /// false = materializing `ExecutionEngine`; true = `StreamingEngine`.
  bool streaming = false;

  /// Per-request reliability / repair overrides. When the policy is inert
  /// (`!enabled()`) the server's defaults apply; when the repair policy is
  /// `kOff` the server's default repair applies. The registry/optimizer
  /// fields of a request repair policy are filled in by the server.
  ReliabilityPolicy reliability;
  RepairOptions repair;

  /// Trace collection for this query (rides into the engine options).
  bool collect_trace = false;
};

/// Terminal outcome of one served query — every submission gets exactly one.
enum class ServedOutcome {
  /// Ran at level 0 and produced a complete answer.
  kCompleted = 0,
  /// Ran under a degradation level > 0, or produced a partial answer.
  kDegraded = 1,
  /// Shed at admission (`Status::kRejected`): the class queue was full. The
  /// query consumed no execution resources at all.
  kShed = 2,
  /// Overran its queue-time deadline before a runner slot freed up, or the
  /// execution itself overran the reliability policy's query deadline.
  kDeadlineExpired = 3,
  /// The execution itself failed (parse/bind/optimize error, exhausted call
  /// budget without `degrade`, ...).
  kFailed = 4,
  /// The caller (or the stuck-query watchdog) cancelled the query —
  /// purged from the admission queue, or signalled mid-run and unwound
  /// through the kCancelled path. Never retried, never degraded, never
  /// cached.
  kCancelled = 5,
};

const char* ServedOutcomeToString(ServedOutcome outcome);

/// Everything the server says about one submission.
struct QueryResponse {
  ServedOutcome outcome = ServedOutcome::kFailed;
  /// Ladder level the query was admitted under (0 = full quality).
  int degradation_level = 0;
  /// OK for kCompleted/kDegraded; kRejected for kShed (with a retry-after
  /// hint in the message); kDeadlineExceeded for kDeadlineExpired; the
  /// execution error for kFailed.
  Status status = Status::OK();
  /// For kShed: how long the client should wait before resubmitting, ms.
  double retry_after_ms = 0.0;
  /// Wall-clock ms spent in the admission queue (0 for shed queries).
  double queue_wait_ms = 0.0;
  PriorityClass priority = PriorityClass::kInteractive;

  /// True when this answer came out of the whole-answer cache (or from a
  /// concurrent identical execution via single-flight) instead of a fresh
  /// execution. Cached answers are byte-identical to fresh ones.
  bool answer_cache_hit = false;

  /// Engine results; exactly one is populated for kCompleted/kDegraded,
  /// per `streamed`.
  bool streamed = false;
  ExecutionResult execution;
  StreamingResult streaming;
};

/// Server construction knobs.
struct ServerOptions {
  /// Admission window + per-class queues (docs/SERVER.md).
  AdmissionConfig admission;
  /// Runner threads executing admitted queries. 0 = `admission.max_in_flight`
  /// (so `ThreadPool::queue_depth()` > 0 is a genuine backpressure signal).
  int runner_threads = 0;
  /// Degradation ladder thresholds/weights; `ladder.enabled = false` yields
  /// bit-identical answers to standalone runs at any load.
  DegradationLadderConfig ladder;

  /// Server-wide default reliability / repair policy for requests that do
  /// not carry their own.
  ReliabilityPolicy reliability;
  RepairOptions repair;

  /// Engine parallelism applied to every query: intra-query fan-out threads
  /// and streaming prefetch depth (the ladder zeroes the latter at level
  /// >= 1).
  int num_threads = 1;
  int prefetch_depth = 0;

  /// Byte budget of the server-owned shared `ServiceCallCache`.
  size_t cache_byte_budget = ServiceCallCache::kDefaultByteBudget;

  /// Whole-answer reuse + optimizer plan memoization (docs/CACHING.md).
  /// Off by default: the serving path is then bit-identical to the pre-cache
  /// server. When on, a warm hit resolves at Submit without consuming an
  /// admission window slot, and N concurrent identical cold queries execute
  /// once (single-flight).
  bool answer_cache = false;
  /// Byte budget of the whole-answer memo table.
  size_t answer_cache_bytes = 8 << 20;
  /// Byte budget of the optimizer plan/bound/feasibility memo; 0 disables
  /// the plan memo while keeping the answer cache.
  size_t plan_memo_bytes = 4 << 20;

  /// Base retry-after hint attached to shed responses; scaled by the
  /// instantaneous backlog fraction.
  double retry_after_ms = 50.0;

  /// Stuck-query watchdog (docs/SERVER.md, "Watchdog"): running queries
  /// whose progress heartbeat stalls past `watchdog.stall_grace_ms` are
  /// force-cancelled. Disabled by default.
  WatchdogOptions watchdog;
};

/// Per-class serving ledger.
struct ClassServingStats {
  int64_t submitted = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t completed = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  /// Cancelled by the client (queued purge or mid-run signal) or reaped by
  /// the watchdog.
  int64_t cancelled = 0;
  /// Of the completed/degraded, how many were served from the answer cache
  /// (warm probe at Submit, or a single-flight follower).
  int64_t answer_cache_hits = 0;
  /// Admissions per ladder level 0..3 (shed/expired queries excluded).
  std::array<int64_t, DegradationLadder::kMaxLevel + 1> degradation_levels{};
  int peak_queue_depth = 0;
  /// Per-query samples for percentile reporting.
  std::vector<double> queue_wait_ms;
  std::vector<double> sim_elapsed_ms;

  int64_t finished() const {
    return shed + expired + completed + degraded + failed + cancelled;
  }
};

struct ServerStats {
  ClassServingStats interactive;
  ClassServingStats batch;
  int peak_in_flight = 0;

  const ClassServingStats& of(PriorityClass priority) const {
    return priority == PriorityClass::kInteractive ? interactive : batch;
  }
  ClassServingStats& of(PriorityClass priority) {
    return priority == PriorityClass::kInteractive ? interactive : batch;
  }
};

/// p in [0, 100] percentile of `samples` (nearest-rank); 0 when empty.
double Percentile(std::vector<double> samples, double p);

/// Overload-safe serving front end over the execution stack (docs/SERVER.md):
/// concurrent query submissions run on a shared runner `ThreadPool`, a
/// shared `ServiceCallCache`, and a shared cross-query
/// `CircuitBreakerRegistry`, guarded by three mechanisms —
///
///  1. *admission control*: a bounded in-flight window plus bounded
///     per-class priority queues; arrivals beyond them are shed immediately
///     with `Status::kRejected` and a retry-after hint, touching no
///     execution state;
///  2. *graceful degradation*: a pressure score over the shared facilities
///     maps each admission onto a ladder level that progressively drops
///     speculation, cuts k and call budgets, and finally prefers partial
///     answers over failures — newly admitted queries degrade, running ones
///     are never touched;
///  3. *fair scheduling*: queues drain in smooth weighted round-robin order
///     (the §4.3.2 `Clock`, reused across priority classes), so interactive
///     traffic stays fast under batch floods without starving batch.
///
/// Every submission resolves to exactly one `QueryResponse` future with an
/// explicit `ServedOutcome`. With the ladder disabled and load below
/// capacity, per-query answers are bit-identical to standalone engine runs.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<ServiceRegistry> registry,
              ServerOptions options = {},
              OptimizerOptions optimizer_options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Submits one query. Always returns a future that will hold exactly one
  /// terminal `QueryResponse`; a shed query's future is ready immediately.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// A submission plus its cancellation handle.
  struct SubmittedQuery {
    /// Pass to `Cancel()`. 0 when the future resolved at submission time
    /// (shed, draining, warm cache hit) — there is nothing left to cancel.
    uint64_t id = 0;
    std::future<QueryResponse> future;
  };

  /// Like `Submit`, but also returns the query's server-side id so the
  /// caller (shell, wire front end) can cancel it later.
  SubmittedQuery SubmitWithId(QueryRequest request);

  /// Cancels one accepted query. A still-queued query is purged from the
  /// admission queue (it never claimed a window slot) and resolves
  /// immediately with `ServedOutcome::kCancelled`; a running one has its
  /// token fired and unwinds cooperatively to the same outcome. Returns
  /// false when the id is unknown or already resolved. Safe to race with
  /// completion: the query still resolves to exactly one outcome.
  bool Cancel(uint64_t id, std::string reason = "cancelled by client");

  /// Blocks until every accepted query has resolved.
  void Drain();

  /// Begins graceful shutdown: every *subsequent* Submit is shed
  /// immediately with a "server draining" rejection (counted in the shed
  /// ledger, with the usual retry-after hint), while already-accepted
  /// queries run to completion. Follow with `Drain()` to wait them out.
  /// Irreversible for the server's lifetime; used by the network front
  /// end's SIGINT/SIGTERM path (docs/NETWORK.md).
  void BeginDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Snapshot of the serving ledger.
  ServerStats stats() const;
  /// Snapshot of the stuck-query watchdog counters.
  WatchdogStats watchdog_stats() const { return watchdog_.stats(); }
  /// Snapshot of the current pressure signals (as the next admission would
  /// see them) — surfaced by the shell's serving report.
  PressureSignals pressure() const;

  ServiceCallCache& cache() { return cache_; }
  CircuitBreakerRegistry& breakers() { return breakers_; }
  const ServerOptions& options() const { return options_; }

  /// The whole-answer cache / plan memo; null when `options.answer_cache`
  /// is off.
  const AnswerCache* answer_cache() const { return answer_cache_.get(); }
  const PlanMemo* plan_memo() const { return plan_memo_.get(); }

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    int degradation_level = 0;
    /// Answer-cache signature computed at Submit (absent when caching is
    /// off, the request is untraceable/uncacheable, or parse/bind failed).
    std::optional<Signature> answer_sig;
    /// Per-query cancellation token, created at acceptance and threaded
    /// into the engines at dispatch.
    std::shared_ptr<CancelToken> cancel;
    /// Arrival clock (server epoch ms) — the queue-wait base when the
    /// query is purged by Cancel before dispatch.
    double enqueued_ms = 0.0;
  };
  /// A ticket popped for dispatch, joined with its payload.
  struct Dispatch {
    QueueTicket ticket;
    std::unique_ptr<Pending> pending;
  };

  double NowMs() const;
  PressureSignals PressureLocked() const;
  /// Pops every dispatchable ticket. Runnable ones are handed to the pool
  /// and expired ones resolved — both *after* `mu_` is released (the pool's
  /// post-shutdown inline path and promise continuations must not run under
  /// the server mutex).
  std::vector<Dispatch> CollectDispatchesLocked();
  void LaunchDispatches(std::vector<Dispatch> dispatches);
  /// Runner-pool entry: executes one admitted query end to end.
  void RunOne(QueueTicket ticket, std::shared_ptr<Pending> pending);
  /// The execution itself (no server lock held): answer-cache probe +
  /// single-flight around ExecuteUncached when `answer_sig` is set.
  QueryResponse ExecuteRequest(const QueryRequest& request, int level,
                               const std::optional<Signature>& answer_sig,
                               const std::shared_ptr<CancelToken>& cancel);
  /// One fresh end-to-end execution (parse/bind, optimize, run).
  QueryResponse ExecuteUncached(const QueryRequest& request, int level,
                                const std::shared_ptr<CancelToken>& cancel);
  /// Builds the level-independent part of the request's answer key
  /// (canonical query signature + policy fingerprints); nullopt when the
  /// request cannot be cached (trace collection, parse/bind failure).
  std::optional<AnswerKey> BuildAnswerKeyBase(const QueryRequest& request) const;
  /// Materializes a response from a cached answer.
  QueryResponse ResponseFromCached(const CachedAnswer& answer, int level) const;
  /// Invalidates the answer cache + plan memo when the registry's catalog
  /// generation moved since the last check (e.g. a replica was registered).
  void RefreshCacheEpoch();

  std::shared_ptr<ServiceRegistry> registry_;
  ServerOptions options_;
  OptimizerOptions optimizer_options_;

  /// Null unless `options_.answer_cache`.
  std::unique_ptr<AnswerCache> answer_cache_;
  std::unique_ptr<PlanMemo> plan_memo_;
  /// Registry catalog generation the caches were last validated against.
  std::atomic<uint64_t> registry_gen_seen_{0};

  ServiceCallCache cache_;
  CircuitBreakerRegistry breakers_;
  DegradationLadder ladder_;
  ThreadPool pool_;
  QueryWatchdog watchdog_;

  std::atomic<bool> draining_{false};

  mutable std::mutex mu_;
  AdmissionController admission_;
  std::unordered_map<uint64_t, std::unique_ptr<Pending>> waiting_;
  /// Tokens of dispatched queries, keyed by ticket id. An id lives in
  /// exactly one of `waiting_` / `running_` at any instant (both under
  /// `mu_`), which is what makes Cancel's purge-vs-signal decision — and
  /// exactly-one-outcome — race-free.
  std::unordered_map<uint64_t, std::shared_ptr<CancelToken>> running_;
  ServerStats stats_;
  int64_t unresolved_ = 0;  ///< accepted-but-unresolved queries
  std::condition_variable drain_cv_;

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace seco

#endif  // SECO_SERVER_SERVER_H_
