#ifndef SECO_SERVICE_SERVICE_MART_H_
#define SECO_SERVICE_SERVICE_MART_H_

#include <memory>
#include <string>
#include <vector>

#include "service/schema.h"
#include "service/value.h"

namespace seco {

/// A service mart: the conceptual description of a class of services over
/// one real-world object type (Chapter 9 recap). A mart owns a schema and
/// names the service interfaces that implement it.
class ServiceMart {
 public:
  ServiceMart(std::string name, std::shared_ptr<const ServiceSchema> schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const ServiceSchema& schema() const { return *schema_; }
  std::shared_ptr<const ServiceSchema> schema_ptr() const { return schema_; }

  void AddInterface(std::string interface_name) {
    interface_names_.push_back(std::move(interface_name));
  }
  const std::vector<std::string>& interface_names() const {
    return interface_names_;
  }

 private:
  std::string name_;
  std::shared_ptr<const ServiceSchema> schema_;
  std::vector<std::string> interface_names_;
};

/// One comparison inside a connection pattern: `source.<from> op target.<to>`.
struct ConnectionClause {
  std::string from_attribute;  // dotted name in the source mart's schema
  Comparator op = Comparator::kEq;
  std::string to_attribute;    // dotted name in the target mart's schema
};

/// A connection pattern (§3.1): a named, pre-declared join semantics between
/// two service marts, e.g. Shows(Movie, Theatre) joining on Title. Queries
/// mention patterns by name instead of spelling out join predicates.
class ConnectionPattern {
 public:
  ConnectionPattern(std::string name, std::string source_mart,
                    std::string target_mart, std::vector<ConnectionClause> clauses)
      : name_(std::move(name)),
        source_mart_(std::move(source_mart)),
        target_mart_(std::move(target_mart)),
        clauses_(std::move(clauses)) {}

  const std::string& name() const { return name_; }
  const std::string& source_mart() const { return source_mart_; }
  const std::string& target_mart() const { return target_mart_; }
  const std::vector<ConnectionClause>& clauses() const { return clauses_; }

  /// Estimated probability that a random (source, target) pair satisfies the
  /// pattern; registered alongside the pattern and used for cardinality
  /// estimation (the chapter's 2% for Shows, 40% for DinnerPlace).
  double selectivity() const { return selectivity_; }
  void set_selectivity(double s) { selectivity_ = s; }

 private:
  std::string name_;
  std::string source_mart_;
  std::string target_mart_;
  std::vector<ConnectionClause> clauses_;
  double selectivity_ = 0.1;
};

}  // namespace seco

#endif  // SECO_SERVICE_SERVICE_MART_H_
