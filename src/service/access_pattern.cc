#include "service/access_pattern.h"

namespace seco {

const char* AdornmentToString(Adornment a) {
  switch (a) {
    case Adornment::kInput:
      return "I";
    case Adornment::kOutput:
      return "O";
    case Adornment::kRanked:
      return "R";
  }
  return "?";
}

Result<AccessPattern> AccessPattern::Create(
    const ServiceSchema& schema,
    const std::vector<std::pair<std::string, Adornment>>& adornments) {
  AccessPattern pattern;
  // Count how many leaf paths the schema has to verify full coverage.
  int expected = 0;
  for (const AttributeDef& attr : schema.attributes()) {
    expected += attr.is_repeating_group
                    ? static_cast<int>(attr.sub_attributes.size())
                    : 1;
  }
  for (const auto& [name, adornment] : adornments) {
    SECO_ASSIGN_OR_RETURN(AttrPath path, schema.Resolve(name));
    for (const Entry& e : pattern.entries_) {
      if (e.path == path) {
        return Status::InvalidArgument("duplicate adornment for '" + name + "'");
      }
    }
    pattern.entries_.push_back(Entry{path, adornment});
    switch (adornment) {
      case Adornment::kInput:
        pattern.input_paths_.push_back(path);
        break;
      case Adornment::kOutput:
        pattern.output_paths_.push_back(path);
        break;
      case Adornment::kRanked:
        pattern.output_paths_.push_back(path);
        pattern.ranked_paths_.push_back(path);
        break;
    }
  }
  if (static_cast<int>(pattern.entries_.size()) != expected) {
    return Status::InvalidArgument(
        "access pattern for service '" + schema.name() + "' covers " +
        std::to_string(pattern.entries_.size()) + " of " +
        std::to_string(expected) + " leaf attributes");
  }
  return pattern;
}

Adornment AccessPattern::At(const AttrPath& path) const {
  for (const Entry& e : entries_) {
    if (e.path == path) return e.adornment;
  }
  return Adornment::kOutput;
}

}  // namespace seco
