#ifndef SECO_SERVICE_REGISTRY_H_
#define SECO_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/service_interface.h"
#include "service/service_mart.h"

namespace seco {

/// The catalog of marts, service interfaces, and connection patterns that
/// queries are formulated against. Owns all registered objects.
class ServiceRegistry {
 public:
  ServiceRegistry() = default;
  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  Status RegisterMart(std::shared_ptr<ServiceMart> mart);
  Status RegisterInterface(std::shared_ptr<ServiceInterface> iface,
                           const std::string& mart_name = "");
  Status RegisterConnectionPattern(std::shared_ptr<ConnectionPattern> pattern);

  Result<std::shared_ptr<ServiceMart>> FindMart(const std::string& name) const;
  Result<std::shared_ptr<ServiceInterface>> FindInterface(
      const std::string& name) const;
  Result<std::shared_ptr<ConnectionPattern>> FindConnectionPattern(
      const std::string& name) const;

  /// The mart an interface was registered under, or empty string.
  std::string MartOfInterface(const std::string& interface_name) const;

  /// All interfaces registered under `mart_name`, in registration order.
  std::vector<std::shared_ptr<ServiceInterface>> InterfacesOfMart(
      const std::string& mart_name) const;

  /// Replica candidates for `interface_name`: the *other* interfaces of the
  /// same mart whose schema carries the same logical signature (attribute
  /// names, types, and repeating-group structure, in order). Replicas may
  /// differ in access pattern, chunk size, costs, and fault profile — the
  /// plan repairer re-optimizes around those differences. Registration
  /// order; empty when the interface is unknown, has no mart, or has no
  /// compatible sibling.
  std::vector<std::shared_ptr<ServiceInterface>> AlternativesFor(
      const std::string& interface_name) const;

  std::vector<std::string> mart_names() const;
  std::vector<std::string> interface_names() const;
  std::vector<std::string> pattern_names() const;

  /// Monotonic catalog epoch: bumped by every successful registration.
  /// Caching layers compare it against the epoch they captured at publish
  /// time and invalidate when it moved (e.g. a replica appeared, so plans
  /// and answers derived from the old candidate sets may be stale).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::atomic<uint64_t> generation_{1};
  std::map<std::string, std::shared_ptr<ServiceMart>> marts_;
  std::map<std::string, std::shared_ptr<ServiceInterface>> interfaces_;
  std::map<std::string, std::shared_ptr<ConnectionPattern>> patterns_;
  std::map<std::string, std::string> interface_to_mart_;
};

}  // namespace seco

#endif  // SECO_SERVICE_REGISTRY_H_
