#ifndef SECO_SERVICE_SCHEMA_H_
#define SECO_SERVICE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "service/value.h"

namespace seco {

/// An atomic sub-attribute inside a repeating group.
struct SubAttributeDef {
  std::string name;
  ValueType type = ValueType::kString;
};

/// A service attribute: either a single-valued atomic attribute or a
/// multi-valued repeating group of atomic sub-attributes (§3.1).
struct AttributeDef {
  /// Declares an atomic attribute.
  static AttributeDef Atomic(std::string name, ValueType type) {
    AttributeDef def;
    def.name = std::move(name);
    def.type = type;
    return def;
  }

  /// Declares a repeating group with the given sub-attributes.
  static AttributeDef RepeatingGroup(std::string name,
                                     std::vector<SubAttributeDef> subs) {
    AttributeDef def;
    def.name = std::move(name);
    def.is_repeating_group = true;
    def.sub_attributes = std::move(subs);
    return def;
  }

  std::string name;
  ValueType type = ValueType::kString;  // atomic attributes only
  bool is_repeating_group = false;
  std::vector<SubAttributeDef> sub_attributes;  // repeating groups only
};

/// Addresses an atomic attribute (`sub_index < 0`) or a sub-attribute of a
/// repeating group (`sub_index >= 0`) within one service schema.
struct AttrPath {
  int attr_index = -1;
  int sub_index = -1;

  bool is_sub_attribute() const { return sub_index >= 0; }
  bool operator==(const AttrPath&) const = default;
};

/// The flat description of a service's output structure: an ordered list of
/// attributes, some of which may be repeating groups.
class ServiceSchema {
 public:
  ServiceSchema() = default;
  ServiceSchema(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const AttributeDef& attribute(int i) const { return attributes_[i]; }

  /// Resolves "Attr" or "Group.Sub" (case-sensitive) into a path.
  Result<AttrPath> Resolve(const std::string& dotted_name) const;

  /// The declared value type at `path`.
  ValueType TypeAt(const AttrPath& path) const;

  /// Renders `path` back to "Attr" or "Group.Sub" form.
  std::string PathToString(const AttrPath& path) const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

}  // namespace seco

#endif  // SECO_SERVICE_SCHEMA_H_
