#ifndef SECO_SERVICE_SERVICE_INTERFACE_H_
#define SECO_SERVICE_SERVICE_INTERFACE_H_

#include <memory>
#include <string>

#include "service/access_pattern.h"
#include "service/invocation.h"
#include "service/schema.h"

namespace seco {

/// Classification of services (§3.2): exact services behave relationally and
/// return unranked answers; search services return ranked, chunked lists.
enum class ServiceKind {
  kExact,
  kSearch,
};

const char* ServiceKindToString(ServiceKind kind);

/// How a search service's scores decay down the ranked list (§4.1):
/// step functions drop sharply after `step_h` chunks; progressive functions
/// decay smoothly (linear / quadratic-ish).
enum class ScoreDecay {
  kNone,         // unranked (exact services)
  kStep,         // high plateau for the first h chunks, then a deep step
  kLinear,       // progressive, linear decay
  kQuadratic,    // progressive, convex decay (fast early drop)
  kOpaque,       // ranked, but the scoring function is unknown to SeCo
};

const char* ScoreDecayToString(ScoreDecay decay);

/// Statistics and cost parameters the optimizer uses for a service interface
/// (§3.2, §5.1). All figures are averages under the chapter's independence
/// and uniform-distribution assumptions.
struct ServiceStats {
  /// Exact services: expected output tuples per invocation (the "average
  /// cardinality"); a service is *selective* when this is < 1 and
  /// *proliferative* when > 1. Ignored for search services.
  double avg_tuples_per_call = 1.0;

  /// Chunked services: tuples per chunk (n_X in §4.1). Exact services may
  /// also be chunked; search services always are.
  int chunk_size = 10;
  bool chunked = false;

  /// Expected total result-list depth per input binding for chunked
  /// services (how many tuples exist before the service is exhausted).
  /// Caps the yield of additional fetches in cardinality estimation;
  /// 0 = unknown/unbounded.
  double avg_matches_per_binding = 0.0;

  /// Expected request-response latency, milliseconds.
  double latency_ms = 100.0;

  /// Monetary / abstract per-call charge used by the sum cost metric.
  double cost_per_call = 1.0;

  /// Score model for search services.
  ScoreDecay decay = ScoreDecay::kNone;
  /// For kStep: number of chunks before the step (the parameter h).
  int step_h = 1;
  /// Score value of the plateau top and of the post-step tail.
  double step_high = 0.95;
  double step_low = 0.05;
};

/// A concrete invocable signature of a service mart: schema + access pattern
/// (adornments) + behavioural statistics + a call handler bound to the data
/// source. Query atoms reference service interfaces by name.
class ServiceInterface {
 public:
  ServiceInterface(std::string name, std::shared_ptr<const ServiceSchema> schema,
                   AccessPattern pattern, ServiceKind kind, ServiceStats stats,
                   std::shared_ptr<ServiceCallHandler> handler)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        pattern_(std::move(pattern)),
        kind_(kind),
        stats_(stats),
        handler_(std::move(handler)) {
    if (kind_ == ServiceKind::kSearch) stats_.chunked = true;
  }

  const std::string& name() const { return name_; }
  const ServiceSchema& schema() const { return *schema_; }
  std::shared_ptr<const ServiceSchema> schema_ptr() const { return schema_; }
  const AccessPattern& pattern() const { return pattern_; }
  ServiceKind kind() const { return kind_; }
  const ServiceStats& stats() const { return stats_; }

  bool is_search() const { return kind_ == ServiceKind::kSearch; }
  bool is_chunked() const { return stats_.chunked; }
  bool is_ranked() const { return stats_.decay != ScoreDecay::kNone; }

  /// Selective / proliferative classification of exact services (§3.2).
  bool is_selective() const {
    return kind_ == ServiceKind::kExact && stats_.avg_tuples_per_call < 1.0;
  }
  bool is_proliferative() const { return !is_selective(); }

  /// Expected score of the first tuple of chunk `chunk_index` under the
  /// declared decay model, given `total_chunks` available. Used by cost
  /// estimation and by the merge-scan ratio selection.
  double ExpectedChunkScore(int chunk_index, int total_chunks = 20) const;

  ServiceCallHandler* handler() const { return handler_.get(); }
  /// Shared ownership of the handler, for decorators (reliability layer)
  /// that must outlive individual calls.
  std::shared_ptr<ServiceCallHandler> handler_ptr() const { return handler_; }

 private:
  std::string name_;
  std::shared_ptr<const ServiceSchema> schema_;
  AccessPattern pattern_;
  ServiceKind kind_;
  ServiceStats stats_;
  std::shared_ptr<ServiceCallHandler> handler_;
};

}  // namespace seco

#endif  // SECO_SERVICE_SERVICE_INTERFACE_H_
