#ifndef SECO_SERVICE_ACCESS_PATTERN_H_
#define SECO_SERVICE_ACCESS_PATTERN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "service/schema.h"

namespace seco {

/// Adornment of a (sub-)attribute in a service interface signature (§3.1,
/// §5.6): Input fields must be bound before invocation, Output fields are
/// produced, Ranked fields are outputs that carry the service's relevance
/// score (denoted with superscript R in the chapter).
enum class Adornment {
  kInput,   // I
  kOutput,  // O
  kRanked,  // R (an output that determines ranking)
};

const char* AdornmentToString(Adornment a);

/// The binding pattern of a service interface: one adornment per
/// (sub-)attribute path of the schema. Determines which query formulations
/// are feasible (a service is only invocable once all I fields are bound).
class AccessPattern {
 public:
  AccessPattern() = default;

  /// Builds a pattern over `schema` from dotted-name/adornment pairs.
  /// Every atomic attribute and every sub-attribute of every repeating group
  /// must be mentioned exactly once.
  static Result<AccessPattern> Create(
      const ServiceSchema& schema,
      const std::vector<std::pair<std::string, Adornment>>& adornments);

  /// Adornment at a resolved path.
  Adornment At(const AttrPath& path) const;

  /// All paths adorned kInput, in declaration order. Service requests carry
  /// input values aligned with this order.
  const std::vector<AttrPath>& input_paths() const { return input_paths_; }

  /// All paths adorned kOutput or kRanked.
  const std::vector<AttrPath>& output_paths() const { return output_paths_; }

  /// Paths adorned kRanked (usually zero or one).
  const std::vector<AttrPath>& ranked_paths() const { return ranked_paths_; }

  int num_inputs() const { return static_cast<int>(input_paths_.size()); }

 private:
  struct Entry {
    AttrPath path;
    Adornment adornment;
  };
  std::vector<Entry> entries_;
  std::vector<AttrPath> input_paths_;
  std::vector<AttrPath> output_paths_;
  std::vector<AttrPath> ranked_paths_;
};

}  // namespace seco

#endif  // SECO_SERVICE_ACCESS_PATTERN_H_
