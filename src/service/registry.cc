#include "service/registry.h"

namespace seco {

Status ServiceRegistry::RegisterMart(std::shared_ptr<ServiceMart> mart) {
  const std::string& name = mart->name();
  if (marts_.count(name) > 0) {
    return Status::AlreadyExists("mart '" + name + "' already registered");
  }
  marts_[name] = std::move(mart);
  BumpGeneration();
  return Status::OK();
}

Status ServiceRegistry::RegisterInterface(std::shared_ptr<ServiceInterface> iface,
                                          const std::string& mart_name) {
  const std::string& name = iface->name();
  if (interfaces_.count(name) > 0) {
    return Status::AlreadyExists("interface '" + name + "' already registered");
  }
  if (!mart_name.empty()) {
    auto it = marts_.find(mart_name);
    if (it == marts_.end()) {
      return Status::NotFound("mart '" + mart_name + "' not registered");
    }
    it->second->AddInterface(name);
    interface_to_mart_[name] = mart_name;
  }
  interfaces_[name] = std::move(iface);
  BumpGeneration();
  return Status::OK();
}

Status ServiceRegistry::RegisterConnectionPattern(
    std::shared_ptr<ConnectionPattern> pattern) {
  const std::string& name = pattern->name();
  if (patterns_.count(name) > 0) {
    return Status::AlreadyExists("connection pattern '" + name +
                                 "' already registered");
  }
  patterns_[name] = std::move(pattern);
  BumpGeneration();
  return Status::OK();
}

Result<std::shared_ptr<ServiceMart>> ServiceRegistry::FindMart(
    const std::string& name) const {
  auto it = marts_.find(name);
  if (it == marts_.end()) return Status::NotFound("mart '" + name + "'");
  return it->second;
}

Result<std::shared_ptr<ServiceInterface>> ServiceRegistry::FindInterface(
    const std::string& name) const {
  auto it = interfaces_.find(name);
  if (it == interfaces_.end()) return Status::NotFound("interface '" + name + "'");
  return it->second;
}

Result<std::shared_ptr<ConnectionPattern>> ServiceRegistry::FindConnectionPattern(
    const std::string& name) const {
  auto it = patterns_.find(name);
  if (it == patterns_.end()) {
    return Status::NotFound("connection pattern '" + name + "'");
  }
  return it->second;
}

std::string ServiceRegistry::MartOfInterface(
    const std::string& interface_name) const {
  auto it = interface_to_mart_.find(interface_name);
  return it == interface_to_mart_.end() ? "" : it->second;
}

std::vector<std::shared_ptr<ServiceInterface>> ServiceRegistry::InterfacesOfMart(
    const std::string& mart_name) const {
  std::vector<std::shared_ptr<ServiceInterface>> out;
  auto it = marts_.find(mart_name);
  if (it == marts_.end()) return out;
  for (const std::string& iface_name : it->second->interface_names()) {
    auto jt = interfaces_.find(iface_name);
    if (jt != interfaces_.end()) out.push_back(jt->second);
  }
  return out;
}

namespace {

/// Same logical signature: identical attribute names, types, and
/// repeating-group structure, in declaration order.
bool SameSignature(const ServiceSchema& a, const ServiceSchema& b) {
  if (a.num_attributes() != b.num_attributes()) return false;
  for (int i = 0; i < a.num_attributes(); ++i) {
    const AttributeDef& x = a.attribute(i);
    const AttributeDef& y = b.attribute(i);
    if (x.name != y.name || x.is_repeating_group != y.is_repeating_group) {
      return false;
    }
    if (!x.is_repeating_group && x.type != y.type) return false;
    if (x.sub_attributes.size() != y.sub_attributes.size()) return false;
    for (size_t s = 0; s < x.sub_attributes.size(); ++s) {
      if (x.sub_attributes[s].name != y.sub_attributes[s].name ||
          x.sub_attributes[s].type != y.sub_attributes[s].type) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::vector<std::shared_ptr<ServiceInterface>> ServiceRegistry::AlternativesFor(
    const std::string& interface_name) const {
  std::vector<std::shared_ptr<ServiceInterface>> out;
  auto self_it = interfaces_.find(interface_name);
  if (self_it == interfaces_.end()) return out;
  const std::string mart = MartOfInterface(interface_name);
  if (mart.empty()) return out;
  for (const std::shared_ptr<ServiceInterface>& sibling :
       InterfacesOfMart(mart)) {
    if (sibling->name() == interface_name) continue;
    if (!SameSignature(self_it->second->schema(), sibling->schema())) continue;
    out.push_back(sibling);
  }
  return out;
}

std::vector<std::string> ServiceRegistry::mart_names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : marts_) out.push_back(name);
  return out;
}

std::vector<std::string> ServiceRegistry::interface_names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : interfaces_) out.push_back(name);
  return out;
}

std::vector<std::string> ServiceRegistry::pattern_names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : patterns_) out.push_back(name);
  return out;
}

}  // namespace seco
