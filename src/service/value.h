#ifndef SECO_SERVICE_VALUE_H_
#define SECO_SERVICE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace seco {

/// Dynamic types supported for service attribute values.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// Comparison operators usable in selection and join predicates
/// ({=, <, <=, >, >=, like} per the chapter, plus != for completeness).
enum class Comparator {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
};

const char* ComparatorToString(Comparator op);

/// A dynamically typed atomic value flowing between services.
///
/// Numeric values compare across kInt/kDouble; strings compare
/// lexicographically; `like` applies SQL-style '%'/'_' wildcards and is only
/// defined on strings. Nulls compare equal to nulls and are incomparable to
/// everything else.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool v) : rep_(v) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; behaviour is undefined if the type does not match.
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// True if both values belong to a comparable family (numeric with
  /// numeric, string with string, bool with bool, null with null).
  bool TypeCompatibleWith(const Value& other) const;

  /// Evaluates `*this op other`; fails with kTypeError on incompatible types
  /// or `like` applied to non-strings.
  Result<bool> Compare(Comparator op, const Value& other) const;

  /// Structural equality (exact type + payload); used for hashing/dedup,
  /// distinct from SQL-style `Compare(kEq, ...)` numeric coercion.
  bool operator==(const Value& other) const { return rep_ == other.rep_; }

  /// Deterministic hash for hash-join buckets.
  size_t Hash() const;

  /// Renders the value for plan/result printing ("null", "42", "'abc'", ...).
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

}  // namespace seco

#endif  // SECO_SERVICE_VALUE_H_
