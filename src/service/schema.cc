#include "service/schema.h"

#include "common/string_util.h"

namespace seco {

Result<AttrPath> ServiceSchema::Resolve(const std::string& dotted_name) const {
  std::vector<std::string> parts = StrSplit(dotted_name, '.');
  if (parts.empty() || parts.size() > 2 || parts[0].empty()) {
    return Status::InvalidArgument("malformed attribute path '" + dotted_name + "'");
  }
  for (int i = 0; i < num_attributes(); ++i) {
    const AttributeDef& attr = attributes_[i];
    if (attr.name != parts[0]) continue;
    if (parts.size() == 1) {
      if (attr.is_repeating_group) {
        return Status::InvalidArgument("attribute '" + parts[0] +
                                       "' is a repeating group; name a sub-attribute");
      }
      return AttrPath{i, -1};
    }
    if (!attr.is_repeating_group) {
      return Status::InvalidArgument("attribute '" + parts[0] +
                                     "' is atomic and has no sub-attribute '" +
                                     parts[1] + "'");
    }
    for (int j = 0; j < static_cast<int>(attr.sub_attributes.size()); ++j) {
      if (attr.sub_attributes[j].name == parts[1]) return AttrPath{i, j};
    }
    return Status::NotFound("no sub-attribute '" + parts[1] + "' in group '" +
                            parts[0] + "' of service " + name_);
  }
  return Status::NotFound("no attribute '" + parts[0] + "' in service " + name_);
}

ValueType ServiceSchema::TypeAt(const AttrPath& path) const {
  const AttributeDef& attr = attributes_[path.attr_index];
  if (path.is_sub_attribute()) return attr.sub_attributes[path.sub_index].type;
  return attr.type;
}

std::string ServiceSchema::PathToString(const AttrPath& path) const {
  const AttributeDef& attr = attributes_[path.attr_index];
  if (path.is_sub_attribute()) {
    return attr.name + "." + attr.sub_attributes[path.sub_index].name;
  }
  return attr.name;
}

}  // namespace seco
