#include "service/invocation.h"

#include <string>

namespace seco {

uint64_t RequestOrdinal(const ServiceRequest& request) {
  // FNV-1a over the textual inputs, then the chunk index.
  uint64_t hash = 14695981039346656037ULL;
  auto mix = [&hash](const std::string& s) {
    for (unsigned char c : s) {
      hash ^= c;
      hash *= 1099511628211ULL;
    }
    hash ^= 0x1f;  // separator so adjacent inputs do not merge
    hash *= 1099511628211ULL;
  };
  for (const Value& v : request.inputs) mix(v.ToString());
  mix(std::to_string(request.chunk_index));
  return hash;
}

}  // namespace seco
