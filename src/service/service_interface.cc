#include "service/service_interface.h"

#include <algorithm>

namespace seco {

const char* ServiceKindToString(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kExact:
      return "exact";
    case ServiceKind::kSearch:
      return "search";
  }
  return "?";
}

const char* ScoreDecayToString(ScoreDecay decay) {
  switch (decay) {
    case ScoreDecay::kNone:
      return "none";
    case ScoreDecay::kStep:
      return "step";
    case ScoreDecay::kLinear:
      return "linear";
    case ScoreDecay::kQuadratic:
      return "quadratic";
    case ScoreDecay::kOpaque:
      return "opaque";
  }
  return "?";
}

double ServiceInterface::ExpectedChunkScore(int chunk_index,
                                            int total_chunks) const {
  total_chunks = std::max(total_chunks, 1);
  double frac = static_cast<double>(chunk_index) / total_chunks;
  frac = std::clamp(frac, 0.0, 1.0);
  switch (stats_.decay) {
    case ScoreDecay::kNone:
      return 1.0;  // unranked: constant score (weight 0 in ranking functions)
    case ScoreDecay::kStep:
      return chunk_index < stats_.step_h ? stats_.step_high : stats_.step_low;
    case ScoreDecay::kLinear:
      return 1.0 - frac;
    case ScoreDecay::kQuadratic:
      return (1.0 - frac) * (1.0 - frac);
    case ScoreDecay::kOpaque:
      // Unknown function: assume linear as the least-informative regular
      // decay (the chapter treats opaque rankings as regular but unknown).
      return 1.0 - frac;
  }
  return 0.0;
}

}  // namespace seco
