#include "service/tuple.h"

namespace seco {

std::vector<Value> Tuple::CandidateValuesAt(const AttrPath& path) const {
  std::vector<Value> out;
  const TupleSlot& s = slots_[path.attr_index];
  if (!path.is_sub_attribute()) {
    out.push_back(std::get<Value>(s));
    return out;
  }
  const RepeatingGroupValue& group = std::get<RepeatingGroupValue>(s);
  out.reserve(group.size());
  for (const GroupInstance& inst : group) {
    out.push_back(inst[path.sub_index]);
  }
  return out;
}

std::string Tuple::ToString(const ServiceSchema& schema) const {
  std::string out = "{";
  for (int i = 0; i < num_slots() && i < schema.num_attributes(); ++i) {
    if (i > 0) out += ", ";
    const AttributeDef& attr = schema.attribute(i);
    out += attr.name;
    out += ":";
    if (IsAtomic(i)) {
      out += AtomicAt(i).ToString();
    } else {
      out += "[";
      const RepeatingGroupValue& group = GroupAt(i);
      for (size_t g = 0; g < group.size(); ++g) {
        if (g > 0) out += ", ";
        out += "<";
        for (size_t k = 0; k < group[g].size(); ++k) {
          if (k > 0) out += ",";
          out += group[g][k].ToString();
        }
        out += ">";
      }
      out += "]";
    }
  }
  out += "}";
  return out;
}

}  // namespace seco
