#ifndef SECO_SERVICE_TUPLE_H_
#define SECO_SERVICE_TUPLE_H_

#include <string>
#include <variant>
#include <vector>

#include "service/schema.h"
#include "service/value.h"

namespace seco {

/// One instance of a repeating group: values for its sub-attributes, in
/// schema order.
using GroupInstance = std::vector<Value>;

/// The (multi-)value of a repeating group attribute: zero or more instances.
using RepeatingGroupValue = std::vector<GroupInstance>;

/// A slot of a tuple: atomic value or repeating group.
using TupleSlot = std::variant<Value, RepeatingGroupValue>;

/// A tuple produced by a service: one slot per schema attribute, in schema
/// order. Tuples are passive data; the owning schema gives slots meaning.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<TupleSlot> slots) : slots_(std::move(slots)) {}

  int num_slots() const { return static_cast<int>(slots_.size()); }
  const TupleSlot& slot(int i) const { return slots_[i]; }
  TupleSlot& slot(int i) { return slots_[i]; }
  void Append(TupleSlot s) { slots_.push_back(std::move(s)); }

  bool IsAtomic(int i) const { return std::holds_alternative<Value>(slots_[i]); }
  const Value& AtomicAt(int i) const { return std::get<Value>(slots_[i]); }
  const RepeatingGroupValue& GroupAt(int i) const {
    return std::get<RepeatingGroupValue>(slots_[i]);
  }

  /// The atomic value at `path`; for a sub-attribute path this requires a
  /// chosen group instance, so only atomic paths are valid here.
  const Value& ValueAt(const AttrPath& path) const {
    return std::get<Value>(slots_[path.attr_index]);
  }

  /// All candidate values at `path`: the single value for an atomic path, or
  /// one value per group instance for a sub-attribute path. Used where the
  /// semantics quantifies existentially over group instances.
  std::vector<Value> CandidateValuesAt(const AttrPath& path) const;

  /// Non-allocating form of `CandidateValuesAt`: visits the candidates in
  /// the same order without materializing a vector. `fn(const Value&)`
  /// returns false to stop early (short-circuiting existential checks).
  template <typename Fn>
  void ForEachCandidateAt(const AttrPath& path, Fn&& fn) const {
    const TupleSlot& s = slots_[path.attr_index];
    if (!path.is_sub_attribute()) {
      fn(std::get<Value>(s));
      return;
    }
    for (const GroupInstance& inst : std::get<RepeatingGroupValue>(s)) {
      if (!fn(inst[path.sub_index])) return;
    }
  }

  bool operator==(const Tuple& other) const { return slots_ == other.slots_; }

  /// Renders the tuple against its schema, e.g. `{Title:'Up', Genres:[...]}`.
  std::string ToString(const ServiceSchema& schema) const;

 private:
  std::vector<TupleSlot> slots_;
};

/// A composite result: one component tuple per query atom plus its scores.
/// `combined_score` applies the query ranking function to component scores.
struct Combination {
  std::vector<Tuple> components;
  std::vector<double> component_scores;
  double combined_score = 0.0;
  /// Atoms whose component is an empty placeholder because their service was
  /// degraded (permanent failure under a `ReliabilityPolicy` that allows
  /// partial answers). Empty for complete combinations; `combined_score`
  /// sums the present components only.
  std::vector<int> missing_atoms;

  bool complete() const { return missing_atoms.empty(); }
};

}  // namespace seco

#endif  // SECO_SERVICE_TUPLE_H_
