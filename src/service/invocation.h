#ifndef SECO_SERVICE_INVOCATION_H_
#define SECO_SERVICE_INVOCATION_H_

#include <vector>

#include "common/result.h"
#include "service/tuple.h"

namespace seco {

/// One request-response to a service. For chunked services, `chunk_index`
/// selects the fetch number (0-based) for the *same* input binding; callers
/// fetch chunk 0, 1, 2, ... to page through the ranked result list.
struct ServiceRequest {
  /// Input values aligned with `AccessPattern::input_paths()`.
  std::vector<Value> inputs;
  int chunk_index = 0;
};

/// The result of one request-response.
struct ServiceResponse {
  std::vector<Tuple> tuples;
  /// Score in [0,1] per tuple, parallel to `tuples`; empty for unranked
  /// (exact) services.
  std::vector<double> scores;
  /// True if no further chunk exists for this input binding.
  bool exhausted = true;
  /// Simulated latency charged to this call, in milliseconds.
  double latency_ms = 0.0;
};

/// The only interface through which SeCo touches data sources. Real
/// deployments would put an HTTP/SOAP client behind this; this repository
/// provides deterministic simulated services (see `src/sim/`).
class ServiceCallHandler {
 public:
  virtual ~ServiceCallHandler() = default;

  /// Executes one request-response against the source.
  virtual Result<ServiceResponse> Call(const ServiceRequest& request) = 0;
};

}  // namespace seco

#endif  // SECO_SERVICE_INVOCATION_H_
