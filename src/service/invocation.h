#ifndef SECO_SERVICE_INVOCATION_H_
#define SECO_SERVICE_INVOCATION_H_

#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "service/tuple.h"

namespace seco {

/// One request-response to a service. For chunked services, `chunk_index`
/// selects the fetch number (0-based) for the *same* input binding; callers
/// fetch chunk 0, 1, 2, ... to page through the ranked result list.
struct ServiceRequest {
  /// Input values aligned with `AccessPattern::input_paths()`.
  std::vector<Value> inputs;
  int chunk_index = 0;
  /// Which delivery attempt of this logical request this is: 0 for the first
  /// try, incremented by the reliability layer for retries and hedges. The
  /// request *identity* (inputs + chunk, see `RequestOrdinal`) excludes the
  /// attempt, so caches and latency models see one logical call; fault
  /// models mix the attempt in, so a transient failure of attempt 0 does not
  /// doom attempt 1.
  int attempt = 0;
  /// Remaining real-time budget for this call, milliseconds; < 0 means
  /// unbounded. Carried over the wire (deadline propagation): a
  /// `BackendServer` drops a queued call whose wait already exceeded the
  /// budget instead of computing an answer nobody is waiting for. Like
  /// `attempt`, excluded from `RequestOrdinal` — it is delivery metadata,
  /// not request identity.
  double deadline_ms = -1.0;
  /// Cooperative cancellation for this call's query (may be null). Never
  /// travels over the wire and, like `attempt`, is excluded from
  /// `RequestOrdinal`. Blocking transports (`RemoteBackendClient`) observe
  /// it to abandon a reply wait early and send the backend a `kCancel`
  /// frame so the daemon can purge the queued call.
  std::shared_ptr<CancelToken> cancel;
};

/// The result of one request-response.
struct ServiceResponse {
  std::vector<Tuple> tuples;
  /// Score in [0,1] per tuple, parallel to `tuples`; empty for unranked
  /// (exact) services.
  std::vector<double> scores;
  /// True if no further chunk exists for this input binding.
  bool exhausted = true;
  /// Simulated latency charged to this call, in milliseconds.
  double latency_ms = 0.0;
  /// Simulated milliseconds the reliability layer spent before this response
  /// succeeded: retry backoff plus per-call-deadline charges of failed
  /// attempts. Kept separate from `latency_ms` so the base simulated clock
  /// of a faulty-but-recovered run stays identical to the fault-free run;
  /// executors account it at consumption into `ReliabilityStats`.
  double fault_overhead_ms = 0.0;
};

/// Stable 64-bit identity of a request: FNV-1a over the textual inputs and
/// the chunk index — deliberately *excluding* the attempt number, so all
/// attempts of one logical call share an identity. Feeds
/// `LatencyModel::LatencyForOrdinal`, `FaultModel` draws, and retry-jitter
/// derivation.
uint64_t RequestOrdinal(const ServiceRequest& request);

/// The only interface through which SeCo touches data sources. Real
/// deployments would put an HTTP/SOAP client behind this; this repository
/// provides deterministic simulated services (see `src/sim/`).
class ServiceCallHandler {
 public:
  virtual ~ServiceCallHandler() = default;

  /// Executes one request-response against the source.
  virtual Result<ServiceResponse> Call(const ServiceRequest& request) = 0;
};

}  // namespace seco

#endif  // SECO_SERVICE_INVOCATION_H_
