#include "service/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace seco {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

const char* ComparatorToString(Comparator op) {
  switch (op) {
    case Comparator::kEq:
      return "=";
    case Comparator::kNe:
      return "!=";
    case Comparator::kLt:
      return "<";
    case Comparator::kLe:
      return "<=";
    case Comparator::kGt:
      return ">";
    case Comparator::kGe:
      return ">=";
    case Comparator::kLike:
      return "like";
  }
  return "?";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  return std::get<double>(rep_);
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

template <typename T>
bool ApplyOrder(Comparator op, const T& a, const T& b) {
  switch (op) {
    case Comparator::kEq:
      return a == b;
    case Comparator::kNe:
      return a != b;
    case Comparator::kLt:
      return a < b;
    case Comparator::kLe:
      return a <= b;
    case Comparator::kGt:
      return a > b;
    case Comparator::kGe:
      return a >= b;
    case Comparator::kLike:
      return false;  // handled by caller
  }
  return false;
}

}  // namespace

bool Value::TypeCompatibleWith(const Value& other) const {
  ValueType a = type(), b = other.type();
  if (a == b) return true;
  return IsNumeric(a) && IsNumeric(b);
}

Result<bool> Value::Compare(Comparator op, const Value& other) const {
  ValueType a = type(), b = other.type();
  if (op == Comparator::kLike) {
    if (a != ValueType::kString || b != ValueType::kString) {
      return Status::TypeError("'like' requires string operands");
    }
    return LikeMatch(AsString(), other.AsString());
  }
  if (a == ValueType::kNull || b == ValueType::kNull) {
    // Null equals null; any ordered comparison involving null is false.
    if (op == Comparator::kEq) return a == b;
    if (op == Comparator::kNe) return a != b;
    return false;
  }
  if (!TypeCompatibleWith(other)) {
    return Status::TypeError(std::string("cannot compare ") + ValueTypeToString(a) +
                             " with " + ValueTypeToString(b));
  }
  if (IsNumeric(a)) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      return ApplyOrder(op, AsInt(), other.AsInt());
    }
    return ApplyOrder(op, AsDouble(), other.AsDouble());
  }
  if (a == ValueType::kString) {
    return ApplyOrder(op, AsString(), other.AsString());
  }
  return ApplyOrder(op, AsBool(), other.AsBool());
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
      return std::hash<bool>{}(AsBool());
    case ValueType::kInt:
      return std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble: {
      // Hash doubles that hold integral values like the equal int, so that
      // hash-join buckets agree with SQL-style numeric equality.
      double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace seco
