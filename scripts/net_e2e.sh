#!/usr/bin/env bash
# End-to-end network equivalence (docs/NETWORK.md): boot the real daemons —
# a BackendServer and a NetServer front end, as separate seco_shell
# processes — drive the deterministic "serial" load profile over loopback,
# and byte-diff every answer body against an in-process oracle run. Then
# exercise the graceful-shutdown contract (SIGTERM drains and exits 0) and
# the overload ledger (the daemon sheds under the overload profile without
# falling over). Use this after touching src/net/, the server's drain path,
# or the answer-body codec.
#
# Usage: scripts/net_e2e.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SHELL_BIN="${BUILD_DIR}/examples/seco_shell"
[[ -x "${SHELL_BIN}" ]] || { echo "missing ${SHELL_BIN}; build first" >&2; exit 1; }

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  for pid in "${PIDS[@]:-}"; do wait "${pid}" 2>/dev/null || true; done
  rm -rf "${WORK}"
}
trap cleanup EXIT

# The daemons bind ephemeral ports and announce them on stdout; poll the
# log until the announcement lands.
wait_for_port() { # <logfile> <pattern>
  local log="$1" pattern="$2" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n "s/^${pattern} \([0-9]*\)$/\1/p" "${log}" | head -n1)"
    [[ -n "${port}" ]] && { echo "${port}"; return 0; }
    sleep 0.1
  done
  echo "daemon never announced its port (${log}):" >&2
  cat "${log}" >&2
  return 1
}

# Deterministic byte-exact configuration: serial closed loop, ladder off.
ORACLE_FLAGS=(--scenario=movie --load=serial --seed=7 --no-ladder)

echo "==== net_e2e: in-process oracle ===="
"${SHELL_BIN}" --serve "${ORACLE_FLAGS[@]}" \
  --dump-answers="${WORK}/oracle.hex" > "${WORK}/oracle.log"
[[ -s "${WORK}/oracle.hex" ]] || { echo "oracle dumped no answers" >&2; exit 1; }

echo "==== net_e2e: leg 1 — TCP front end ===="
"${SHELL_BIN}" --listen=0 "${ORACLE_FLAGS[@]}" > "${WORK}/front.log" &
FRONT_PID=$!; PIDS+=("${FRONT_PID}")
FRONT_PORT="$(wait_for_port "${WORK}/front.log" "listening on port")"
"${SHELL_BIN}" --connect="127.0.0.1:${FRONT_PORT}" "${ORACLE_FLAGS[@]}" \
  --dump-answers="${WORK}/front.hex"
diff "${WORK}/oracle.hex" "${WORK}/front.hex" \
  || { echo "FAIL: front-end answers diverged from the oracle" >&2; exit 1; }

echo "==== net_e2e: graceful shutdown (SIGTERM drains, exits 0) ===="
kill -TERM "${FRONT_PID}"
FRONT_STATUS=0; wait "${FRONT_PID}" || FRONT_STATUS=$?
PIDS=()
[[ "${FRONT_STATUS}" -eq 0 ]] \
  || { echo "FAIL: front end exited ${FRONT_STATUS} on SIGTERM" >&2; exit 1; }
grep -q "draining" "${WORK}/front.log" \
  || { echo "FAIL: front end never reported draining" >&2; exit 1; }
grep -q "^served " "${WORK}/front.log" \
  || { echo "FAIL: front end printed no serving ledger" >&2; exit 1; }

echo "==== net_e2e: leg 2 — remote backends ===="
"${SHELL_BIN}" --serve-backend=0 --scenario=movie > "${WORK}/backend.log" &
BACKEND_PID=$!; PIDS+=("${BACKEND_PID}")
BACKEND_PORT="$(wait_for_port "${WORK}/backend.log" "backend listening on port")"
"${SHELL_BIN}" --serve "${ORACLE_FLAGS[@]}" \
  --remote-backend="127.0.0.1:${BACKEND_PORT}" \
  --dump-answers="${WORK}/backend.hex" > "${WORK}/backend_client.log"
diff "${WORK}/oracle.hex" "${WORK}/backend.hex" \
  || { echo "FAIL: remote-backend answers diverged from the oracle" >&2; exit 1; }

echo "==== net_e2e: leg 3 — both hops (full daemon topology) ===="
"${SHELL_BIN}" --listen=0 "${ORACLE_FLAGS[@]}" \
  --remote-backend="127.0.0.1:${BACKEND_PORT}" > "${WORK}/both.log" &
BOTH_PID=$!; PIDS+=("${BACKEND_PID}" "${BOTH_PID}")
BOTH_PORT="$(wait_for_port "${WORK}/both.log" "listening on port")"
"${SHELL_BIN}" --connect="127.0.0.1:${BOTH_PORT}" "${ORACLE_FLAGS[@]}" \
  --dump-answers="${WORK}/both.hex"
diff "${WORK}/oracle.hex" "${WORK}/both.hex" \
  || { echo "FAIL: both-hops answers diverged from the oracle" >&2; exit 1; }

echo "==== net_e2e: overload ledger (daemon sheds, stays up) ===="
"${SHELL_BIN}" --connect="127.0.0.1:${BOTH_PORT}" --scenario=movie \
  --load=overload --seed=7 | tee "${WORK}/overload.log"
grep -q "wire report" "${WORK}/overload.log" \
  || { echo "FAIL: overload client produced no wire report" >&2; exit 1; }
# The daemon is still healthy after the burst: the serial profile completes
# cleanly. (No byte-diff here — the daemon's call cache is warm after the
# replays above, which legitimately zeroes the timing telemetry.)
"${SHELL_BIN}" --connect="127.0.0.1:${BOTH_PORT}" "${ORACLE_FLAGS[@]}" \
  | tee "${WORK}/after_overload.log"
grep -q "0 shed, 0 expired, 0 failed" "${WORK}/after_overload.log" \
  || { echo "FAIL: daemon unhealthy after the overload burst" >&2; exit 1; }

kill -TERM "${BOTH_PID}"; wait "${BOTH_PID}" \
  || { echo "FAIL: both-hops daemon exited nonzero on SIGTERM" >&2; exit 1; }
kill -TERM "${BACKEND_PID}"; wait "${BACKEND_PID}" \
  || { echo "FAIL: backend daemon exited nonzero on SIGTERM" >&2; exit 1; }
PIDS=()

echo "net_e2e: all legs byte-identical; shutdown clean"
