#!/usr/bin/env bash
# Soak the query server under ThreadSanitizer: build the serving stack with
# -fsanitize=thread, run the server/admission test suites (including the
# overload soak test, which drives an open-loop burst at 3x+ capacity with
# fault injection), then push a deterministic overload profile through the
# shell's serving mode. Use this after touching src/server/, the thread
# pool, the call cache, or the engines' degradation hooks.
#
# Usage: scripts/soak.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

cmake -B "${BUILD_DIR}" -S . -DSECO_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target \
  query_server_test server_soak_test thread_pool_test call_cache_test \
  memo_table_test answer_cache_test \
  cancel_test server_cancel_test net_cancel_test \
  wire_test remote_handler_test net_server_test net_equivalence_test \
  seco_shell

(cd "${BUILD_DIR}" && ctest --output-on-failure -j"$(nproc)" -R \
  'QueryServer|ServerSoak|AdmissionController|DegradationLadder|ThreadPool|CallCache|MemoTable|AnswerCache|CancelToken|ServerCancel|NetCancel|Wire|FrameDecoder|AnswerBody|RemoteHandler|NetServer|NetEquivalence' "$@")

# End-to-end serving sweep: each profile is deterministic (fixed seed), so
# failures here reproduce exactly. "overload" is the one that sheds.
for profile in light overload burst; do
  echo "==== soak: --serve --load=${profile} ===="
  "${BUILD_DIR}/examples/seco_shell" --serve --load="${profile}" --seed=7
done

# Cache-stress leg: high-overlap repeats with the whole-answer cache and
# plan memo on — the memo table's contended probe/insert/invalidate paths
# under TSan (docs/CACHING.md).
echo "==== soak: --serve --load=cachestress --answer-cache=on ===="
"${BUILD_DIR}/examples/seco_shell" --serve --load=cachestress --seed=7 \
  --answer-cache=on

# Cancellation-storm leg: half the clients walk away 2 ms after submitting
# while the stuck-query watchdog scans in the background — the
# cancel-vs-complete race, queued-entry purges, slot reclamation, and
# heartbeat tracking all race-checked at once (docs/SERVER.md,
# "Cancellation"). The overload profile keeps the queues full so plenty of
# cancels land on *queued* entries, not just running ones.
echo "==== soak: --serve --load=overload --abandon=0.5 ===="
"${BUILD_DIR}/examples/seco_shell" --serve --load=overload --seed=7 \
  --abandon=0.5 --cancel-after-ms=2 --stall-grace=2000

# Network leg: the real daemons under TSan — acceptor + per-connection io
# threads, the backend adapter's connection pool, and the graceful-drain
# path all race-checked end to end (docs/NETWORK.md).
echo "==== soak: net_e2e under TSan ===="
scripts/net_e2e.sh "${BUILD_DIR}"
