#!/usr/bin/env bash
# Chaos matrix for the fault-injection and plan-repair layers: build the
# fault/repair test suites under ThreadSanitizer, then sweep the fault-model
# seed (SECO_FAULT_SEED, picked up by the chaos-aware tests) so different
# stricken-request populations race different thread schedules. Every cell
# must be green: recovery and failover are bit-deterministic contracts, not
# best-effort ones.
#
# Usage: scripts/chaos.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

cmake -B "${BUILD_DIR}" -S . -DSECO_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target \
  fault_recovery_test plan_repair_test streaming_prefetch_test

cd "${BUILD_DIR}"
for seed in 0x5EC0 7 20090401; do
  echo "=== chaos matrix: SECO_FAULT_SEED=${seed} ==="
  SECO_FAULT_SEED="${seed}" ctest --output-on-failure -j"$(nproc)" -R \
    'FaultRecovery|PlanRepair|StreamingPrefetch' "$@"
done
