#!/usr/bin/env bash
# Build the concurrency-sensitive targets under ThreadSanitizer and run the
# tests that exercise real multithreading. Use this after touching the thread
# pool, the call scheduler, the call cache, or the engine's fetch passes.
#
# Usage: scripts/tsan.sh [extra ctest args...]
#
# SECO_TSAN_TARGETS / SECO_TSAN_REGEX narrow the build targets and test
# selection (the CI net-chaos job uses them to sanitize just the network
# stack instead of rebuilding every concurrency test).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

TARGETS="${SECO_TSAN_TARGETS:-thread_pool_test call_cache_test \
  concurrency_determinism_test streaming_prefetch_test streaming_test \
  join_methods_test engine_test engine_advanced_test integration_test \
  reliability_test fault_recovery_test columnar_kernels_test \
  memo_table_test answer_cache_test plan_signature_test query_server_test \
  wire_test remote_handler_test net_server_test net_equivalence_test \
  net_chaos_test}"
REGEX="${SECO_TSAN_REGEX:-ThreadPool|CallCache|ConcurrencyDeterminism|StreamingPrefetch|Streaming|ParallelJoin|Engine|Integration|Reliability|RetryPolicy|CircuitBreaker|CallBudget|ResilientHandler|RetryStorm|FaultRecovery|KernelFuzz|CanonicalKey|ColumnChunk|Columnar|MemoTable|AnswerCache|PlanSignature|PlanMemo|Wire|FrameDecoder|AnswerBody|RemoteHandler|NetServer|NetEquivalence|NetChaos}"

cmake -B "${BUILD_DIR}" -S . -DSECO_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086  # TARGETS is a word list by design
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target ${TARGETS}

cd "${BUILD_DIR}"
ctest --output-on-failure -j"$(nproc)" -R "${REGEX}" "$@"
