#!/usr/bin/env bash
# Build the full test suite under AddressSanitizer + UndefinedBehaviorSanitizer
# (SECO_SANITIZE=address enables both) and run it. Use this after touching
# ownership-sensitive code: the decorator stacks in reliability/, the
# speculative prefetcher's shared slots, or anything that hands shared_ptrs
# across threads.
#
# Usage: scripts/asan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

cmake -B "${BUILD_DIR}" -S . -DSECO_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)"

cd "${BUILD_DIR}"
ctest --output-on-failure -j"$(nproc)" "$@"
