#!/usr/bin/env bash
# Chaos end-to-end (docs/NETWORK.md, "Failure model & chaos testing"): put a
# seeded seco_shell chaos proxy between a real client and a real front-end
# daemon and prove the serving stack absorbs transport faults instead of
# amplifying them:
#
#   leg 0  passthrough proxy (all rates zero) is byte-transparent — every
#          answer body identical to the in-process oracle
#   leg 1  seed matrix: under refusals/resets/corruption/truncation/stalls/
#          black-holes the client still terminates every query, the fault
#          schedule actually fired, and the daemon survives
#   leg 2  determinism: the same seed against fresh daemons replays the
#          identical fault schedule byte-for-byte (same dump both runs)
#   leg 3  health: after the chaos runs the daemon still completes a clean
#          serial profile with nothing shed, expired, or failed
#
# Use this after touching src/net/ (the unit twin is tests/net_chaos_test.cc;
# this script exercises the same contracts across real processes).
#
# Usage: scripts/net_chaos.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SHELL_BIN="${BUILD_DIR}/examples/seco_shell"
[[ -x "${SHELL_BIN}" ]] || { echo "missing ${SHELL_BIN}; build first" >&2; exit 1; }

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  for pid in "${PIDS[@]:-}"; do wait "${pid}" 2>/dev/null || true; done
  rm -rf "${WORK}"
}
trap cleanup EXIT

wait_for_port() { # <logfile> <pattern>
  local log="$1" pattern="$2" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n "s/^${pattern} \([0-9]*\).*$/\1/p" "${log}" | head -n1)"
    [[ -n "${port}" ]] && { echo "${port}"; return 0; }
    sleep 0.1
  done
  echo "daemon never announced its port (${log}):" >&2
  cat "${log}" >&2
  return 1
}

# Deterministic byte-exact configuration, as in scripts/net_e2e.sh.
ORACLE_FLAGS=(--scenario=movie --load=serial --seed=7 --no-ladder)

# The fault matrix: every class enabled, tuned so faults genuinely land
# inside the short serial exchanges (small window, rates matching
# tests/net_chaos_test.cc's MatrixChaos).
CHAOS_FLAGS=(--chaos-refuse=0.10 --chaos-reset=0.25 --chaos-corrupt=0.25
             --chaos-truncate=0.25 --chaos-stall=0.30 --chaos-blackhole=0.15
             --chaos-stall-ms=2 --chaos-window=768)

start_front() { # <logfile>; sets FRONT_PID + FRONT_PORT
  "${SHELL_BIN}" --listen=0 "${ORACLE_FLAGS[@]}" > "$1" &
  FRONT_PID=$!; PIDS+=("${FRONT_PID}")
  FRONT_PORT="$(wait_for_port "$1" "listening on port")"
}

start_proxy() { # <logfile> <upstream-port> <seed> [chaos flags...]
  local log="$1" upstream="$2" seed="$3"; shift 3
  "${SHELL_BIN}" --chaos-proxy=0 --upstream="127.0.0.1:${upstream}" \
    --chaos-seed="${seed}" "$@" > "${log}" &
  PROXY_PID=$!; PIDS+=("${PROXY_PID}")
  PROXY_PORT="$(wait_for_port "${log}" "chaos proxy listening on port")"
}

stop_pid() { # <pid>
  kill -TERM "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
}

echo "==== net_chaos: in-process oracle ===="
"${SHELL_BIN}" --serve "${ORACLE_FLAGS[@]}" \
  --dump-answers="${WORK}/oracle.hex" > "${WORK}/oracle.log"
[[ -s "${WORK}/oracle.hex" ]] || { echo "oracle dumped no answers" >&2; exit 1; }
TOTAL="$(wc -l < "${WORK}/oracle.hex")"

echo "==== net_chaos: leg 0 — passthrough proxy is byte-transparent ===="
start_front "${WORK}/front.log"
start_proxy "${WORK}/pass.log" "${FRONT_PORT}" 1
"${SHELL_BIN}" --connect="127.0.0.1:${PROXY_PORT}" "${ORACLE_FLAGS[@]}" \
  --dump-answers="${WORK}/pass.hex" > "${WORK}/pass_client.log"
diff "${WORK}/oracle.hex" "${WORK}/pass.hex" \
  || { echo "FAIL: passthrough proxy altered answer bytes" >&2; exit 1; }
stop_pid "${PROXY_PID}"

echo "==== net_chaos: leg 1 — seed matrix ===="
MATRIX_FAULTS=0
for seed in 3 5 9; do
  start_proxy "${WORK}/proxy${seed}.log" "${FRONT_PORT}" "${seed}" \
    "${CHAOS_FLAGS[@]}"
  "${SHELL_BIN}" --connect="127.0.0.1:${PROXY_PORT}" "${ORACLE_FLAGS[@]}" \
    --dump-answers="${WORK}/seed${seed}.hex" | tee "${WORK}/client${seed}.log"
  grep -q "wire report" "${WORK}/client${seed}.log" \
    || { echo "FAIL: seed ${seed} client produced no wire report" >&2; exit 1; }
  # Every scheduled query terminated — faulted queries fail structurally,
  # they do not vanish.
  LINES="$(wc -l < "${WORK}/seed${seed}.hex")"
  [[ "${LINES}" -eq "${TOTAL}" ]] \
    || { echo "FAIL: seed ${seed} dumped ${LINES}/${TOTAL} answers" >&2; exit 1; }
  stop_pid "${PROXY_PID}"
  grep -q "^proxy chaos:" "${WORK}/proxy${seed}.log" \
    || { echo "FAIL: seed ${seed} proxy printed no chaos ledger" >&2; exit 1; }
  FAULTS="$(awk -F'planned, ' '/^proxy chaos:/ {
    n = split($2, parts, ", "); total = 0;
    for (i = 1; i <= n; i++) total += parts[i] + 0;
    print total }' "${WORK}/proxy${seed}.log")"
  echo "seed ${seed}: ${FAULTS} faults fired"
  MATRIX_FAULTS=$((MATRIX_FAULTS + FAULTS))
done
[[ "${MATRIX_FAULTS}" -gt 0 ]] \
  || { echo "FAIL: the whole seed matrix fired zero faults" >&2; exit 1; }

echo "==== net_chaos: leg 2 — same seed, same fault schedule ===="
# Fresh front end per run: the answer-cache warmth of a shared daemon would
# legitimately change the bytes, masking any real nondeterminism.
stop_pid "${FRONT_PID}"
for run in a b; do
  start_front "${WORK}/det_front_${run}.log"
  RUN_FRONT_PID="${FRONT_PID}"
  start_proxy "${WORK}/det_proxy_${run}.log" "${FRONT_PORT}" 5 \
    "${CHAOS_FLAGS[@]}"
  "${SHELL_BIN}" --connect="127.0.0.1:${PROXY_PORT}" "${ORACLE_FLAGS[@]}" \
    --dump-answers="${WORK}/det_${run}.hex" > "${WORK}/det_client_${run}.log"
  stop_pid "${PROXY_PID}"
  stop_pid "${RUN_FRONT_PID}"
done
diff "${WORK}/det_a.hex" "${WORK}/det_b.hex" \
  || { echo "FAIL: same seed produced different fault outcomes" >&2; exit 1; }

echo "==== net_chaos: leg 3 — daemon healthy after the storm ===="
start_front "${WORK}/health_front.log"
"${SHELL_BIN}" --connect="127.0.0.1:${FRONT_PORT}" "${ORACLE_FLAGS[@]}" \
  | tee "${WORK}/health.log"
grep -q "0 shed, 0 expired, 0 failed" "${WORK}/health.log" \
  || { echo "FAIL: clean profile unhealthy after chaos runs" >&2; exit 1; }
stop_pid "${FRONT_PID}"
PIDS=()

echo "==== net_chaos: leg 4 — watchdog reaps black-holed backend queries ===="
# Chain: client -> front end -> chaos proxy -> backend daemon. The proxy
# turns chosen backend flows silent for 60 s — the true middlebox black
# hole, with none of the courtesy EOF the proxy's --chaos-blackhole fault
# delivers (an EOF lets the self-healing client recover by redialing; a
# silent flow does not). With the remote call timeout unbounded those
# queries would wedge the front end forever: the stuck-query watchdog
# (--stall-grace) must reap them, so every client query still terminates
# and the front end's shutdown summary reports reaped > 0.
"${SHELL_BIN}" --serve-backend=0 --scenario=movie --seed=7 \
  > "${WORK}/reap_backend.log" &
BACKEND_PID=$!; PIDS+=("${BACKEND_PID}")
BACKEND_PORT="$(wait_for_port "${WORK}/reap_backend.log" "backend listening on port")"
start_proxy "${WORK}/reap_proxy.log" "${BACKEND_PORT}" 11 \
  --chaos-stall=0.60 --chaos-stall-ms=60000 --chaos-window=768
"${SHELL_BIN}" --listen=0 --remote-backend="127.0.0.1:${PROXY_PORT}" \
  --stall-grace=800 "${ORACLE_FLAGS[@]}" > "${WORK}/reap_front.log" &
FRONT_PID=$!; PIDS+=("${FRONT_PID}")
FRONT_PORT="$(wait_for_port "${WORK}/reap_front.log" "listening on port")"
"${SHELL_BIN}" --connect="127.0.0.1:${FRONT_PORT}" "${ORACLE_FLAGS[@]}" \
  --dump-answers="${WORK}/reap.hex" | tee "${WORK}/reap_client.log"
LINES="$(wc -l < "${WORK}/reap.hex")"
[[ "${LINES}" -eq "${TOTAL}" ]] \
  || { echo "FAIL: black-hole leg dumped ${LINES}/${TOTAL} answers — a query hung" >&2; exit 1; }
stop_pid "${FRONT_PID}"
grep -q "^watchdog:" "${WORK}/reap_front.log" \
  || { echo "FAIL: front end printed no watchdog summary" >&2; exit 1; }
REAPED="$(sed -n 's/^watchdog: .* \([0-9]*\) reaped$/\1/p' "${WORK}/reap_front.log")"
[[ -n "${REAPED}" && "${REAPED}" -gt 0 ]] \
  || { echo "FAIL: watchdog reaped nothing under backend black-holes" >&2; exit 1; }
echo "leg 4: watchdog reaped ${REAPED} black-holed queries, all ${TOTAL} answers terminated"
stop_pid "${PROXY_PID}"
stop_pid "${BACKEND_PID}"
PIDS=()

echo "net_chaos: passthrough transparent; matrix fired ${MATRIX_FAULTS} faults; same-seed runs identical; daemon healthy; watchdog reaped ${REAPED} black-holed queries"
