#!/usr/bin/env bash
# Reproduces everything: build, full test suite, and every experiment
# (E1-E15), leaving test_output.txt and bench_output.txt in the repo root.
#
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

: > bench_output.txt
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "######## $(basename "$bench")" | tee -a bench_output.txt
  "$bench" 2>&1 | tee -a bench_output.txt
done

echo
echo "Done. See test_output.txt, bench_output.txt, and EXPERIMENTS.md."
