// Experiment E10: ablation of the §5.3-5.5 heuristics.
//
//  Phase 1 (access patterns): bound-is-better vs unbound-is-easier on a mart
//  with two interfaces (a keyed one and a scan one).
//  Phase 2 (topology): selective-first vs parallel-is-better, measured as
//  plan quality under small anytime budgets (the heuristic decides what the
//  search tries first).
//  Phase 3 (fetch factors): greedy vs square-is-better on the running
//  example, comparing the final fetch assignment and its cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

// --- Phase 1 fixture: a mart with two interfaces -------------------------

struct MultiInterfaceScenario {
  std::shared_ptr<ServiceRegistry> registry;
  std::string query_text;
};

MultiInterfaceScenario MakeMultiInterfaceScenario() {
  MultiInterfaceScenario scenario;
  scenario.registry = std::make_shared<ServiceRegistry>();
  auto schema = std::make_shared<ServiceSchema>(
      "Product", std::vector<AttributeDef>{
                     AttributeDef::Atomic("Name", ValueType::kString),
                     AttributeDef::Atomic("Category", ValueType::kString),
                     AttributeDef::Atomic("Rating", ValueType::kDouble)});
  bench_util::CheckOk(
      scenario.registry->RegisterMart(
          std::make_shared<ServiceMart>("Product", schema)),
      "mart");

  auto build = [&](const char* name, bool keyed, double latency, int chunk) {
    SimServiceBuilder builder(name);
    builder.Schema(schema->attributes())
        .Pattern({{"Name", Adornment::kOutput},
                  {"Category", keyed ? Adornment::kInput : Adornment::kOutput},
                  {"Rating", Adornment::kRanked}})
        .Kind(ServiceKind::kSearch)
        .Seed(5);
    ServiceStats stats;
    stats.chunk_size = chunk;
    stats.latency_ms = latency;
    stats.decay = ScoreDecay::kLinear;
    builder.Stats(stats);
    const char* categories[] = {"book", "game", "tool"};
    for (int i = 0; i < 90; ++i) {
      double quality = 1.0 - i / 90.0;
      builder.AddRow(Tuple({Value("P" + std::to_string(i)),
                            Value(categories[i % 3]), Value(quality)}),
                     quality);
    }
    bench_util::CheckOk(builder.BuildInto(*scenario.registry, "Product").status(),
                        name);
  };
  // Keyed interface: fewer, focused results, fast (bound-is-better's pick).
  build("ProductByCategory", /*keyed=*/true, /*latency=*/60, /*chunk=*/5);
  // Scan interface: no inputs, easy feasibility (unbound-is-easier's pick)
  // but slower and fetch-hungrier.
  build("ProductScan", /*keyed=*/false, /*latency=*/150, /*chunk=*/10);

  scenario.query_text =
      "select Product as P where P.Category = INPUT1 and P.Rating >= 0.1";
  return scenario;
}

void ReportPhase1() {
  Section("E10/phase1: access-pattern heuristics on a 2-interface mart");
  MultiInterfaceScenario scenario = MakeMultiInterfaceScenario();
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  std::printf("  %-20s | %12s %10s %18s\n", "heuristic", "plans", "cost",
              "first-plan iface");
  for (AccessHeuristic h :
       {AccessHeuristic::kBoundIsBetter, AccessHeuristic::kUnboundIsEasier}) {
    // Budget of 1: the heuristic's first pick is what you get.
    OptimizerOptions options;
    options.k = 10;
    options.metric = CostMetricKind::kExecutionTime;
    options.access_heuristic = h;
    options.max_plans = 1;
    Optimizer optimizer(options);
    OptimizationResult result = Unwrap(optimizer.Optimize(query), "optimize");
    std::string iface = "?";
    int node = result.plan.NodeOfAtom(0);
    if (node >= 0) iface = result.plan.node(node).iface->name();
    std::printf("  %-20s | %12d %10.1f %18s\n", AccessHeuristicToString(h),
                result.plans_costed, result.cost, iface.c_str());
  }
  std::printf("  shape expectation: bound-is-better starts from the keyed\n"
              "  interface and lands near the optimum immediately.\n");
}

void ReportPhase2() {
  Section("E10/phase2: topology heuristics (anytime quality, movie query)");
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");

  for (CostMetricKind metric :
       {CostMetricKind::kExecutionTime, CostMetricKind::kCallCount}) {
    OptimizerOptions base;
    base.k = 10;
    base.metric = metric;
    Optimizer exhaustive(base);
    OptimizationResult best = Unwrap(exhaustive.Optimize(query), "optimize");
    std::printf("\n  metric=%s (optimum %.1f):\n",
                CostMetricKindToString(metric), best.cost);
    std::printf("  %-20s", "heuristic \\ budget");
    for (int budget : {1, 2, 4, 8}) std::printf(" %9dx", budget);
    std::printf("\n");
    for (TopologyHeuristic h : {TopologyHeuristic::kSelectiveFirst,
                                TopologyHeuristic::kParallelIsBetter}) {
      std::printf("  %-20s", TopologyHeuristicToString(h));
      for (int budget : {1, 2, 4, 8}) {
        OptimizerOptions options = base;
        options.topology_heuristic = h;
        options.max_plans = budget;
        Optimizer optimizer(options);
        OptimizationResult result = Unwrap(optimizer.Optimize(query), "opt");
        std::printf(" %9.2f ", result.cost / best.cost);
      }
      std::printf("\n");
    }
  }
  std::printf("\n  shape expectation: parallel-is-better reaches the optimum\n"
              "  faster under time metrics; selective-first under call count\n"
              "  (§5.4: parallelism favours time, sequencing favours calls).\n");
}

void ReportPhase3() {
  Section("E10/phase3: fetch-factor heuristics (running example, k=10)");
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  std::printf("  %-20s | %10s %10s %s\n", "heuristic", "cost", "est.ans",
              "fetch factors (service=F)");
  for (FetchHeuristic h :
       {FetchHeuristic::kGreedy, FetchHeuristic::kSquareIsBetter}) {
    OptimizerOptions options;
    options.k = 10;
    options.metric = CostMetricKind::kCallCount;
    options.fetch_heuristic = h;
    Optimizer optimizer(options);
    OptimizationResult result = Unwrap(optimizer.Optimize(query), "optimize");
    std::printf("  %-20s | %10.1f %10.1f ", FetchHeuristicToString(h),
                result.cost, result.estimated_answers);
    for (const PlanNode& n : result.plan.nodes()) {
      if (n.kind == PlanNodeKind::kServiceCall && n.iface->is_chunked()) {
        std::printf(" %s=%d", n.iface->name().c_str(), n.fetch_factor);
      }
    }
    std::printf("\n");
  }
  std::printf("  shape expectation: square-is-better equalizes F*chunk across\n"
              "  services; greedy concentrates fetches where answers/cost is\n"
              "  highest.\n");
}

void BM_OptimizeWithHeuristic(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  options.fetch_heuristic = state.range(0) == 0 ? FetchHeuristic::kGreedy
                                                : FetchHeuristic::kSquareIsBetter;
  for (auto _ : state) {
    Optimizer optimizer(options);
    benchmark::DoNotOptimize(optimizer.Optimize(query));
  }
}
BENCHMARK(BM_OptimizeWithHeuristic)->Arg(0)->Arg(1);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::ReportPhase1();
  seco::ReportPhase2();
  seco::ReportPhase3();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
