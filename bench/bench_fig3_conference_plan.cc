// Experiment E1: the Fig. 2/3 example plan — exact proliferative Conference
// (avg 20 tuples), Weather selective in context (AvgTemp > 26), then Flight
// and Hotel search services joined by a merge-scan parallel join.
//
// The bench prints the fully instantiated plan (the Fig. 3 annotations),
// its cost under every §5.1 metric, and the measured execution.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  BoundQuery query;
  QueryPlan plan;
};

Fixture MakeFixture(int flight_fetch = 2, int hotel_fetch = 2) {
  Fixture fx;
  fx.scenario = Unwrap(MakeConferenceScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(fx.scenario.query_text), "parse");
  fx.query = Unwrap(BindQuery(parsed, *fx.scenario.registry), "bind");
  TopologySpec spec;  // Conference -> Weather -> (Flight || Hotel) -> MS
  spec.stages = {{0}, {1}, {2, 3}};
  spec.parallel_strategy.invocation = JoinInvocation::kMergeScan;
  spec.parallel_strategy.completion = JoinCompletion::kTriangular;
  spec.atom_settings[2].fetch_factor = flight_fetch;
  spec.atom_settings[3].fetch_factor = hotel_fetch;
  fx.plan = Unwrap(BuildPlan(fx.query, spec), "build");
  ApplyAutoStrategies(&fx.plan);
  AnnotationParams params;
  params.k = 10;
  CheckOk(AnnotatePlan(&fx.plan, params).status(), "annotate");
  return fx;
}

void Report() {
  Fixture fx = MakeFixture();
  Section("E1: Fig. 2/3 conference-trip plan, fully instantiated");
  std::printf("%s\n", fx.plan.ToString().c_str());

  Section("expected behaviours (shape checks)");
  const PlanNode& conference = fx.plan.node(fx.plan.NodeOfAtom(0));
  std::printf("  Conference proliferative: t_out=%.0f from 1 call (paper: 20)\n",
              conference.t_out);
  double weather_out = 0, selection_out = 0;
  for (const PlanNode& n : fx.plan.nodes()) {
    if (n.kind == PlanNodeKind::kServiceCall && n.iface->name() == "Weather1") {
      weather_out = n.t_out;
    }
    if (n.kind == PlanNodeKind::kSelection && !n.selections.empty()) {
      selection_out = n.t_out;
    }
  }
  std::printf(
      "  Weather selective in context: %.1f tuples -> %.1f after AvgTemp>26\n",
      weather_out, selection_out);

  Section("plan cost under every metric (§5.1)");
  for (CostMetricKind kind :
       {CostMetricKind::kExecutionTime, CostMetricKind::kSumCost,
        CostMetricKind::kRequestResponse, CostMetricKind::kCallCount,
        CostMetricKind::kBottleneck, CostMetricKind::kTimeToScreen}) {
    double cost = Unwrap(PlanCost(fx.plan, kind), "cost");
    std::printf("  %-18s %10.1f %s\n", CostMetricKindToString(kind), cost,
                MetricIsTimeBased(kind) ? "ms" : "units");
  }

  Section("measured execution");
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  ExecutionEngine engine(options);
  ExecutionResult result = Unwrap(engine.Execute(fx.plan), "execute");
  std::printf("  answers: %zu   calls: %d   elapsed: %.0f ms (parallel) vs"
              " %.0f ms (sequential)\n",
              result.combinations.size(), result.total_calls,
              result.elapsed_ms, result.total_latency_ms);
}

void BM_ConferencePlanBuildAnnotate(benchmark::State& state) {
  Fixture fx = MakeFixture();
  for (auto _ : state) {
    Fixture rebuilt = MakeFixture();
    benchmark::DoNotOptimize(rebuilt.plan.num_nodes());
  }
}
BENCHMARK(BM_ConferencePlanBuildAnnotate);

void BM_ConferencePlanExecute(benchmark::State& state) {
  Fixture fx = MakeFixture();
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_ConferencePlanExecute);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
