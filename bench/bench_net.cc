// Network serving cost (docs/NETWORK.md): what the loopback TCP hops add
// on top of the in-process QueryServer. Three topologies run the same
// closed-loop schedule —
//
//   in-process   DriveLoad against the QueryServer (the PR-5 baseline)
//   front-end    DriveLoadOverWire through a NetServer
//   both-hops    NetServer front end + RemoteServiceHandler backends
//
// — and report goodput side by side, plus a per-call microbenchmark of the
// RemoteBackendClient round trip against a direct handler call. The
// interesting shape: goodput tracks the in-process curve (the wire adds
// per-call latency, not a throughput ceiling), and the backend round trip
// stays in the tens of microseconds on loopback.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "net/backend_server.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/remote_handler.h"

namespace seco {
namespace {

using bench_util::Unwrap;

/// Shared artifact writer; flushed by main after the benchmark run.
bench_util::BenchJsonWriter& NetJson() {
  static bench_util::BenchJsonWriter writer("net");
  return writer;
}

enum Topology { kInProcess = 0, kFrontEnd = 1, kBothHops = 2 };

const char* TopologyName(int topology) {
  switch (topology) {
    case kInProcess: return "in-process";
    case kFrontEnd: return "front-end";
    default: return "both-hops";
  }
}

ServerOptions WireServerOptions() {
  ServerOptions options;
  options.admission.max_in_flight = 4;
  options.admission.interactive.queue_capacity = 64;
  options.admission.batch.queue_capacity = 64;
  options.ladder.enabled = false;  // level 0 only: legs stay comparable
  options.num_threads = 2;
  return options;
}

LoadProfile ClosedLoopProfile(int width) {
  LoadProfile profile;
  profile.seed = 29;
  profile.num_queries = 24;
  profile.closed_loop_width = width;
  profile.interactive_fraction = 0.75;
  profile.k_min = 3;
  profile.k_max = 8;
  return profile;
}

// Closed-loop goodput sweep across the three topologies. Backends run in
// scaled real time so the schedule genuinely occupies the admission window;
// the wire legs replay the identical schedule, so any goodput gap is the
// cost of the socket hops alone.
void BM_NetClosedLoop(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int topology = static_cast<int>(state.range(1));
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  LoadProfile profile = ClosedLoopProfile(width);
  LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
  std::vector<LoadItem> schedule = generator.Schedule();

  int64_t useful = 0, total = 0;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    std::shared_ptr<ServiceRegistry> registry = scenario.registry;
    BackendServer backend_server;
    if (topology == kBothHops) {
      backend_server.ExposeRegistry(*scenario.registry);
      bench_util::CheckOk(backend_server.Start(), "backend start");
      registry = Unwrap(MakeRemoteRegistry(*scenario.registry, "127.0.0.1",
                                           backend_server.port()),
                        "remote registry");
    }
    QueryServer server(registry, WireServerOptions());

    if (topology == kInProcess) {
      LoadReport report = DriveLoad(&server, schedule, profile);
      server.Drain();
      for (const QueryResponse& r : report.responses) {
        total += 1;
        if (r.outcome == ServedOutcome::kCompleted ||
            r.outcome == ServedOutcome::kDegraded) {
          useful += 1;
        }
      }
      wall_ms_total += report.wall_ms;
    } else {
      NetServer net(&server);
      bench_util::CheckOk(net.Start(), "net start");
      WireLoadReport report =
          DriveLoadOverWire("127.0.0.1", net.port(), schedule, profile);
      net.Stop();
      total += static_cast<int64_t>(report.responses.size());
      useful += report.CountOutcome(ServedOutcome::kCompleted) +
                report.CountOutcome(ServedOutcome::kDegraded);
      wall_ms_total += report.wall_ms;
    }
    if (topology == kBothHops) backend_server.Stop();
  }

  state.counters["width"] = static_cast<double>(width);
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["useful_fraction"] =
      total > 0 ? static_cast<double>(useful) / static_cast<double>(total)
                : 0.0;
  std::string config = std::string("topology=") + TopologyName(topology) +
                       ",closed_loop_width=" + std::to_string(width);
  NetJson().Record("goodput_qps", config, "qps",
                   state.counters["goodput_qps"]);
  NetJson().Record("useful_fraction", config, "fraction",
                   state.counters["useful_fraction"]);
}
BENCHMARK(BM_NetClosedLoop)
    ->Args({1, kInProcess})->Args({1, kFrontEnd})->Args({1, kBothHops})
    ->Args({4, kInProcess})->Args({4, kFrontEnd})->Args({4, kBothHops})
    ->Args({8, kInProcess})->Args({8, kFrontEnd})->Args({8, kBothHops})
    ->Unit(benchmark::kMillisecond);

// Per-call round-trip microbenchmark: a RemoteBackendClient call against a
// loopback BackendServer vs the direct handler call it fronts. The
// backends stay in simulated time (no real sleeps), so the difference is
// pure wire overhead — encode, two socket hops, decode.
void BM_BackendCallRoundtrip(benchmark::State& state) {
  const bool remote = state.range(0) != 0;
  SyntheticPair pair = Unwrap(MakeSyntheticPair(), "synthetic pair");

  BackendServer server;
  server.RegisterHandler("SX", pair.x.backend);
  bench_util::CheckOk(server.Start(), "backend start");
  RemoteBackendClient client("127.0.0.1", server.port());

  int64_t calls = 0;
  double wall_us = 0.0;
  for (auto _ : state) {
    ServiceRequest request;
    request.chunk_index = static_cast<int>(calls % 4);
    auto begin = std::chrono::steady_clock::now();
    Result<ServiceResponse> result =
        remote ? client.Call("SX", request) : pair.x.backend->Call(request);
    auto end = std::chrono::steady_clock::now();
    bench_util::CheckOk(result.status(), "call");
    benchmark::DoNotOptimize(result.value().tuples.size());
    wall_us +=
        std::chrono::duration<double, std::micro>(end - begin).count();
    calls += 1;
  }
  server.Stop();

  const double per_call_us = calls > 0 ? wall_us / calls : 0.0;
  state.counters["per_call_us"] = per_call_us;
  std::string config = std::string("path=") + (remote ? "remote" : "direct");
  NetJson().Record("backend_call_us", config, "us", per_call_us);
}
BENCHMARK(BM_BackendCallRoundtrip)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  seco::NetJson().Flush();
  ::benchmark::Shutdown();
  return 0;
}
