// Network serving cost (docs/NETWORK.md): what the loopback TCP hops add
// on top of the in-process QueryServer. Three topologies run the same
// closed-loop schedule —
//
//   in-process   DriveLoad against the QueryServer (the PR-5 baseline)
//   front-end    DriveLoadOverWire through a NetServer
//   both-hops    NetServer front end + RemoteServiceHandler backends
//
// — and report goodput side by side, plus a per-call microbenchmark of the
// RemoteBackendClient round trip against a direct handler call. The
// interesting shape: goodput tracks the in-process curve (the wire adds
// per-call latency, not a throughput ceiling), and the backend round trip
// stays in the tens of microseconds on loopback.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/backend_server.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/remote_handler.h"
#include "net/wire.h"

namespace seco {
namespace {

using bench_util::Unwrap;

/// Shared artifact writer; flushed by main after the benchmark run.
bench_util::BenchJsonWriter& NetJson() {
  static bench_util::BenchJsonWriter writer("net");
  return writer;
}

enum Topology { kInProcess = 0, kFrontEnd = 1, kBothHops = 2 };

const char* TopologyName(int topology) {
  switch (topology) {
    case kInProcess: return "in-process";
    case kFrontEnd: return "front-end";
    default: return "both-hops";
  }
}

ServerOptions WireServerOptions() {
  ServerOptions options;
  options.admission.max_in_flight = 4;
  options.admission.interactive.queue_capacity = 64;
  options.admission.batch.queue_capacity = 64;
  options.ladder.enabled = false;  // level 0 only: legs stay comparable
  options.num_threads = 2;
  return options;
}

LoadProfile ClosedLoopProfile(int width) {
  LoadProfile profile;
  profile.seed = 29;
  profile.num_queries = 24;
  profile.closed_loop_width = width;
  profile.interactive_fraction = 0.75;
  profile.k_min = 3;
  profile.k_max = 8;
  return profile;
}

// Closed-loop goodput sweep across the three topologies. Backends run in
// scaled real time so the schedule genuinely occupies the admission window;
// the wire legs replay the identical schedule, so any goodput gap is the
// cost of the socket hops alone.
void BM_NetClosedLoop(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int topology = static_cast<int>(state.range(1));
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  LoadProfile profile = ClosedLoopProfile(width);
  LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
  std::vector<LoadItem> schedule = generator.Schedule();

  int64_t useful = 0, total = 0;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    std::shared_ptr<ServiceRegistry> registry = scenario.registry;
    BackendServer backend_server;
    if (topology == kBothHops) {
      backend_server.ExposeRegistry(*scenario.registry);
      bench_util::CheckOk(backend_server.Start(), "backend start");
      registry = Unwrap(MakeRemoteRegistry(*scenario.registry, "127.0.0.1",
                                           backend_server.port()),
                        "remote registry");
    }
    QueryServer server(registry, WireServerOptions());

    if (topology == kInProcess) {
      LoadReport report = DriveLoad(&server, schedule, profile);
      server.Drain();
      for (const QueryResponse& r : report.responses) {
        total += 1;
        if (r.outcome == ServedOutcome::kCompleted ||
            r.outcome == ServedOutcome::kDegraded) {
          useful += 1;
        }
      }
      wall_ms_total += report.wall_ms;
    } else {
      NetServer net(&server);
      bench_util::CheckOk(net.Start(), "net start");
      WireLoadReport report =
          DriveLoadOverWire("127.0.0.1", net.port(), schedule, profile);
      net.Stop();
      total += static_cast<int64_t>(report.responses.size());
      useful += report.CountOutcome(ServedOutcome::kCompleted) +
                report.CountOutcome(ServedOutcome::kDegraded);
      wall_ms_total += report.wall_ms;
    }
    if (topology == kBothHops) backend_server.Stop();
  }

  state.counters["width"] = static_cast<double>(width);
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["useful_fraction"] =
      total > 0 ? static_cast<double>(useful) / static_cast<double>(total)
                : 0.0;
  std::string config = std::string("topology=") + TopologyName(topology) +
                       ",closed_loop_width=" + std::to_string(width);
  NetJson().Record("goodput_qps", config, "qps",
                   state.counters["goodput_qps"]);
  NetJson().Record("useful_fraction", config, "fraction",
                   state.counters["useful_fraction"]);
}
BENCHMARK(BM_NetClosedLoop)
    ->Args({1, kInProcess})->Args({1, kFrontEnd})->Args({1, kBothHops})
    ->Args({4, kInProcess})->Args({4, kFrontEnd})->Args({4, kBothHops})
    ->Args({8, kInProcess})->Args({8, kFrontEnd})->Args({8, kBothHops})
    ->Unit(benchmark::kMillisecond);

/// Chaos artifact writer: `BENCH_net_chaos.json`, next to the net one, so
/// the goodput/latency-vs-fault-rate curve is machine-readable in CI.
bench_util::BenchJsonWriter& ChaosJson() {
  static bench_util::BenchJsonWriter writer("net_chaos");
  return writer;
}

/// All fault classes scaled by one intensity knob, with a fixed seed so
/// every sweep point replays the identical fault schedule run-to-run. The
/// window is small enough that faults actually land inside the short
/// query exchanges (see tests/net_chaos_test.cc for the same tuning).
ChaosOptions SweepChaos(double intensity) {
  ChaosOptions chaos;
  chaos.seed = 1237;
  chaos.refuse_rate = 0.3 * intensity;
  chaos.reset_rate = intensity;
  chaos.corrupt_rate = intensity;
  chaos.truncate_rate = intensity;
  chaos.stall_rate = intensity;
  chaos.blackhole_rate = 0.5 * intensity;
  chaos.stall_ms = 2.0;
  chaos.fault_window_bytes = 768;
  return chaos;
}

struct ChaosSweepSample {
  int64_t useful = 0;
  int64_t total = 0;
  double wall_ms = 0.0;
  /// Client-observed per-slot latency (dial + round trip) for slots that
  /// came back completed or degraded.
  std::vector<double> latencies_ms;
};

/// Closed-loop drive like `DriveLoadOverWire`, but measuring what a real
/// client feels under faults: each worker keeps one call outstanding,
/// redials when its connection dies, and charges the reconnect to the slot
/// that needed it. One attempt per slot — a query lost to chaos counts
/// against `completed_fraction` instead of being retried into invisibility.
ChaosSweepSample DriveChaosClosedLoop(uint16_t port,
                                      const std::vector<LoadItem>& schedule,
                                      int width) {
  ChaosSweepSample sample;
  sample.total = static_cast<int64_t>(schedule.size());
  std::mutex mu;
  std::atomic<size_t> next{0};
  std::atomic<int64_t> useful{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(width);
  for (int w = 0; w < width; ++w) {
    workers.emplace_back([&] {
      // Recv timeout bounds the worst chaos outcome (a stalled stream) so
      // the sweep cannot wedge; chaos-free sweeps never hit it.
      Result<NetClient> client =
          NetClient::Connect("127.0.0.1", port, /*timeout_ms=*/2000);
      std::vector<double> local;
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < schedule.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        auto begin = std::chrono::steady_clock::now();
        if (!client.ok()) {
          client = NetClient::Connect("127.0.0.1", port, /*timeout_ms=*/2000);
        }
        if (!client.ok()) continue;  // this slot's dial was refused
        Result<WireResponse> wire = client.value().Roundtrip(
            static_cast<uint64_t>(i + 1), schedule[i].request);
        if (!wire.ok()) {
          client = wire.status();  // poisoned stream: next slot dials fresh
          continue;
        }
        Result<QueryResponse> decoded = DecodeAnswerBody(wire.value().body);
        if (!decoded.ok()) continue;
        const ServedOutcome outcome = decoded.value().outcome;
        if (outcome == ServedOutcome::kCompleted ||
            outcome == ServedOutcome::kDegraded) {
          useful.fetch_add(1, std::memory_order_relaxed);
          local.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - begin)
                              .count());
        }
      }
      if (client.ok()) client.value().Goodbye();
      std::lock_guard<std::mutex> lock(mu);
      sample.latencies_ms.insert(sample.latencies_ms.end(), local.begin(),
                                 local.end());
    });
  }
  for (std::thread& t : workers) t.join();
  sample.useful = useful.load(std::memory_order_relaxed);
  sample.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return sample;
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(idx, values->size() - 1)];
}

// Goodput and tail latency versus fault intensity: the front end runs under
// a seeded ChaosStream while reconnecting closed-loop clients replay the
// standard schedule. The shape to watch: completed_fraction degrades
// roughly linearly with intensity while p99 grows with the reconnect tax —
// a cliff in either curve means the serving layer is amplifying faults
// (wedged connections, poisoned pools) instead of absorbing them.
void BM_NetChaosSweep(benchmark::State& state) {
  static const double kIntensities[] = {0.0, 0.05, 0.15, 0.30};
  const double intensity = kIntensities[state.range(0)];
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }
  const int width = 4;
  LoadProfile profile = ClosedLoopProfile(width);
  LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
  std::vector<LoadItem> schedule = generator.Schedule();

  int64_t useful = 0, total = 0, faults = 0;
  double wall_ms_total = 0.0;
  std::vector<double> latencies;
  for (auto _ : state) {
    QueryServer server(scenario.registry, WireServerOptions());
    NetServerOptions net_options;
    net_options.chaos = SweepChaos(intensity);
    net_options.write_timeout_ms = 2000;
    NetServer net(&server, net_options);
    bench_util::CheckOk(net.Start(), "net start");
    ChaosSweepSample sample = DriveChaosClosedLoop(net.port(), schedule, width);
    net.Stop();
    useful += sample.useful;
    total += sample.total;
    wall_ms_total += sample.wall_ms;
    faults += static_cast<int64_t>(net.chaos_stats().total_faults());
    latencies.insert(latencies.end(), sample.latencies_ms.begin(),
                     sample.latencies_ms.end());
  }

  const double goodput =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  const double completed_fraction =
      total > 0 ? static_cast<double>(useful) / static_cast<double>(total)
                : 0.0;
  const double p99 = Percentile(&latencies, 0.99);
  state.counters["goodput_qps"] = goodput;
  state.counters["completed_fraction"] = completed_fraction;
  state.counters["p99_ms"] = p99;
  state.counters["faults_injected"] = static_cast<double>(faults);

  char config[64];
  std::snprintf(config, sizeof(config), "fault_rate=%.2f,closed_loop_width=%d",
                intensity, width);
  ChaosJson().Record("goodput_qps", config, "qps", goodput);
  ChaosJson().Record("completed_fraction", config, "fraction",
                     completed_fraction);
  ChaosJson().Record("p99_ms", config, "ms", p99);
  ChaosJson().Record("faults_injected", config, "count",
                     static_cast<double>(faults));
}
BENCHMARK(BM_NetChaosSweep)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Per-call round-trip microbenchmark: a RemoteBackendClient call against a
// loopback BackendServer vs the direct handler call it fronts. The
// backends stay in simulated time (no real sleeps), so the difference is
// pure wire overhead — encode, two socket hops, decode.
void BM_BackendCallRoundtrip(benchmark::State& state) {
  const bool remote = state.range(0) != 0;
  SyntheticPair pair = Unwrap(MakeSyntheticPair(), "synthetic pair");

  BackendServer server;
  server.RegisterHandler("SX", pair.x.backend);
  bench_util::CheckOk(server.Start(), "backend start");
  RemoteBackendClient client("127.0.0.1", server.port());

  int64_t calls = 0;
  double wall_us = 0.0;
  for (auto _ : state) {
    ServiceRequest request;
    request.chunk_index = static_cast<int>(calls % 4);
    auto begin = std::chrono::steady_clock::now();
    Result<ServiceResponse> result =
        remote ? client.Call("SX", request) : pair.x.backend->Call(request);
    auto end = std::chrono::steady_clock::now();
    bench_util::CheckOk(result.status(), "call");
    benchmark::DoNotOptimize(result.value().tuples.size());
    wall_us +=
        std::chrono::duration<double, std::micro>(end - begin).count();
    calls += 1;
  }
  server.Stop();

  const double per_call_us = calls > 0 ? wall_us / calls : 0.0;
  state.counters["per_call_us"] = per_call_us;
  std::string config = std::string("path=") + (remote ? "remote" : "direct");
  NetJson().Record("backend_call_us", config, "us", per_call_us);
}
BENCHMARK(BM_BackendCallRoundtrip)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  seco::NetJson().Flush();
  seco::ChaosJson().Flush();
  ::benchmark::Shutdown();
  return 0;
}
