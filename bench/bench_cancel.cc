// Cancellation economics (docs/SERVER.md, "Cancellation"). Two questions:
//
//   reclaim_ms     how quickly a cancel returns the query's resources —
//                  wall time from Cancel() to the future resolving.
//   goodput_qps    what abandoned work costs the queries that stayed: an
//                  open-loop run where 0/25/50% of clients walk away, with
//                  cancellation delivering the abandonment to the server
//                  vs. the pre-cancellation behavior (the server computes
//                  every abandoned answer to completion for nobody).
//
// The acceptance shape: at 25/50% abandonment, the cancelling run's goodput
// over the *surviving* queries meets or beats the non-cancelling run's,
// because reaped queries free their window slots early.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Unwrap;

bench_util::BenchJsonWriter& CancelJson() {
  static bench_util::BenchJsonWriter writer("cancel");
  return writer;
}

// Wall time from Cancel() of a mid-run query to its future resolving —
// the latency of getting the slot, threads, and budget back.
void BM_CancelReclaimLatency(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.05);  // ~100 real ms per full query
  }
  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.ladder.enabled = false;
  QueryServer server(scenario.registry, options);

  QueryRequest request;
  request.query_text = scenario.query_text;
  request.input_bindings = scenario.inputs;
  request.k = 10;

  double reclaim_total_ms = 0.0;
  int64_t cancelled = 0;
  for (auto _ : state) {
    QueryServer::SubmittedQuery submitted = server.SubmitWithId(request);
    // Let the query get properly underway before pulling the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto cancel_at = std::chrono::steady_clock::now();
    server.Cancel(submitted.id, "bench reclaim");
    QueryResponse response = submitted.future.get();
    const double reclaim_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - cancel_at)
            .count();
    if (response.outcome == ServedOutcome::kCancelled) {
      reclaim_total_ms += reclaim_ms;
      ++cancelled;
    }
  }
  server.Drain();

  const double mean_reclaim =
      cancelled > 0 ? reclaim_total_ms / static_cast<double>(cancelled) : 0.0;
  state.counters["reclaim_ms"] = mean_reclaim;
  state.counters["cancelled"] = static_cast<double>(cancelled);
  CancelJson().Record("reclaim_ms", "realtime=0.05", "ms", mean_reclaim);
}
BENCHMARK(BM_CancelReclaimLatency)->Unit(benchmark::kMillisecond);

// Open-loop run where `abandon_pct` of clients walk away 2 ms after
// submitting. cancel=on delivers the abandonment (QueryServer::Cancel);
// cancel=off replays the identical schedule with the cancels suppressed —
// the server computes every abandoned answer in full. Goodput counts only
// the queries whose clients stayed: the useful work per wall second.
void BM_ServerAbandonment(benchmark::State& state) {
  const int abandon_pct = static_cast<int>(state.range(0));
  const bool cancel_on = state.range(1) != 0;
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.002);
  }

  int64_t kept_useful = 0, reaped = 0;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    ServerOptions options;
    options.admission.max_in_flight = 2;
    options.admission.interactive.queue_capacity = 128;
    options.admission.batch.queue_capacity = 128;
    options.ladder.enabled = false;
    options.num_threads = 2;
    QueryServer server(scenario.registry, options);

    LoadProfile profile;
    profile.seed = 41;
    profile.num_queries = 64;
    profile.closed_loop_width = 0;
    profile.mean_interarrival_ms = 0.0;
    profile.interactive_fraction = 0.5;
    profile.k_min = 3;
    profile.k_max = 8;
    profile.abandon_fraction = static_cast<double>(abandon_pct) / 100.0;
    profile.abandon_after_ms = 2.0;
    LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
    std::vector<LoadItem> schedule = generator.Schedule();
    // The abandon flags mark which clients walk away in BOTH legs; the
    // off leg strips them so no cancel is ever delivered — the historical
    // behavior of computing abandoned answers to completion.
    std::vector<bool> kept(schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
      kept[i] = !schedule[i].abandon;
      if (!cancel_on) schedule[i].abandon = false;
    }
    LoadReport report = DriveLoad(&server, schedule, profile);
    server.Drain();

    for (size_t i = 0; i < report.responses.size(); ++i) {
      const QueryResponse& response = report.responses[i];
      if (kept[i] && (response.outcome == ServedOutcome::kCompleted ||
                      response.outcome == ServedOutcome::kDegraded)) {
        ++kept_useful;
      }
      if (response.outcome == ServedOutcome::kCancelled) ++reaped;
    }
    wall_ms_total += report.wall_ms;
  }

  state.counters["abandon_pct"] = static_cast<double>(abandon_pct);
  state.counters["cancel"] = cancel_on ? 1.0 : 0.0;
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0
          ? 1000.0 * static_cast<double>(kept_useful) / wall_ms_total
          : 0.0;
  state.counters["reaped"] = static_cast<double>(reaped);
  std::string config = "abandon=" + std::to_string(abandon_pct) +
                       ",cancel=" + (cancel_on ? "on" : "off");
  CancelJson().Record("goodput_qps", config, "qps",
                      state.counters["goodput_qps"]);
  CancelJson().Record("reaped", config, "count",
                      state.counters["reaped"]);
}
BENCHMARK(BM_ServerAbandonment)
    ->Args({0, 0})->Args({0, 1})
    ->Args({25, 0})->Args({25, 1})
    ->Args({50, 0})->Args({50, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  seco::CancelJson().Flush();
  ::benchmark::Shutdown();
  return 0;
}
