// Experiment E11: cost-metric comparison (§5.1) and the WSMS baseline
// (§2.4, Srivastava et al. VLDB'06).
//
//  Part 1: the same candidate plan set ranked under each metric — different
//  metrics pick different winners, which is the chapter's motivation for a
//  metric-parameterized optimizer.
//  Part 2: WSMS (bottleneck, F=1, max parallelism, search-blind) vs the SeCo
//  branch-and-bound: on an exact-services-only query WSMS is near-optimal;
//  on the chunked search-service query it under-delivers answers because it
//  ignores chunking and k-answer termination.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

void ReportMetricDisagreement() {
  Section("E11/1: one plan set, six metrics (conference query)");
  Scenario scenario = Unwrap(MakeConferenceScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");

  struct Candidate {
    const char* label;
    TopologySpec spec;
  };
  std::vector<Candidate> candidates;
  {
    Candidate serial{"serial C-W-F-H", {}};
    serial.spec.stages = {{0}, {1}, {2}, {3}};
    candidates.push_back(serial);
    Candidate fig2{"C-W-(F||H)", {}};
    fig2.spec.stages = {{0}, {1}, {2, 3}};
    candidates.push_back(fig2);
    Candidate wide{"C-(W||F||H)", {}};
    wide.spec.stages = {{0}, {1, 2, 3}};
    candidates.push_back(wide);
  }
  const CostMetricKind metrics[] = {
      CostMetricKind::kExecutionTime, CostMetricKind::kSumCost,
      CostMetricKind::kRequestResponse, CostMetricKind::kCallCount,
      CostMetricKind::kBottleneck, CostMetricKind::kTimeToScreen};

  std::printf("  %-16s", "plan \\ metric");
  for (CostMetricKind m : metrics) std::printf(" %16s", CostMetricKindToString(m));
  std::printf("\n");
  std::vector<std::vector<double>> costs(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    QueryPlan plan = Unwrap(BuildPlan(query, candidates[c].spec), "build");
    ApplyAutoStrategies(&plan);
    CheckOk(AnnotatePlan(&plan).status(), "annotate");
    std::printf("  %-16s", candidates[c].label);
    for (CostMetricKind m : metrics) {
      double cost = Unwrap(PlanCost(plan, m), "cost");
      costs[c].push_back(cost);
      std::printf(" %16.1f", cost);
    }
    std::printf("\n");
  }
  std::printf("  winners:        ");
  for (size_t m = 0; m < 6; ++m) {
    size_t best = 0;
    for (size_t c = 1; c < candidates.size(); ++c) {
      if (costs[c][m] < costs[best][m]) best = c;
    }
    std::printf(" %16s", candidates[best].label);
  }
  std::printf("\n  shape expectation: time metrics reward the parallel plans;"
              "\n  call/sum metrics are indifferent or prefer serial chains.\n");
}

void ReportWsmsComparison() {
  Section("E11/2: WSMS baseline vs SeCo branch-and-bound");

  // (a) Exact-services-only query: Conference + Weather (WSMS home turf).
  {
    Scenario scenario = Unwrap(MakeConferenceScenario(), "scenario");
    ParsedQuery parsed = Unwrap(
        ParseQuery("select Conference1 as C, Weather1 as W where "
                   "CheckWeather(C, W) and C.Area = INPUT1 and "
                   "W.AvgTemp > INPUT2"),
        "parse");
    BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
    OptimizationResult wsms = Unwrap(WsmsOptimize(query, 10), "wsms");
    OptimizerOptions options;
    options.k = 10;
    options.metric = CostMetricKind::kBottleneck;
    Optimizer optimizer(options);
    OptimizationResult seco = Unwrap(optimizer.Optimize(query), "seco");
    std::printf("  exact-only query (bottleneck metric):\n");
    std::printf("    WSMS: cost=%.1f  est.answers=%.1f\n", wsms.cost,
                wsms.estimated_answers);
    std::printf("    SeCo: cost=%.1f  est.answers=%.1f\n", seco.cost,
                seco.estimated_answers);
    std::printf("    shape expectation: parity — [22] is optimal here.\n");
  }

  // (b) Search-service query: the movie running example.
  {
    Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
    ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
    BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
    OptimizationResult wsms = Unwrap(WsmsOptimize(query, 10), "wsms");
    OptimizerOptions options;
    options.k = 10;
    options.metric = CostMetricKind::kExecutionTime;
    Optimizer optimizer(options);
    OptimizationResult seco = Unwrap(optimizer.Optimize(query), "seco");

    auto execute = [&](const QueryPlan& plan) {
      ExecutionOptions exec_options;
      exec_options.k = 10;
      exec_options.input_bindings = scenario.inputs;
      exec_options.max_calls = 100000;
      ExecutionEngine engine(exec_options);
      return Unwrap(engine.Execute(plan), "execute");
    };
    ExecutionResult wsms_run = execute(wsms.plan);
    ExecutionResult seco_run = execute(seco.plan);
    std::printf("\n  search-service query (movie example, K=10):\n");
    std::printf("    %-6s %12s %12s %10s %12s\n", "", "est.answers",
                "answers", "calls", "elapsed(ms)");
    std::printf("    %-6s %12.1f %12zu %10d %12.0f\n", "WSMS",
                wsms.estimated_answers, wsms_run.combinations.size(),
                wsms_run.total_calls, wsms_run.elapsed_ms);
    std::printf("    %-6s %12.1f %12zu %10d %12.0f\n", "SeCo",
                seco.estimated_answers, seco_run.combinations.size(),
                seco_run.total_calls, seco_run.elapsed_ms);
    std::printf(
        "    shape expectation: WSMS (F=1, chunk-blind) cannot deliver the\n"
        "    requested 10 answers; SeCo grows fetch factors until it does.\n");
  }
}

void BM_WsmsOptimize(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WsmsOptimize(query, 10));
  }
}
BENCHMARK(BM_WsmsOptimize);

void BM_SecoOptimize(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  for (auto _ : state) {
    Optimizer optimizer(options);
    benchmark::DoNotOptimize(optimizer.Optimize(query));
  }
}
BENCHMARK(BM_SecoOptimize);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::ReportMetricDisagreement();
  seco::ReportWsmsComparison();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
