#ifndef SECO_BENCH_BENCH_UTIL_H_
#define SECO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/seco.h"

namespace seco {
namespace bench_util {

/// Aborts the bench with a message when a Status is not OK (benches are
/// driver binaries; failing loudly is the right behaviour).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Prints a horizontal rule + centered section title.
inline void Section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// A registry with a *tree* of `n` keyed search services S0..S(n-1): S0 has
/// no inputs; each S(i>0) takes Key as input, piped from its tree parent
/// S((i-1)/2)'s Next output. The tree shape admits many valid topologies
/// (siblings can run in any order or in parallel), exercising the
/// optimizer's combinatorial Phase 2 search. Used by the scaling
/// experiments.
struct ChainScenario {
  std::shared_ptr<ServiceRegistry> registry;
  std::string query_text;
  /// Backends by interface name, for fault injection and introspection.
  std::map<std::string, std::shared_ptr<SimulatedService>> backends;
};

inline Result<ChainScenario> MakeChainScenario(int n, int rows = 400,
                                               int chunk = 10,
                                               uint64_t seed = 99) {
  ChainScenario scenario;
  scenario.registry = std::make_shared<ServiceRegistry>();
  SplitMix64 rng(seed);
  std::string select = "select ";
  std::string where = "where ";
  for (int i = 0; i < n; ++i) {
    std::string name = "S" + std::to_string(i);
    SimServiceBuilder builder(name);
    builder
        .Schema({AttributeDef::Atomic("Key", ValueType::kInt),
                 AttributeDef::Atomic("Next", ValueType::kInt),
                 AttributeDef::Atomic("Relevance", ValueType::kDouble)})
        .Pattern({{"Key", i == 0 ? Adornment::kOutput : Adornment::kInput},
                  {"Next", Adornment::kOutput},
                  {"Relevance", Adornment::kRanked}})
        .Kind(ServiceKind::kSearch)
        .Seed(seed + i);
    ServiceStats stats;
    stats.chunk_size = chunk;
    stats.latency_ms = 60.0 + 30.0 * (i % 3);
    stats.cost_per_call = 1.0;
    stats.decay = i % 2 == 0 ? ScoreDecay::kLinear : ScoreDecay::kQuadratic;
    stats.avg_matches_per_binding =
        i == 0 ? rows : static_cast<double>(rows) / 8;
    builder.Stats(stats);
    for (int r = 0; r < rows; ++r) {
      double quality = 1.0 - static_cast<double>(r) / rows;
      int64_t key = static_cast<int64_t>(rng.Uniform(8));
      int64_t next = static_cast<int64_t>(rng.Uniform(8));
      builder.AddRow(Tuple({Value(key), Value(next), Value(quality)}), quality);
    }
    auto mart = std::make_shared<ServiceMart>(
        "M" + std::to_string(i),
        std::make_shared<ServiceSchema>(
            name, std::vector<AttributeDef>{
                      AttributeDef::Atomic("Key", ValueType::kInt),
                      AttributeDef::Atomic("Next", ValueType::kInt),
                      AttributeDef::Atomic("Relevance", ValueType::kDouble)}));
    SECO_RETURN_IF_ERROR(scenario.registry->RegisterMart(mart));
    SECO_ASSIGN_OR_RETURN(BuiltService built,
                          builder.BuildInto(*scenario.registry, mart->name()));
    scenario.backends[name] = built.backend;
    if (i > 0) {
      select += ", ";
      if (i > 1) where += " and ";
    }
    select += name + " as A" + std::to_string(i);
    if (i == 0) {
      // The root contributes no predicate: for n >= 2 the first Link
      // supplies the query's mandatory condition. (n == 1 would need a
      // dummy selection; the scaling experiments use n >= 2.)
    } else {
      int parent = (i - 1) / 2;
      // Register the edge as a connection pattern carrying the true join
      // selectivity (keys uniform over 8 values -> 1/8).
      auto link = std::make_shared<ConnectionPattern>(
          "Link" + std::to_string(i), "M" + std::to_string(parent),
          "M" + std::to_string(i),
          std::vector<ConnectionClause>{{"Next", Comparator::kEq, "Key"}});
      link->set_selectivity(1.0 / 8);
      SECO_RETURN_IF_ERROR(scenario.registry->RegisterConnectionPattern(link));
      where += "Link" + std::to_string(i) + "(A" + std::to_string(parent) +
               ", A" + std::to_string(i) + ")";
    }
  }
  scenario.query_text = select + " " + where;
  return scenario;
}

/// Collects named metrics during a bench run and writes them as
/// `BENCH_<name>.json` on destruction, so CI can upload machine-readable
/// artifacts next to the human-readable stdout tables. Output directory is
/// `$SECO_BENCH_DIR` (falls back to the working directory); the git revision
/// is taken from `$SECO_GIT_REV` when the driver exports it.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  ~BenchJsonWriter() { Flush(); }

  /// Records one measurement: a metric name, the configuration cell it was
  /// measured under (free-form, e.g. "kernel=avx2 chunk=10"), a unit, and
  /// the value. Re-recording the same (metric, config) overwrites — so
  /// google-benchmark's repeated timing invocations keep the last value
  /// instead of accumulating duplicates.
  void Record(const std::string& metric, const std::string& config,
              const std::string& unit, double value) {
    for (Entry& e : entries_) {
      if (e.metric == metric && e.config == config) {
        e.unit = unit;
        e.value = value;
        return;
      }
    }
    entries_.push_back(Entry{metric, config, unit, value});
  }

  /// Writes the file now (also called by the destructor; idempotent).
  void Flush() {
    if (flushed_ || entries_.empty()) return;
    flushed_ = true;
    std::string dir = ".";
    if (const char* env = std::getenv("SECO_BENCH_DIR")) {
      if (env[0] != '\0') dir = env;
    }
    std::string rev = "unknown";
    if (const char* env = std::getenv("SECO_GIT_REV")) {
      if (env[0] != '\0') rev = env;
    }
    std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJsonWriter: cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 Escaped(bench_name_).c_str(), Escaped(rev).c_str());
    std::fprintf(f, "  \"entries\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(
          f,
          "    {\"metric\": \"%s\", \"config\": \"%s\", \"unit\": \"%s\", "
          "\"value\": %.17g}%s\n",
          Escaped(e.metric).c_str(), Escaped(e.config).c_str(),
          Escaped(e.unit).c_str(), e.value, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
  }

 private:
  struct Entry {
    std::string metric;
    std::string config;
    std::string unit;
    double value;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Entry> entries_;
  bool flushed_ = false;
};

/// Kendall-tau-style concordance of a result sequence against its ideal
/// (descending combined score) order: 1.0 = already sorted, 0 = random,
/// negative = reversed. Measures "approximate ranking" quality (§4.1).
inline double RankConcordance(const std::vector<double>& scores) {
  if (scores.size() < 2) return 1.0;
  long concordant = 0, discordant = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    for (size_t j = i + 1; j < scores.size(); ++j) {
      if (scores[i] > scores[j] + 1e-12) {
        ++concordant;
      } else if (scores[i] < scores[j] - 1e-12) {
        ++discordant;
      }
    }
  }
  long total = concordant + discordant;
  if (total == 0) return 1.0;
  return static_cast<double>(concordant - discordant) / total;
}

}  // namespace bench_util
}  // namespace seco

#endif  // SECO_BENCH_BENCH_UTIL_H_
