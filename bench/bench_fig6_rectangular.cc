// Experiment E4: rectangular completion and its degenerate case (Fig. 6).
//
// A strong asymmetry in the two services' rankings pushes the merge-scan
// ratio toward one side, producing a "long and thin" explored rectangle in
// which each additional call adds only one tile. We measure tiles gained per
// request-response across asymmetry levels.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

struct AsymmetryOutcome {
  int calls_x = 0;
  int calls_y = 0;
  size_t tiles = 0;
  double tiles_per_call = 0;
};

AsymmetryOutcome RunRatio(int rx, int ry, int max_calls) {
  SyntheticPairParams params;
  params.rows_x = 200;
  params.rows_y = 200;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 1000;  // no matches: pure exploration structure
  SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = JoinInvocation::kMergeScan;
  config.strategy.completion = JoinCompletion::kRectangular;
  config.strategy.ratio_x = rx;
  config.strategy.ratio_y = ry;
  config.k = 1;  // unreachable: explore to the call budget
  config.max_calls = max_calls;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  JoinExecution exec = Unwrap(executor.Run(), "run");
  AsymmetryOutcome outcome;
  outcome.calls_x = exec.calls_x;
  outcome.calls_y = exec.calls_y;
  outcome.tiles = exec.tile_order.size();
  outcome.tiles_per_call = static_cast<double>(exec.tile_order.size()) /
                           (exec.calls_x + exec.calls_y);
  return outcome;
}

void Report() {
  Section("E4: rectangular completion under ranking asymmetry (Fig. 6)");
  std::printf("  %-12s | %8s %8s %8s %14s\n", "ratio x:y", "calls_x",
              "calls_y", "tiles", "tiles/call");
  struct RatioCase {
    int rx, ry;
    const char* label;
  };
  for (const auto& [rx, ry, label] :
       {RatioCase{1, 1, "balanced"}, RatioCase{2, 1, "mild"},
        RatioCase{5, 1, "strong"}, RatioCase{12, 1, "degenerate"}}) {
    AsymmetryOutcome outcome = RunRatio(rx, ry, 16);
    std::printf("  %2d:%-9d | %8d %8d %8zu %14.2f   (%s)\n", rx, ry,
                outcome.calls_x, outcome.calls_y, outcome.tiles,
                outcome.tiles_per_call, label);
  }
  std::printf(
      "\n  shape expectation: the balanced 1:1 ratio grows a square and each\n"
      "  call adds ~sqrt(area) tiles; the degenerate long-and-thin rectangle\n"
      "  approaches 1 tile per call (the Fig. 6 worst case).\n");

  Section("tiles gained after each call (1:1 vs 12:1), 16-call budget");
  for (const auto& [rx, ry] : {std::pair{1, 1}, std::pair{12, 1}}) {
    std::printf("  ratio %d:%d gains:", rx, ry);
    // Re-run and replay events to report per-call tile deltas.
    SyntheticPairParams params;
    params.rows_x = 200;
    params.rows_y = 200;
    params.key_domain = 1000;
    SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    ParallelJoinConfig config;
    config.strategy.invocation = JoinInvocation::kMergeScan;
    config.strategy.completion = JoinCompletion::kRectangular;
    config.strategy.ratio_x = rx;
    config.strategy.ratio_y = ry;
    config.k = 1;
    config.max_calls = 16;
    ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
    JoinExecution exec = Unwrap(executor.Run(), "run");
    int since_fetch = 0;
    bool first = true;
    for (const JoinEvent& event : exec.events) {
      if (event.kind == JoinEventKind::kProcessTile) {
        ++since_fetch;
      } else {
        if (!first) std::printf(" %d", since_fetch);
        first = false;
        since_fetch = 0;
      }
    }
    std::printf(" %d\n", since_fetch);
  }
}

void BM_RectangularBalanced(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(RunRatio(1, 1, 16));
}
BENCHMARK(BM_RectangularBalanced);

void BM_RectangularDegenerate(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(RunRatio(12, 1, 16));
}
BENCHMARK(BM_RectangularDegenerate);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
