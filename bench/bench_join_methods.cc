// Experiment E6: the §4.5 join-method classification — topology (pipe /
// parallel) x invocation (nested-loop / merge-scan) x completion
// (rectangular / triangular) = 8 combinations.
//
// For each combination we measure service calls to k results, simulated
// elapsed time (pipe joins serialize; parallel joins overlap), and the
// ranking quality of the emitted stream, under both a step-scoring and a
// progressive-scoring outer service. The chapter's qualitative claims to
// check: pipe joins pair naturally with NL/rectangular; parallel joins with
// MS; triangular approximates extraction-optimality for progressive decay.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::RankConcordance;
using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

struct MethodOutcome {
  int calls = 0;
  double elapsed_ms = 0;
  size_t results = 0;
  double concordance = 0;
};

SyntheticPairParams BaseParams(ScoreDecay decay_x) {
  SyntheticPairParams params;
  params.rows_x = 250;
  params.rows_y = 250;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 40;  // sparse enough that strategies must explore
  params.decay_x = decay_x;
  params.step_h_x = 2;
  return params;
}

MethodOutcome RunParallel(ScoreDecay decay_x, JoinInvocation invocation,
                          JoinCompletion completion, int k,
                          bool columnar = false) {
  SyntheticPair pair = Unwrap(MakeSyntheticPair(BaseParams(decay_x)), "pair");
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = invocation;
  config.strategy.completion = completion;
  config.k = k;
  config.max_calls = 200;
  if (columnar) {
    config.columns = ColumnJoinSpec{AttrPath{0, -1}, AttrPath{0, -1}};
  }
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  JoinExecution exec = Unwrap(executor.Run(), "run");
  MethodOutcome outcome;
  outcome.calls = exec.calls_x + exec.calls_y;
  outcome.elapsed_ms = exec.latency_parallel_ms;
  outcome.results = exec.results.size();
  std::vector<double> scores;
  for (const JoinResultTuple& r : exec.results) scores.push_back(r.combined);
  outcome.concordance = RankConcordance(scores);
  return outcome;
}

// Pipe topology: the inner service is keyed on the join attribute, so each
// outer tuple drives an inner request. "Invocation" maps to how many inner
// fetches each outer tuple gets (NL: per-tuple fetches; MS approximated by
// fetches_per_input=1 with alternation impossible — pipes are inherently
// outer-driven, which is why the chapter pairs pipes with nested loops).
MethodOutcome RunPipe(ScoreDecay decay_x, int fetches_per_input,
                      JoinCompletion completion, int k) {
  SyntheticPairParams params = BaseParams(decay_x);
  SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "outer pair");
  // Build an inner service with Key as input (same data distribution).
  SimServiceBuilder inner_builder("PipedY");
  inner_builder
      .Schema({AttributeDef::Atomic("Key", ValueType::kInt),
               AttributeDef::Atomic("Val", ValueType::kString),
               AttributeDef::Atomic("Relevance", ValueType::kDouble)})
      .Pattern({{"Key", Adornment::kInput},
                {"Val", Adornment::kOutput},
                {"Relevance", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(77);
  ServiceStats stats;
  stats.chunk_size = params.chunk_y;
  stats.latency_ms = params.latency_y_ms;
  stats.decay = params.decay_y;
  inner_builder.Stats(stats);
  SplitMix64 rng(31);
  for (int i = 0; i < params.rows_y; ++i) {
    double quality = 1.0 - static_cast<double>(i) / params.rows_y;
    inner_builder.AddRow(
        Tuple({Value(static_cast<int64_t>(rng.Uniform(params.key_domain))),
               Value("y#" + std::to_string(i)), Value(quality)}),
        quality);
  }
  BuiltService inner = Unwrap(inner_builder.Build(), "inner");

  ChunkSource outer(pair.x.interface, {});
  PipeJoinConfig config;
  config.k = k;
  config.max_calls = 200;
  config.fetches_per_input = fetches_per_input;
  // Triangular completion for a pipe: keep only the best inner tuples per
  // outer tuple (the analogue of cutting the far corner of each row).
  config.keep_per_input = completion == JoinCompletion::kTriangular ? 3 : 0;
  JoinExecution exec = Unwrap(
      RunPipeJoin(&outer, inner.interface,
                  [](const Tuple& t) {
                    return std::vector<Value>{t.AtomicAt(0)};
                  },
                  nullptr, config),
      "pipe run");
  MethodOutcome outcome;
  outcome.calls = exec.calls_x + exec.calls_y;
  outcome.elapsed_ms = exec.latency_parallel_ms;
  outcome.results = exec.results.size();
  std::vector<double> scores;
  for (const JoinResultTuple& r : exec.results) scores.push_back(r.combined);
  outcome.concordance = RankConcordance(scores);
  return outcome;
}

/// E6b: per-chunk join throughput — the scalar tree-walk predicate (the
/// seed's inner loop: Value::Compare per pair) against the columnar kernels
/// (decode once into flat key arrays, then batch equality scans) at each
/// compiled ISA level. All variants produce identical pair lists; only the
/// clock differs.
void ColumnarThroughput(bench_util::BenchJsonWriter* json) {
  Section("E6b: per-chunk columnar kernels vs tree-walk predicate");
  const size_t n = 256;  // one decoded batch per side
  SplitMix64 rng(123);
  std::vector<Tuple> tx, ty;
  std::vector<double> sx, sy;
  std::vector<int64_t> kx, ky;
  for (size_t i = 0; i < n; ++i) {
    int64_t key_x = static_cast<int64_t>(rng.Uniform(64));
    int64_t key_y = static_cast<int64_t>(rng.Uniform(64));
    kx.push_back(key_x);
    ky.push_back(key_y);
    sx.push_back(1.0 - static_cast<double>(i) / n);
    sy.push_back(1.0 - 0.5 * static_cast<double>(i) / n);
    tx.push_back(Tuple({Value(key_x), Value(sx.back())}));
    ty.push_back(Tuple({Value(key_y), Value(sy.back())}));
  }
  const AttrPath key_path{0, -1};

  // Wall-time a thunk for ~80ms and return pairs compared per second.
  auto throughput = [&](auto&& body) {
    body();  // warm-up
    auto start = std::chrono::steady_clock::now();
    long long iters = 0;
    double secs = 0.0;
    do {
      body();
      ++iters;
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
    } while (secs < 0.08);
    return static_cast<double>(iters) * static_cast<double>(n) *
           static_cast<double>(n) / secs;
  };

  size_t sink = 0;
  double tree_walk = throughput([&] {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        Result<bool> eq = tx[i].ValueAt(key_path).Compare(
            Comparator::kEq, ty[j].ValueAt(key_path));
        if (eq.ok() && eq.value()) ++sink;
      }
    }
  });
  std::printf("  %-22s %12.1fM pairs/s\n", "tree-walk predicate",
              tree_walk / 1e6);
  json->Record("match_pairs_throughput", "variant=tree_walk", "pairs_per_sec",
               tree_walk);

  KeyDictionary dict;
  ColumnChunk cx = ColumnChunk::Decode(tx, sx, key_path, &dict);
  ColumnChunk cy = ColumnChunk::Decode(ty, sy, key_path, &dict);
  std::vector<simd::RowPair> pairs;
  std::vector<simd::Kernel> variants = {simd::Kernel::kScalar,
                                        simd::Kernel::kSse2};
  if (simd::Avx2Available()) variants.push_back(simd::Kernel::kAvx2);
  double scalar_columnar = 0.0;
  for (simd::Kernel k : variants) {
    simd::SetKernelOverride(k);
    if (simd::ActiveKernel() != k) continue;  // not compiled in / no CPU
    double rate = throughput([&] {
      pairs.clear();
      simd::MatchEqPairsI64(cx.key().i64, n, cy.key().i64, n, &pairs);
      sink += pairs.size();
    });
    if (k == simd::Kernel::kScalar) scalar_columnar = rate;
    char suffix[64] = "";
    if (k != simd::Kernel::kScalar && scalar_columnar > 0.0) {
      std::snprintf(suffix, sizeof(suffix), ", %.1fx scalar columnar",
                    rate / scalar_columnar);
    }
    std::printf("  %-22s %12.1fM pairs/s   (%5.1fx tree-walk%s)\n",
                (std::string("columnar ") + simd::KernelName(k)).c_str(),
                rate / 1e6, rate / tree_walk, suffix);
    json->Record("match_pairs_throughput",
                 std::string("variant=") + simd::KernelName(k),
                 "pairs_per_sec", rate);
  }
  simd::SetKernelOverride(std::nullopt);
  benchmark::DoNotOptimize(sink);

  // End-to-end sanity: the columnar parallel join returns bit-identical
  // results to the tree-walk run (same scores, same order).
  MethodOutcome plain = RunParallel(ScoreDecay::kLinear,
                                    JoinInvocation::kMergeScan,
                                    JoinCompletion::kRectangular, 20, false);
  MethodOutcome col = RunParallel(ScoreDecay::kLinear,
                                  JoinInvocation::kMergeScan,
                                  JoinCompletion::kRectangular, 20, true);
  std::printf("  end-to-end parallel join: %zu results tree-walk, %zu columnar"
              " (%s)\n",
              plain.results, col.results,
              plain.results == col.results && plain.calls == col.calls
                  ? "identical"
                  : "MISMATCH");
  json->Record("e2e_results_match", "parallel_ms_rect_k20", "bool",
               plain.results == col.results ? 1.0 : 0.0);
}

void Report() {
  bench_util::BenchJsonWriter json("join_methods");
  for (ScoreDecay decay : {ScoreDecay::kStep, ScoreDecay::kLinear}) {
    Section(std::string("E6: 8 join methods, outer decay = ") +
            ScoreDecayToString(decay) + ", k=20");
    std::printf("  %-10s %-14s %-13s | %6s %10s %8s %8s\n", "topology",
                "invocation", "completion", "calls", "time(ms)", "results",
                "quality");
    for (JoinInvocation invocation :
         {JoinInvocation::kNestedLoop, JoinInvocation::kMergeScan}) {
      for (JoinCompletion completion :
           {JoinCompletion::kRectangular, JoinCompletion::kTriangular}) {
        MethodOutcome outcome = RunParallel(decay, invocation, completion, 20);
        std::printf("  %-10s %-14s %-13s | %6d %10.0f %8zu %8.3f\n", "parallel",
                    JoinInvocationToString(invocation),
                    JoinCompletionToString(completion), outcome.calls,
                    outcome.elapsed_ms, outcome.results, outcome.concordance);
        json.Record("join_calls",
                    std::string("topology=parallel invocation=") +
                        JoinInvocationToString(invocation) + " completion=" +
                        JoinCompletionToString(completion) + " decay=" +
                        ScoreDecayToString(decay),
                    "calls", outcome.calls);
      }
    }
    for (int fetches : {1, 2}) {
      for (JoinCompletion completion :
           {JoinCompletion::kRectangular, JoinCompletion::kTriangular}) {
        MethodOutcome outcome = RunPipe(decay, fetches, completion, 20);
        std::printf("  %-10s %-14s %-13s | %6d %10.0f %8zu %8.3f\n", "pipe",
                    fetches == 1 ? "NL f=1" : "NL f=2",
                    JoinCompletionToString(completion), outcome.calls,
                    outcome.elapsed_ms, outcome.results, outcome.concordance);
      }
    }
  }
  std::printf(
      "\n  shape expectations: parallel joins finish in less simulated time\n"
      "  than pipes at similar call counts (calls overlap); triangular skips\n"
      "  low-score tiles but needs extra fetches to reach k on sparse joins\n"
      "  (the extraction-order/cost trade-off); NL + triangular pays both\n"
      "  penalties at once -- the SS4.5 combination that 'makes little\n"
      "  sense in practice'.\n");
  ColumnarThroughput(&json);
}

void BM_ParallelMergeScan(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunParallel(ScoreDecay::kLinear,
                                         JoinInvocation::kMergeScan,
                                         JoinCompletion::kTriangular, 20));
  }
}
BENCHMARK(BM_ParallelMergeScan);

void BM_PipeNestedLoop(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunPipe(ScoreDecay::kLinear, 1, JoinCompletion::kRectangular, 20));
  }
}
BENCHMARK(BM_PipeNestedLoop);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
