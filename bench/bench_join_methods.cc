// Experiment E6: the §4.5 join-method classification — topology (pipe /
// parallel) x invocation (nested-loop / merge-scan) x completion
// (rectangular / triangular) = 8 combinations.
//
// For each combination we measure service calls to k results, simulated
// elapsed time (pipe joins serialize; parallel joins overlap), and the
// ranking quality of the emitted stream, under both a step-scoring and a
// progressive-scoring outer service. The chapter's qualitative claims to
// check: pipe joins pair naturally with NL/rectangular; parallel joins with
// MS; triangular approximates extraction-optimality for progressive decay.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::RankConcordance;
using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

struct MethodOutcome {
  int calls = 0;
  double elapsed_ms = 0;
  size_t results = 0;
  double concordance = 0;
};

SyntheticPairParams BaseParams(ScoreDecay decay_x) {
  SyntheticPairParams params;
  params.rows_x = 250;
  params.rows_y = 250;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 40;  // sparse enough that strategies must explore
  params.decay_x = decay_x;
  params.step_h_x = 2;
  return params;
}

MethodOutcome RunParallel(ScoreDecay decay_x, JoinInvocation invocation,
                          JoinCompletion completion, int k) {
  SyntheticPair pair = Unwrap(MakeSyntheticPair(BaseParams(decay_x)), "pair");
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = invocation;
  config.strategy.completion = completion;
  config.k = k;
  config.max_calls = 200;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  JoinExecution exec = Unwrap(executor.Run(), "run");
  MethodOutcome outcome;
  outcome.calls = exec.calls_x + exec.calls_y;
  outcome.elapsed_ms = exec.latency_parallel_ms;
  outcome.results = exec.results.size();
  std::vector<double> scores;
  for (const JoinResultTuple& r : exec.results) scores.push_back(r.combined);
  outcome.concordance = RankConcordance(scores);
  return outcome;
}

// Pipe topology: the inner service is keyed on the join attribute, so each
// outer tuple drives an inner request. "Invocation" maps to how many inner
// fetches each outer tuple gets (NL: per-tuple fetches; MS approximated by
// fetches_per_input=1 with alternation impossible — pipes are inherently
// outer-driven, which is why the chapter pairs pipes with nested loops).
MethodOutcome RunPipe(ScoreDecay decay_x, int fetches_per_input,
                      JoinCompletion completion, int k) {
  SyntheticPairParams params = BaseParams(decay_x);
  SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "outer pair");
  // Build an inner service with Key as input (same data distribution).
  SimServiceBuilder inner_builder("PipedY");
  inner_builder
      .Schema({AttributeDef::Atomic("Key", ValueType::kInt),
               AttributeDef::Atomic("Val", ValueType::kString),
               AttributeDef::Atomic("Relevance", ValueType::kDouble)})
      .Pattern({{"Key", Adornment::kInput},
                {"Val", Adornment::kOutput},
                {"Relevance", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(77);
  ServiceStats stats;
  stats.chunk_size = params.chunk_y;
  stats.latency_ms = params.latency_y_ms;
  stats.decay = params.decay_y;
  inner_builder.Stats(stats);
  SplitMix64 rng(31);
  for (int i = 0; i < params.rows_y; ++i) {
    double quality = 1.0 - static_cast<double>(i) / params.rows_y;
    inner_builder.AddRow(
        Tuple({Value(static_cast<int64_t>(rng.Uniform(params.key_domain))),
               Value("y#" + std::to_string(i)), Value(quality)}),
        quality);
  }
  BuiltService inner = Unwrap(inner_builder.Build(), "inner");

  ChunkSource outer(pair.x.interface, {});
  PipeJoinConfig config;
  config.k = k;
  config.max_calls = 200;
  config.fetches_per_input = fetches_per_input;
  // Triangular completion for a pipe: keep only the best inner tuples per
  // outer tuple (the analogue of cutting the far corner of each row).
  config.keep_per_input = completion == JoinCompletion::kTriangular ? 3 : 0;
  JoinExecution exec = Unwrap(
      RunPipeJoin(&outer, inner.interface,
                  [](const Tuple& t) {
                    return std::vector<Value>{t.AtomicAt(0)};
                  },
                  nullptr, config),
      "pipe run");
  MethodOutcome outcome;
  outcome.calls = exec.calls_x + exec.calls_y;
  outcome.elapsed_ms = exec.latency_parallel_ms;
  outcome.results = exec.results.size();
  std::vector<double> scores;
  for (const JoinResultTuple& r : exec.results) scores.push_back(r.combined);
  outcome.concordance = RankConcordance(scores);
  return outcome;
}

void Report() {
  for (ScoreDecay decay : {ScoreDecay::kStep, ScoreDecay::kLinear}) {
    Section(std::string("E6: 8 join methods, outer decay = ") +
            ScoreDecayToString(decay) + ", k=20");
    std::printf("  %-10s %-14s %-13s | %6s %10s %8s %8s\n", "topology",
                "invocation", "completion", "calls", "time(ms)", "results",
                "quality");
    for (JoinInvocation invocation :
         {JoinInvocation::kNestedLoop, JoinInvocation::kMergeScan}) {
      for (JoinCompletion completion :
           {JoinCompletion::kRectangular, JoinCompletion::kTriangular}) {
        MethodOutcome outcome = RunParallel(decay, invocation, completion, 20);
        std::printf("  %-10s %-14s %-13s | %6d %10.0f %8zu %8.3f\n", "parallel",
                    JoinInvocationToString(invocation),
                    JoinCompletionToString(completion), outcome.calls,
                    outcome.elapsed_ms, outcome.results, outcome.concordance);
      }
    }
    for (int fetches : {1, 2}) {
      for (JoinCompletion completion :
           {JoinCompletion::kRectangular, JoinCompletion::kTriangular}) {
        MethodOutcome outcome = RunPipe(decay, fetches, completion, 20);
        std::printf("  %-10s %-14s %-13s | %6d %10.0f %8zu %8.3f\n", "pipe",
                    fetches == 1 ? "NL f=1" : "NL f=2",
                    JoinCompletionToString(completion), outcome.calls,
                    outcome.elapsed_ms, outcome.results, outcome.concordance);
      }
    }
  }
  std::printf(
      "\n  shape expectations: parallel joins finish in less simulated time\n"
      "  than pipes at similar call counts (calls overlap); triangular skips\n"
      "  low-score tiles but needs extra fetches to reach k on sparse joins\n"
      "  (the extraction-order/cost trade-off); NL + triangular pays both\n"
      "  penalties at once -- the SS4.5 combination that 'makes little\n"
      "  sense in practice'.\n");
}

void BM_ParallelMergeScan(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunParallel(ScoreDecay::kLinear,
                                         JoinInvocation::kMergeScan,
                                         JoinCompletion::kTriangular, 20));
  }
}
BENCHMARK(BM_ParallelMergeScan);

void BM_PipeNestedLoop(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunPipe(ScoreDecay::kLinear, 1, JoinCompletion::kRectangular, 20));
  }
}
BENCHMARK(BM_PipeNestedLoop);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
