// Experiment E-REL: reliability layer over the Fig. 2/3 conference-trip
// plan — transient fault injection across failure rates, retry recovery,
// and graceful degradation under a permanent outage.
//
// The report prints, per fault rate, the recovered execution next to the
// fault-free baseline: answers, charged calls, and the simulated clock must
// be *bit-identical* (the determinism contract of docs/RELIABILITY.md — a
// recovered retry returns the identical response the fault-free run got),
// with the reliability overhead (attempts, retries, backoff) reported
// separately. The benchmark section measures the real per-execution cost of
// the decorator stack.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  BoundQuery query;
  QueryPlan plan;
};

Fixture MakeFixture() {
  Fixture fx;
  fx.scenario = Unwrap(MakeConferenceScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(fx.scenario.query_text), "parse");
  fx.query = Unwrap(BindQuery(parsed, *fx.scenario.registry), "bind");
  TopologySpec spec;  // Conference -> Weather -> (Flight || Hotel) -> MS
  spec.stages = {{0}, {1}, {2, 3}};
  spec.parallel_strategy.invocation = JoinInvocation::kMergeScan;
  spec.parallel_strategy.completion = JoinCompletion::kTriangular;
  spec.atom_settings[2].fetch_factor = 2;
  spec.atom_settings[3].fetch_factor = 2;
  fx.plan = Unwrap(BuildPlan(fx.query, spec), "build");
  ApplyAutoStrategies(&fx.plan);
  AnnotationParams params;
  params.k = 10;
  CheckOk(AnnotatePlan(&fx.plan, params).status(), "annotate");
  return fx;
}

void InjectFaults(Fixture* fx, double rate, int attempts) {
  for (auto& [name, backend] : fx->scenario.backends) {
    FaultProfile profile;
    profile.transient_rate = rate;
    profile.transient_attempts = attempts;
    backend->set_fault_profile(profile);
  }
}

ExecutionResult RunOnce(const Fixture& fx, const ReliabilityPolicy& policy) {
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  options.reliability = policy;
  ExecutionEngine engine(options);
  return Unwrap(engine.Execute(fx.plan), "execute");
}

void Report() {
  Section("E-REL: fault-free baseline (conference-trip plan, k=10)");
  Fixture clean = MakeFixture();
  ExecutionResult baseline = RunOnce(clean, ReliabilityPolicy{});
  std::printf("  answers %zu  calls %d  simulated %.0f ms\n",
              baseline.combinations.size(), baseline.total_calls,
              baseline.elapsed_ms);

  Section("recovery across transient fault rates (3 retries)");
  std::printf("  %-6s %-8s %-6s %-10s %-9s %-8s %-11s %s\n", "rate",
              "answers", "calls", "simulated", "attempts", "retries",
              "backoff ms", "identical?");
  for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    Fixture fx = MakeFixture();
    InjectFaults(&fx, rate, /*attempts=*/2);
    ReliabilityPolicy policy;
    policy.retry.max_retries = 3;
    ExecutionResult result = RunOnce(fx, policy);
    bool identical = result.combinations.size() ==
                         baseline.combinations.size() &&
                     result.total_calls == baseline.total_calls &&
                     result.elapsed_ms == baseline.elapsed_ms;
    std::printf("  %-6.2f %-8zu %-6d %-10.0f %-9lld %-8lld %-11.1f %s\n",
                rate, result.combinations.size(), result.total_calls,
                result.elapsed_ms,
                static_cast<long long>(result.reliability.attempts),
                static_cast<long long>(result.reliability.retries),
                result.reliability.backoff_ms, identical ? "yes" : "NO");
  }

  Section("graceful degradation: permanent Hotel outage");
  {
    Fixture fx = MakeFixture();
    for (auto& [name, backend] : fx.scenario.backends) {
      if (name.rfind("Hotel", 0) == 0) {
        FaultProfile profile;
        profile.permanent_outage = true;
        backend->set_fault_profile(profile);
      }
    }
    ReliabilityPolicy policy;
    policy.retry.max_retries = 1;
    policy.degrade = true;
    ExecutionResult result = RunOnce(fx, policy);
    std::printf("  answers %zu (complete: %s)\n", result.combinations.size(),
                result.complete ? "yes" : "no — partial");
    for (const DegradedStatus& d : result.degraded) {
      std::printf("  degraded node %d (%s): %d failed bindings — %s\n",
                  d.node, d.service.c_str(), d.failed_bindings,
                  d.reason.c_str());
    }
  }
}

// Per-execution wall cost of the inert policy (the historical fast path).
void BM_ExecuteNoPolicy(benchmark::State& state) {
  Fixture fx = MakeFixture();
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_ExecuteNoPolicy);

// Decorator-stack overhead with a live policy but no faults: budget claims,
// ledger updates, and breaker checks on every call, zero retries.
void BM_ExecutePolicyNoFaults(benchmark::State& state) {
  Fixture fx = MakeFixture();
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  options.reliability.retry.max_retries = 3;
  options.reliability.breaker_failure_threshold = 5;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_ExecutePolicyNoFaults);

// Full recovery path: 10% transient faults, every stricken request retried.
void BM_ExecutePolicyFaulted(benchmark::State& state) {
  Fixture fx = MakeFixture();
  InjectFaults(&fx, 0.10, 2);
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  options.reliability.retry.max_retries = 3;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_ExecutePolicyFaulted);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
