// Experiment E7: the four alternative topologies of Fig. 9 for the running
// example, costed under every metric and actually executed.
//
//   (a) Movie -> Theatre -> Restaurant        (all serial, M first)
//   (b) Theatre -> Movie -> Restaurant        (all serial, T first)
//   (c) Theatre -> Restaurant -> Movie        (R piped early, M last)
//   (d) (Movie || Theatre) -> MS join -> Restaurant   (the chapter's pick)

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  BoundQuery query;
};

Fixture MakeFixture() {
  Fixture fx;
  fx.scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(fx.scenario.query_text), "parse");
  fx.query = Unwrap(BindQuery(parsed, *fx.scenario.registry), "bind");
  for (BoundSelection& sel : fx.query.selections) {
    if (sel.op == Comparator::kGt) sel.selectivity = 1.0;
  }
  return fx;
}

QueryPlan MakeTopology(const Fixture& fx, char which) {
  TopologySpec spec;
  switch (which) {
    case 'a':
      spec.stages = {{0}, {1}, {2}};
      break;
    case 'b':
      spec.stages = {{1}, {0}, {2}};
      break;
    case 'c':
      spec.stages = {{1}, {2}, {0}};
      break;
    case 'd':
    default:
      spec.stages = {{0, 1}, {2}};
      break;
  }
  spec.parallel_strategy.invocation = JoinInvocation::kMergeScan;
  spec.parallel_strategy.completion = JoinCompletion::kTriangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  spec.atom_settings[2].fetch_factor = 1;
  spec.atom_settings[2].keep_per_input = 1;
  QueryPlan plan = Unwrap(BuildPlan(fx.query, spec), "build");
  AnnotationParams params;
  params.k = 10;
  CheckOk(AnnotatePlan(&plan, params).status(), "annotate");
  return plan;
}

void Report() {
  Fixture fx = MakeFixture();
  Section("E7: four topologies of Fig. 9 under every cost metric");
  const CostMetricKind metrics[] = {
      CostMetricKind::kExecutionTime, CostMetricKind::kSumCost,
      CostMetricKind::kRequestResponse, CostMetricKind::kCallCount,
      CostMetricKind::kBottleneck, CostMetricKind::kTimeToScreen};
  std::printf("  %-10s", "topology");
  for (CostMetricKind m : metrics) {
    std::printf(" %16s", CostMetricKindToString(m));
  }
  std::printf(" %10s\n", "est.ans");
  struct Winner {
    char topo = '?';
    double cost = 1e30;
  };
  Winner winners[6];
  for (char which : {'a', 'b', 'c', 'd'}) {
    QueryPlan plan = MakeTopology(fx, which);
    std::printf("  (%c)       ", which);
    for (size_t m = 0; m < 6; ++m) {
      double cost = Unwrap(PlanCost(plan, metrics[m]), "cost");
      std::printf(" %16.1f", cost);
      if (cost < winners[m].cost) {
        winners[m] = {which, cost};
      }
    }
    std::printf(" %10.1f\n", plan.node(plan.output_node()).t_in);
  }
  std::printf("\n  winners: ");
  for (size_t m = 0; m < 6; ++m) {
    std::printf("%s->(%c)  ", CostMetricKindToString(metrics[m]),
                winners[m].topo);
  }
  std::printf("\n  shape expectation: (d) — the chapter's pick — wins the\n"
              "  time-based metrics thanks to the Movie/Theatre overlap.\n");

  Section("measured execution per topology (K=10)");
  std::printf("  %-10s %8s %10s %12s %9s\n", "topology", "answers", "calls",
              "elapsed(ms)", "produced");
  for (char which : {'a', 'b', 'c', 'd'}) {
    QueryPlan plan = MakeTopology(fx, which);
    ExecutionOptions options;
    options.k = 10;
    options.input_bindings = fx.scenario.inputs;
    options.max_calls = 100000;
    ExecutionEngine engine(options);
    ExecutionResult result = Unwrap(engine.Execute(plan), "execute");
    std::printf("  (%c)        %8zu %10d %12.0f %9d\n", which,
                result.combinations.size(), result.total_calls,
                result.elapsed_ms, result.total_combinations_produced);
  }
}

void BM_TopologyD(benchmark::State& state) {
  Fixture fx = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeTopology(fx, 'd').num_nodes());
  }
}
BENCHMARK(BM_TopologyD);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
