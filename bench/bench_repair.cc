// Experiment E-REPAIR: mid-query plan repair over the Fig. 2/3
// conference-trip plan — what failover onto a registry replica costs
// relative to an outage-free run, and what it buys relative to degrading to
// partial answers.
//
// The report publishes the overhead curve of the repair loop:
//   - outage-free:        repair armed but never triggered (the fast path);
//   - 1 outage + replica: Hotel1 dies mid-query, the run replans onto
//     Hotel1R, salvaging the abandoned round's chunks through the shared
//     call cache — answers must be complete and identical to planning
//     against the replica from the start;
//   - degrade-only:       the same outage without a replica, degraded to
//     partial answers.
// Replanning time is wall-clock (`RepairStats::replan_ms`) and never lands
// on the simulated clock, which the report verifies.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  QueryPlan plan;
};

Fixture MakeFixture(bool with_replica) {
  Fixture fx;
  fx.scenario = Unwrap(MakeConferenceScenario(), "scenario");
  if (with_replica) {
    Unwrap(AddReplica(&fx.scenario, "Hotel1", "Hotel1R"), "replica");
  }
  OptimizerOptions optimizer_options;
  optimizer_options.k = 10;
  QuerySession session(fx.scenario.registry, optimizer_options);
  BoundQuery bound = Unwrap(session.Prepare(fx.scenario.query_text), "bind");
  fx.plan = std::move(Unwrap(session.Optimize(bound), "optimize").plan);
  return fx;
}

void KillHotel(Fixture* fx) {
  FaultProfile outage;
  outage.permanent_outage = true;
  fx->scenario.backends.at("Hotel1")->set_fault_profile(outage);
}

RepairOptions RepairWith(const Fixture& fx, RepairPolicy policy) {
  RepairOptions repair;
  repair.policy = policy;
  repair.registry = fx.scenario.registry.get();
  repair.optimizer.k = 10;
  return repair;
}

StreamingResult RunStream(const Fixture& fx, const RepairOptions& repair) {
  StreamingOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  options.repair = repair;
  StreamingEngine engine(options);
  return Unwrap(engine.Execute(fx.plan), "execute");
}

void Report() {
  Section("E-REPAIR: outage-free baseline (repair armed, never triggered)");
  Fixture clean = MakeFixture(/*with_replica=*/true);
  StreamingResult baseline =
      RunStream(clean, RepairWith(clean, RepairPolicy::kFailover));
  std::printf("  answers %zu  calls %d  simulated %.0f ms  replans %d\n",
              baseline.combinations.size(), baseline.total_calls,
              baseline.total_latency_ms, baseline.repair.replans);

  Section("failover: Hotel1 dies mid-query, replica Hotel1R registered");
  {
    Fixture fx = MakeFixture(/*with_replica=*/true);
    KillHotel(&fx);
    StreamingResult repaired =
        RunStream(fx, RepairWith(fx, RepairPolicy::kFailover));
    std::printf(
        "  answers %zu (complete: %s)  calls %d  simulated %.0f ms\n",
        repaired.combinations.size(), repaired.complete ? "yes" : "NO",
        repaired.total_calls, repaired.total_latency_ms);
    std::printf(
        "  repair: %d events, %d replans, %.2f ms replanning (wall), "
        "%lld salvaged calls, %.0f ms of abandoned rounds\n",
        repaired.repair.events, repaired.repair.replans,
        repaired.repair.replan_ms,
        static_cast<long long>(repaired.repair.salvaged_calls),
        repaired.repair.abandoned_ms);
    for (const RepairEvent& event : repaired.repair.log) {
      std::printf("  lost %s -> %s (%s)\n", event.lost.c_str(),
                  event.replacement.c_str(), event.reason.c_str());
    }
    // The simulated clock must be untouched by replanning: it matches a run
    // that was planned against the replica from the start, not baseline+
    // replan_ms.
    std::printf("  simulated clock inflated by replanning: %s\n",
                repaired.total_latency_ms <= baseline.total_latency_ms * 1.5
                    ? "no"
                    : "YES (bug)");
  }

  Section("degrade-only: same outage, no replica");
  {
    Fixture fx = MakeFixture(/*with_replica=*/false);
    KillHotel(&fx);
    StreamingResult partial =
        RunStream(fx, RepairWith(fx, RepairPolicy::kFailoverThenDegrade));
    std::printf("  answers %zu (complete: %s)  calls %d  simulated %.0f ms\n",
                partial.combinations.size(), partial.complete ? "yes" : "no",
                partial.total_calls, partial.total_latency_ms);
    for (const RepairEvent& event : partial.repair.log) {
      std::printf("  lost %s -> (unrepaired: %s)\n", event.lost.c_str(),
                  event.reason.c_str());
    }
  }
}

// Wall cost of an armed-but-idle repair policy: one extra plan copy and the
// repair-loop bookkeeping, no replanning.
void BM_FailoverArmedNoOutage(benchmark::State& state) {
  Fixture fx = MakeFixture(/*with_replica=*/true);
  RepairOptions repair = RepairWith(fx, RepairPolicy::kFailover);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStream(fx, repair));
  }
}
BENCHMARK(BM_FailoverArmedNoOutage);

// Full repair path: abandoned round + re-optimization + salvaged rerun.
void BM_FailoverWithOutage(benchmark::State& state) {
  Fixture fx = MakeFixture(/*with_replica=*/true);
  KillHotel(&fx);
  RepairOptions repair = RepairWith(fx, RepairPolicy::kFailover);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStream(fx, repair));
  }
}
BENCHMARK(BM_FailoverWithOutage);

// The degrade alternative, for the cost comparison in docs/RELIABILITY.md.
void BM_DegradeWithOutage(benchmark::State& state) {
  Fixture fx = MakeFixture(/*with_replica=*/false);
  KillHotel(&fx);
  RepairOptions repair = RepairWith(fx, RepairPolicy::kDegrade);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStream(fx, repair));
  }
}
BENCHMARK(BM_DegradeWithOutage);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
