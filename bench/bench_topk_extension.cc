// Experiment E12 (extension): guaranteed top-k rank join vs the chapter's
// extraction-optimal approximate methods.
//
// §3.2/§4.1 argue that top-k optimality "is neither precise enough nor
// practically desired" because it blocks output; the top-k join methods are
// deferred to the book's Chapter 11. This bench implements an HRJN-style
// guaranteed top-k join and quantifies the §4.1 trade-off: the price of the
// guarantee in calls and time, and how close the approximate methods land.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

SyntheticPair MakePair(int key_domain, ScoreDecay decay_x) {
  SyntheticPairParams params;
  params.rows_x = 200;
  params.rows_y = 200;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = key_domain;
  params.decay_x = decay_x;
  params.step_h_x = 2;
  return Unwrap(MakeSyntheticPair(params), "pair");
}

/// True top-k combined scores by full materialization.
std::vector<double> Oracle(const SyntheticPair& pair, int k) {
  ServiceResponse all_x = Unwrap(pair.x.backend->FullScan({}), "x");
  ServiceResponse all_y = Unwrap(pair.y.backend->FullScan({}), "y");
  std::vector<double> combined;
  for (size_t i = 0; i < all_x.tuples.size(); ++i) {
    for (size_t j = 0; j < all_y.tuples.size(); ++j) {
      if (all_x.tuples[i].AtomicAt(0).AsInt() ==
          all_y.tuples[j].AtomicAt(0).AsInt()) {
        combined.push_back(0.5 * all_x.scores[i] + 0.5 * all_y.scores[j]);
      }
    }
  }
  std::sort(combined.begin(), combined.end(), std::greater<double>());
  if (static_cast<int>(combined.size()) > k) combined.resize(k);
  return combined;
}

/// Fraction of the true top-k that a result list actually contains.
double Recall(const std::vector<double>& oracle,
              const std::vector<JoinResultTuple>& results) {
  if (oracle.empty()) return 1.0;
  std::vector<double> got;
  for (const JoinResultTuple& r : results) got.push_back(r.combined);
  std::sort(got.begin(), got.end(), std::greater<double>());
  size_t hits = 0, gi = 0;
  for (double target : oracle) {
    while (gi < got.size() && got[gi] > target + 1e-9) ++gi;
    if (gi < got.size() && std::abs(got[gi] - target) <= 1e-9) {
      ++hits;
      ++gi;
    }
  }
  return static_cast<double>(hits) / oracle.size();
}

void Report() {
  Section("E12: guaranteed top-k (HRJN) vs approximate methods, k=10");
  std::printf("  %-12s %-22s | %6s %10s %9s %8s\n", "selectivity", "method",
              "calls", "time(ms)", "top-k?", "recall");
  for (int domain : {5, 20, 60}) {
    SyntheticPair pair = MakePair(domain, ScoreDecay::kLinear);
    std::vector<double> oracle = Oracle(pair, 10);

    {
      ChunkSource x(pair.x.interface, {});
      ChunkSource y(pair.y.interface, {});
      TopKJoinConfig config;
      config.k = 10;
      config.max_calls = 300;
      TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
      TopKJoinExecution exec = Unwrap(executor.Run(), "topk");
      std::printf("  1/%-10d %-22s | %6d %10.0f %9s %8.2f\n", domain,
                  "top-k rank join", exec.calls_x + exec.calls_y,
                  exec.latency_parallel_ms,
                  exec.guaranteed ? "exact" : "partial",
                  Recall(oracle, exec.results));
    }
    for (JoinCompletion completion :
         {JoinCompletion::kRectangular, JoinCompletion::kTriangular}) {
      ChunkSource x(pair.x.interface, {});
      ChunkSource y(pair.y.interface, {});
      ParallelJoinConfig config;
      config.strategy.invocation = JoinInvocation::kMergeScan;
      config.strategy.completion = completion;
      config.k = 10;
      config.max_calls = 300;
      ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
      JoinExecution exec = Unwrap(executor.Run(), "approx");
      std::string label = std::string("merge-scan/") +
                          JoinCompletionToString(completion);
      std::printf("  1/%-10d %-22s | %6d %10.0f %9s %8.2f\n", domain,
                  label.c_str(), exec.calls_x + exec.calls_y,
                  exec.latency_parallel_ms, "approx",
                  Recall(oracle, exec.results));
    }
  }
  std::printf(
      "\n  shape expectation: the guaranteed join pays more calls/time —\n"
      "  §4.1's reason for preferring extraction-optimal methods — while\n"
      "  the approximate methods trade a recall gap for earlier, cheaper\n"
      "  output; the gap narrows as matches get denser.\n");
}

void BM_TopKJoin(benchmark::State& state) {
  SyntheticPair pair = MakePair(20, ScoreDecay::kLinear);
  for (auto _ : state) {
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    TopKJoinConfig config;
    config.k = 10;
    config.max_calls = 300;
    TopKJoinExecutor executor(&x, &y, KeyEquals(), config);
    benchmark::DoNotOptimize(executor.Run());
  }
}
BENCHMARK(BM_TopKJoin);

void BM_ApproximateJoin(benchmark::State& state) {
  SyntheticPair pair = MakePair(20, ScoreDecay::kLinear);
  for (auto _ : state) {
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    ParallelJoinConfig config;
    config.k = 10;
    config.max_calls = 300;
    ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
    benchmark::DoNotOptimize(executor.Run());
  }
}
BENCHMARK(BM_ApproximateJoin);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
