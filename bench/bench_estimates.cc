// Experiment E14 (extension): accuracy of the §3.2 cardinality/cost model.
//
// The chapter's estimates rest on independence and uniform-value
// assumptions. We execute annotated plans on both scenarios across fetch
// factors and report per-node q-errors (max(est/act, act/est)) for calls
// and cardinalities — quantifying where the assumptions hold and where the
// engine's call cache and bounded result lists beat them.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/estimate_report.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

void ReportScenario(const char* label, Scenario& scenario,
                    const TopologySpec& spec) {
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  for (BoundSelection& sel : query.selections) {
    if (sel.op == Comparator::kGt) sel.selectivity = 1.0;
  }
  QueryPlan plan = Unwrap(BuildPlan(query, spec), "build");
  ApplyAutoStrategies(&plan);
  CheckOk(AnnotatePlan(&plan).status(), "annotate");
  ExecutionOptions options;
  options.k = 10;
  options.truncate_to_k = false;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  ExecutionResult result = Unwrap(engine.Execute(plan), "execute");
  EstimateReport report = CompareEstimates(plan, result);
  std::printf("\n  --- %s ---\n%s", label, report.ToString().c_str());
}

void Report() {
  Section("E14: estimate-vs-actual q-errors under the independence model");
  {
    Scenario scenario = Unwrap(MakeMovieScenario(), "movie");
    TopologySpec spec;
    spec.stages = {{0, 1}, {2}};
    spec.atom_settings[0].fetch_factor = 5;
    spec.atom_settings[1].fetch_factor = 5;
    spec.atom_settings[2].keep_per_input = 1;
    ReportScenario("movie running example (Fig. 10 instantiation)", scenario,
                   spec);
  }
  {
    Scenario scenario = Unwrap(MakeConferenceScenario(), "conference");
    TopologySpec spec;
    spec.stages = {{0}, {1}, {2, 3}};
    spec.atom_settings[2].fetch_factor = 2;
    spec.atom_settings[3].fetch_factor = 2;
    ReportScenario("conference trip (Fig. 2/3 instantiation)", scenario, spec);
  }

  Section("q-error vs fetch factor (movie example, Movie/Theatre F sweep)");
  std::printf("  %-6s | %12s %12s\n", "F", "q(calls)", "q(cardinality)");
  for (int f : {1, 2, 5, 8}) {
    Scenario scenario = Unwrap(MakeMovieScenario(), "movie");
    ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
    BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
    for (BoundSelection& sel : query.selections) {
      if (sel.op == Comparator::kGt) sel.selectivity = 1.0;
    }
    TopologySpec spec;
    spec.stages = {{0, 1}, {2}};
    spec.atom_settings[0].fetch_factor = f;
    spec.atom_settings[1].fetch_factor = f;
    QueryPlan plan = Unwrap(BuildPlan(query, spec), "build");
    CheckOk(AnnotatePlan(&plan).status(), "annotate");
    ExecutionOptions options;
    options.k = 10;
    options.truncate_to_k = false;
    options.input_bindings = scenario.inputs;
    options.max_calls = 100000;
    ExecutionEngine engine(options);
    ExecutionResult result = Unwrap(engine.Execute(plan), "execute");
    EstimateReport report = CompareEstimates(plan, result);
    std::printf("  %-6d | %12.2f %12.2f\n", f, report.max_call_qerror,
                report.max_cardinality_qerror);
  }
  std::printf(
      "\n  shape expectation: call estimates stay near 1 (the model knows\n"
      "  the fetch schedule); cardinality q-errors come from selectivity\n"
      "  defaults and the per-binding call cache, shrinking as F grows and\n"
      "  averages concentrate.\n");
}

void BM_CompareEstimates(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "movie");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  QueryPlan plan = Unwrap(BuildPlan(query, spec), "build");
  CheckOk(AnnotatePlan(&plan).status(), "annotate");
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = scenario.inputs;
  options.max_calls = 100000;
  ExecutionEngine engine(options);
  ExecutionResult result = Unwrap(engine.Execute(plan), "execute");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareEstimates(plan, result));
  }
}
BENCHMARK(BM_CompareEstimates);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
