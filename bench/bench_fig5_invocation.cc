// Experiment E3: nested-loop vs merge-scan invocation strategies (Fig. 5).
//
// The chapter's claim: nested-loop is the right strategy when one service
// has a *step* scoring function (drain its h high chunks first); merge-scan
// when both decay progressively. We sweep score-decay shapes and the step
// parameter h and report the calls needed to produce k join results plus the
// ranking quality of the emitted results.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::RankConcordance;
using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

struct RunOutcome {
  int calls = 0;
  double parallel_ms = 0;
  double concordance = 0;
  size_t results = 0;
};

RunOutcome RunOnce(ScoreDecay decay_x, int step_h, JoinInvocation invocation,
                   JoinCompletion completion, int k) {
  SyntheticPairParams params;
  params.rows_x = 300;
  params.rows_y = 300;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 60;  // sparse matches: strategies must explore
  params.decay_x = decay_x;
  params.step_h_x = step_h;
  params.decay_y = ScoreDecay::kLinear;
  SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = invocation;
  config.strategy.completion = completion;
  config.k = k;
  config.max_calls = 200;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  JoinExecution exec = Unwrap(executor.Run(), "run");
  RunOutcome outcome;
  outcome.calls = exec.calls_x + exec.calls_y;
  outcome.parallel_ms = exec.latency_parallel_ms;
  outcome.results = exec.results.size();
  std::vector<double> scores;
  for (const JoinResultTuple& r : exec.results) scores.push_back(r.combined);
  outcome.concordance = RankConcordance(scores);
  return outcome;
}

void Report() {
  Section("E3: invocation strategies NL vs MS (Fig. 5), k=20");
  std::printf("  %-22s %-14s | %7s %10s %8s %12s\n", "SX decay", "strategy",
              "calls", "time(ms)", "results", "rank-quality");
  struct DecayCase {
    const char* label;
    ScoreDecay decay;
    int h;
  };
  const DecayCase decays[] = {
      {"step h=1", ScoreDecay::kStep, 1}, {"step h=2", ScoreDecay::kStep, 2},
      {"step h=4", ScoreDecay::kStep, 4}, {"linear", ScoreDecay::kLinear, 1},
      {"quadratic", ScoreDecay::kQuadratic, 1}};
  for (const DecayCase& dc : decays) {
    for (JoinInvocation invocation :
         {JoinInvocation::kNestedLoop, JoinInvocation::kMergeScan}) {
      JoinCompletion completion = invocation == JoinInvocation::kNestedLoop
                                      ? JoinCompletion::kRectangular
                                      : JoinCompletion::kTriangular;
      RunOutcome outcome = RunOnce(dc.decay, dc.h, invocation, completion, 20);
      std::printf("  %-22s %-14s | %7d %10.0f %8zu %12.3f\n", dc.label,
                  JoinInvocationToString(invocation), outcome.calls,
                  outcome.parallel_ms, outcome.results, outcome.concordance);
    }
  }
  std::printf(
      "\n  shape expectation: NL pays off once the step covers several\n"
      "  chunks (h>=2) and always emits better-ranked streams; on\n"
      "  progressive decay NL wastes calls and MS wins, as SS4.3 assigns.\n");

  Section("selectivity sweep under merge-scan (calls to k=20)");
  std::printf("  %-12s %8s %8s\n", "key_domain", "calls", "results");
  for (int domain : {2, 5, 10, 25, 50}) {
    SyntheticPairParams params;
    params.rows_x = 150;
    params.rows_y = 150;
    params.key_domain = domain;
    SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    ParallelJoinConfig config;
    config.k = 20;
    config.max_calls = 200;
    ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
    JoinExecution exec = Unwrap(executor.Run(), "run");
    std::printf("  1/%-10d %8d %8zu\n", domain, exec.calls_x + exec.calls_y,
                exec.results.size());
  }
  std::printf("  shape expectation: rarer matches (larger domain) need more"
              " calls for the same k.\n");

  Section("key-skew sweep (Zipf) under merge-scan: hot keys vs the uniform"
          " assumption");
  std::printf("  %-10s %8s %8s\n", "skew", "calls", "results");
  for (double skew : {0.0, 0.8, 1.2, 1.6}) {
    SyntheticPairParams params;
    params.rows_x = 150;
    params.rows_y = 150;
    params.key_domain = 40;
    params.key_skew = skew;
    SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
    ChunkSource x(pair.x.interface, {});
    ChunkSource y(pair.y.interface, {});
    ParallelJoinConfig config;
    config.k = 20;
    config.max_calls = 200;
    ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
    JoinExecution exec = Unwrap(executor.Run(), "run");
    std::printf("  %-10.1f %8d %8zu\n", skew, exec.calls_x + exec.calls_y,
                exec.results.size());
  }
  std::printf("  shape expectation: skewed keys concentrate matches on a few\n"
              "  hot values, so the same k arrives in fewer calls than the\n"
              "  uniform-distribution cost model would predict (§3.2).\n");
}

void BM_NestedLoopStep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOnce(ScoreDecay::kStep, 2,
                                     JoinInvocation::kNestedLoop,
                                     JoinCompletion::kRectangular, 20));
  }
}
BENCHMARK(BM_NestedLoopStep);

void BM_MergeScanLinear(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOnce(ScoreDecay::kLinear, 1,
                                     JoinInvocation::kMergeScan,
                                     JoinCompletion::kTriangular, 20));
  }
}
BENCHMARK(BM_MergeScanLinear);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
