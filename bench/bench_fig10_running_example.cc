// Experiment E8: the fully instantiated running example of §5.6 / Fig. 10.
//
// Paper numbers: K=10, sel(Shows)=2%, sel(DinnerPlace)=40%; Movie 5 fetches
// of chunk 20 -> 100 tuples; Theatre 5 fetches of chunk 5 -> 25 tuples;
// merge-scan parallel join, triangular completion -> 2500/2 = 1250 candidate
// combinations -> x2% = 25 combinations; Restaurant piped with keep-first-1
// -> 25 x 40% = 10 = K answers.
//
// The bench regenerates every annotation, compares against the paper value,
// then actually executes the plan against the simulated services and reports
// measured calls/answers.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  BoundQuery query;
  QueryPlan plan;
};

Fixture MakeFixture() {
  Fixture fx;
  fx.scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(fx.scenario.query_text), "parse");
  fx.query = Unwrap(BindQuery(parsed, *fx.scenario.registry), "bind");
  // The fixture's matching movies all open after the queried date; the
  // paper's instantiation likewise does not discount the date filter.
  for (BoundSelection& sel : fx.query.selections) {
    if (sel.op == Comparator::kGt) sel.selectivity = 1.0;
  }
  TopologySpec spec;  // Fig. 9(d): (Movie || Theatre) -> MS join -> Restaurant
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.invocation = JoinInvocation::kMergeScan;
  spec.parallel_strategy.completion = JoinCompletion::kTriangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  spec.atom_settings[2].fetch_factor = 1;
  spec.atom_settings[2].keep_per_input = 1;
  fx.plan = Unwrap(BuildPlan(fx.query, spec), "build plan");
  AnnotationParams params;
  params.k = 10;
  CheckOk(AnnotatePlan(&fx.plan, params).status(), "annotate");
  return fx;
}

void Report() {
  Fixture fx = MakeFixture();
  Section("E8: fully instantiated running example (Fig. 10, §5.6)");
  std::printf("%s\n", fx.plan.ToString().c_str());

  auto row = [](const char* what, double paper, double measured) {
    std::printf("  %-38s paper=%8.1f  reproduced=%8.1f  %s\n", what, paper,
                measured, std::abs(paper - measured) < 1e-6 ? "OK" : "DIFF");
  };
  const PlanNode& movie = fx.plan.node(fx.plan.NodeOfAtom(0));
  const PlanNode& theatre = fx.plan.node(fx.plan.NodeOfAtom(1));
  const PlanNode& restaurant = fx.plan.node(fx.plan.NodeOfAtom(2));
  double join_in = 0, join_out = 0;
  for (const PlanNode& n : fx.plan.nodes()) {
    if (n.kind == PlanNodeKind::kParallelJoin) {
      join_in = n.t_in;
      join_out = n.t_out;
    }
  }
  Section("paper vs reproduced annotations");
  row("t_Movie_out (5 fetches x 20)", 100, movie.t_out);
  row("t_Theatre_out (5 fetches x 5)", 25, theatre.t_out);
  row("MS join candidates (triangular)", 1250, join_in);
  row("t_MS_out (x 2% Shows)", 25, join_out);
  row("t_Restaurant_in", 25, restaurant.t_in);
  row("t_Restaurant_out (x 40%, keep 1)", 10, restaurant.t_out);

  Section("actual execution against simulated services");
  ExecutionOptions exec_options;
  exec_options.k = 10;
  exec_options.input_bindings = fx.scenario.inputs;
  ExecutionEngine engine(exec_options);
  ExecutionResult result = Unwrap(engine.Execute(fx.plan), "execute");
  std::printf("  answers returned:        %zu (K=10)\n",
              result.combinations.size());
  std::printf("  combinations produced:   %d\n",
              result.total_combinations_produced);
  std::printf("  service calls:           %d\n", result.total_calls);
  std::printf("  simulated elapsed:       %.0f ms (sequential %.0f ms)\n",
              result.elapsed_ms, result.total_latency_ms);
  for (const Combination& combo : result.combinations) {
    std::printf("    score %.3f  movie=%s theatre=%s restaurant=%s\n",
                combo.combined_score,
                combo.components[0].AtomicAt(0).AsString().c_str(),
                combo.components[1].AtomicAt(0).AsString().c_str(),
                combo.components[2].AtomicAt(0).AsString().c_str());
  }
}

void BM_RunningExampleAnnotate(benchmark::State& state) {
  Fixture fx = MakeFixture();
  for (auto _ : state) {
    AnnotationParams params;
    params.k = 10;
    benchmark::DoNotOptimize(AnnotatePlan(&fx.plan, params));
  }
}
BENCHMARK(BM_RunningExampleAnnotate);

void BM_RunningExampleExecute(benchmark::State& state) {
  Fixture fx = MakeFixture();
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_RunningExampleExecute);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
