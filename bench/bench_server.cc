// Offered load vs goodput for the overload-safe QueryServer
// (docs/SERVER.md). Sweeps the open-loop offered load past the server's
// capacity and reports, per load point:
//
//   goodput      queries/s that completed or degraded (useful answers)
//   shed_rate    fraction rejected at admission
//   p95_wait     interactive queue-wait p95, ms
//
// The interesting shape: goodput saturates near capacity while shed_rate
// absorbs the excess — offered load beyond capacity must not collapse
// goodput (the "overload-safe" property), and interactive p95 stays flat
// because batch takes the shedding first.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Unwrap;

/// Shared artifact writer; flushed by main after the benchmark run.
bench_util::BenchJsonWriter& ServerJson() {
  static bench_util::BenchJsonWriter writer("server");
  return writer;
}

ServerOptions LoadedServerOptions() {
  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.admission.interactive.queue_capacity = 8;
  options.admission.batch.queue_capacity = 8;
  options.ladder.enabled = true;
  options.num_threads = 2;
  return options;
}

// One burst of `offered` open-loop queries against a fresh server. The
// backends run in (scaled) real time so queries genuinely occupy the
// admission window; counters come from the server's own ledger.
void BM_ServerOfferedLoad(benchmark::State& state) {
  const int offered = static_cast<int>(state.range(0));
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  int64_t useful = 0, shed = 0, submitted = 0;
  double wall_ms_total = 0.0, p95_wait = 0.0;
  for (auto _ : state) {
    QueryServer server(scenario.registry, LoadedServerOptions());
    LoadProfile profile;
    profile.seed = 17;
    profile.num_queries = offered;
    profile.closed_loop_width = 0;  // open loop: the overload case
    profile.mean_interarrival_ms = 0.0;
    profile.interactive_fraction = 0.5;
    profile.k_min = 3;
    profile.k_max = 8;
    LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
    LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
    server.Drain();

    ServerStats stats = server.stats();
    submitted += stats.interactive.submitted + stats.batch.submitted;
    useful += stats.interactive.completed + stats.interactive.degraded +
              stats.batch.completed + stats.batch.degraded;
    shed += stats.interactive.shed + stats.batch.shed;
    wall_ms_total += report.wall_ms;
    p95_wait = Percentile(stats.interactive.queue_wait_ms, 95.0);
  }

  state.counters["offered"] = static_cast<double>(offered);
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["shed_rate"] =
      submitted > 0
          ? static_cast<double>(shed) / static_cast<double>(submitted)
          : 0.0;
  state.counters["interactive_p95_wait_ms"] = p95_wait;
  std::string config = "offered=" + std::to_string(offered);
  ServerJson().Record("goodput_qps", config, "qps",
                      state.counters["goodput_qps"]);
  ServerJson().Record("shed_rate", config, "fraction",
                      state.counters["shed_rate"]);
  ServerJson().Record("interactive_p95_wait_ms", config, "ms", p95_wait);
}
// Capacity is ~10 concurrent admissions (2 in flight + 2x8 queued): the
// sweep crosses it and keeps going to 6x.
BENCHMARK(BM_ServerOfferedLoad)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Closed-loop sweep: `width` concurrent clients resubmitting on completion.
// Below capacity nothing is shed; goodput scales with width until the
// admission window saturates.
void BM_ServerClosedLoop(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  int64_t useful = 0, shed = 0;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    QueryServer server(scenario.registry, LoadedServerOptions());
    LoadProfile profile;
    profile.seed = 23;
    profile.num_queries = 24;
    profile.closed_loop_width = width;
    profile.interactive_fraction = 0.75;
    profile.k_min = 3;
    profile.k_max = 8;
    LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
    LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
    server.Drain();

    ServerStats stats = server.stats();
    useful += stats.interactive.completed + stats.interactive.degraded +
              stats.batch.completed + stats.batch.degraded;
    shed += stats.interactive.shed + stats.batch.shed;
    wall_ms_total += report.wall_ms;
  }

  state.counters["width"] = static_cast<double>(width);
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["shed_rate"] =
      static_cast<double>(shed) / static_cast<double>(shed + useful);
  std::string config = "closed_loop_width=" + std::to_string(width);
  ServerJson().Record("goodput_qps", config, "qps",
                      state.counters["goodput_qps"]);
  ServerJson().Record("shed_rate", config, "fraction",
                      state.counters["shed_rate"]);
}
BENCHMARK(BM_ServerClosedLoop)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Shared artifact writer for the answer-cache sweep (its own BENCH_*.json,
/// picked up by the CI bench job's artifact glob like the others).
bench_util::BenchJsonWriter& ServerCacheJson() {
  static bench_util::BenchJsonWriter writer("server_cache");
  return writer;
}

// Warm-vs-cold goodput: a closed loop replays a pool of queries whose cache
// identities overlap by 0/50/90%, with the whole-answer cache off and on.
// At high overlap the cached server resolves most requests at Submit —
// without touching the admission window — so goodput is bounded by probe
// speed, not by backend latency. The acceptance line: >= 5x goodput at 90%
// overlap vs cache-off.
void BM_ServerOverlap(benchmark::State& state) {
  const int overlap_pct = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  int64_t useful = 0, hits = 0;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    ServerOptions options;
    // Wide window + deep queues: nothing sheds, the ladder stays quiet, so
    // the sweep isolates caching from admission effects.
    options.admission.max_in_flight = 4;
    options.admission.interactive.queue_capacity = 256;
    options.admission.batch.queue_capacity = 256;
    options.ladder.enabled = false;
    options.num_threads = 2;
    options.answer_cache = cache_on;
    QueryServer server(scenario.registry, options);

    LoadProfile profile;
    profile.seed = 31;
    // Enough requests that first-occurrence cold misses stop dominating the
    // hit rate: at 90% overlap the warm fraction should approach 0.9.
    profile.num_queries = 192;
    profile.closed_loop_width = 8;
    profile.interactive_fraction = 0.5;
    profile.k_min = 6;
    profile.k_max = 6;
    profile.overlap_fraction = static_cast<double>(overlap_pct) / 100.0;
    LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
    LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
    server.Drain();

    ServerStats stats = server.stats();
    useful += stats.interactive.completed + stats.interactive.degraded +
              stats.batch.completed + stats.batch.degraded;
    hits += stats.interactive.answer_cache_hits +
            stats.batch.answer_cache_hits;
    wall_ms_total += report.wall_ms;
  }

  state.counters["overlap_pct"] = static_cast<double>(overlap_pct);
  state.counters["cache"] = cache_on ? 1.0 : 0.0;
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["hit_rate"] =
      useful > 0 ? static_cast<double>(hits) / static_cast<double>(useful)
                 : 0.0;
  std::string config = "overlap=" + std::to_string(overlap_pct) +
                       ",cache=" + (cache_on ? "on" : "off");
  ServerCacheJson().Record("goodput_qps", config, "qps",
                           state.counters["goodput_qps"]);
  ServerCacheJson().Record("hit_rate", config, "fraction",
                           state.counters["hit_rate"]);
}
BENCHMARK(BM_ServerOverlap)
    ->Args({0, 0})->Args({0, 1})
    ->Args({50, 0})->Args({50, 1})
    ->Args({90, 0})->Args({90, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  seco::ServerJson().Flush();
  seco::ServerCacheJson().Flush();
  ::benchmark::Shutdown();
  return 0;
}
