// Offered load vs goodput for the overload-safe QueryServer
// (docs/SERVER.md). Sweeps the open-loop offered load past the server's
// capacity and reports, per load point:
//
//   goodput      queries/s that completed or degraded (useful answers)
//   shed_rate    fraction rejected at admission
//   p95_wait     interactive queue-wait p95, ms
//
// The interesting shape: goodput saturates near capacity while shed_rate
// absorbs the excess — offered load beyond capacity must not collapse
// goodput (the "overload-safe" property), and interactive p95 stays flat
// because batch takes the shedding first.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Unwrap;

/// Shared artifact writer; flushed by main after the benchmark run.
bench_util::BenchJsonWriter& ServerJson() {
  static bench_util::BenchJsonWriter writer("server");
  return writer;
}

ServerOptions LoadedServerOptions() {
  ServerOptions options;
  options.admission.max_in_flight = 2;
  options.admission.interactive.queue_capacity = 8;
  options.admission.batch.queue_capacity = 8;
  options.ladder.enabled = true;
  options.num_threads = 2;
  return options;
}

// One burst of `offered` open-loop queries against a fresh server. The
// backends run in (scaled) real time so queries genuinely occupy the
// admission window; counters come from the server's own ledger.
void BM_ServerOfferedLoad(benchmark::State& state) {
  const int offered = static_cast<int>(state.range(0));
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  int64_t useful = 0, shed = 0, submitted = 0;
  double wall_ms_total = 0.0, p95_wait = 0.0;
  for (auto _ : state) {
    QueryServer server(scenario.registry, LoadedServerOptions());
    LoadProfile profile;
    profile.seed = 17;
    profile.num_queries = offered;
    profile.closed_loop_width = 0;  // open loop: the overload case
    profile.mean_interarrival_ms = 0.0;
    profile.interactive_fraction = 0.5;
    profile.k_min = 3;
    profile.k_max = 8;
    LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
    LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
    server.Drain();

    ServerStats stats = server.stats();
    submitted += stats.interactive.submitted + stats.batch.submitted;
    useful += stats.interactive.completed + stats.interactive.degraded +
              stats.batch.completed + stats.batch.degraded;
    shed += stats.interactive.shed + stats.batch.shed;
    wall_ms_total += report.wall_ms;
    p95_wait = Percentile(stats.interactive.queue_wait_ms, 95.0);
  }

  state.counters["offered"] = static_cast<double>(offered);
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["shed_rate"] =
      submitted > 0
          ? static_cast<double>(shed) / static_cast<double>(submitted)
          : 0.0;
  state.counters["interactive_p95_wait_ms"] = p95_wait;
  std::string config = "offered=" + std::to_string(offered);
  ServerJson().Record("goodput_qps", config, "qps",
                      state.counters["goodput_qps"]);
  ServerJson().Record("shed_rate", config, "fraction",
                      state.counters["shed_rate"]);
  ServerJson().Record("interactive_p95_wait_ms", config, "ms", p95_wait);
}
// Capacity is ~10 concurrent admissions (2 in flight + 2x8 queued): the
// sweep crosses it and keeps going to 6x.
BENCHMARK(BM_ServerOfferedLoad)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Closed-loop sweep: `width` concurrent clients resubmitting on completion.
// Below capacity nothing is shed; goodput scales with width until the
// admission window saturates.
void BM_ServerClosedLoop(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.001);
  }

  int64_t useful = 0, shed = 0;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    QueryServer server(scenario.registry, LoadedServerOptions());
    LoadProfile profile;
    profile.seed = 23;
    profile.num_queries = 24;
    profile.closed_loop_width = width;
    profile.interactive_fraction = 0.75;
    profile.k_min = 3;
    profile.k_max = 8;
    LoadGenerator generator(profile, scenario.query_text, scenario.inputs);
    LoadReport report = DriveLoad(&server, generator.Schedule(), profile);
    server.Drain();

    ServerStats stats = server.stats();
    useful += stats.interactive.completed + stats.interactive.degraded +
              stats.batch.completed + stats.batch.degraded;
    shed += stats.interactive.shed + stats.batch.shed;
    wall_ms_total += report.wall_ms;
  }

  state.counters["width"] = static_cast<double>(width);
  state.counters["goodput_qps"] =
      wall_ms_total > 0.0 ? 1000.0 * static_cast<double>(useful) / wall_ms_total
                          : 0.0;
  state.counters["shed_rate"] =
      static_cast<double>(shed) / static_cast<double>(shed + useful);
  std::string config = "closed_loop_width=" + std::to_string(width);
  ServerJson().Record("goodput_qps", config, "qps",
                      state.counters["goodput_qps"]);
  ServerJson().Record("shed_rate", config, "fraction",
                      state.counters["shed_rate"]);
}
BENCHMARK(BM_ServerClosedLoop)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  seco::ServerJson().Flush();
  ::benchmark::Shutdown();
  return 0;
}
