// Micro-benchmarks of SeCo's hot primitives: value comparison, LIKE
// matching, repeating-group semantics, tile bookkeeping, plan annotation,
// and parsing. These guard against regressions in the per-tuple code paths
// that dominate join processing once chunks are in memory (§4.1 assumes the
// in-memory join cost is negligible next to request-responses — this suite
// keeps that assumption true).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "query/semantics.h"

namespace seco {
namespace {

using bench_util::Unwrap;

void BM_ValueCompareInt(benchmark::State& state) {
  Value a(42), b(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(Comparator::kLt, b));
  }
}
BENCHMARK(BM_ValueCompareInt);

void BM_ValueCompareString(benchmark::State& state) {
  Value a("2009-05-01"), b("2009-06-15");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(Comparator::kLt, b));
  }
}
BENCHMARK(BM_ValueCompareString);

void BM_LikeMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch("the search computing framework",
                                       "%search%comp_ting%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_ValueHash(benchmark::State& state) {
  Value v("Theatre at Piazza Leonardo da Vinci 32");
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Hash());
  }
}
BENCHMARK(BM_ValueHash);

void BM_SatisfiesSelectionsRepeatingGroup(benchmark::State& state) {
  // The single-instance rule over a 4-instance repeating group.
  auto schema = std::make_shared<ServiceSchema>(
      "S", std::vector<AttributeDef>{AttributeDef::RepeatingGroup(
               "R", {{"A", ValueType::kInt}, {"B", ValueType::kString}})});
  BoundQuery query;
  BoundAtom atom;
  atom.alias = "S";
  atom.schema = schema;
  query.atoms.push_back(atom);
  query.selections.push_back(
      {0, AttrPath{0, 0}, Comparator::kEq, Value(3), "", 0.1});
  query.selections.push_back(
      {0, AttrPath{0, 1}, Comparator::kEq, Value("x"), "", 0.1});
  RepeatingGroupValue group;
  for (int i = 0; i < 4; ++i) {
    group.push_back({Value(i), Value(i == 3 ? "x" : "y")});
  }
  Tuple tuple({group});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SatisfiesSelections(query, 0, tuple, {}));
  }
}
BENCHMARK(BM_SatisfiesSelectionsRepeatingGroup);

void BM_SearchSpaceFrontier(benchmark::State& state) {
  SearchSpace space;
  for (int i = 0; i < 12; ++i) {
    space.AddChunkX(1.0 - i * 0.05);
    space.AddChunkY(1.0 - i * 0.07);
  }
  for (int x = 0; x < 12; x += 2) {
    for (int y = 0; y < 12; y += 3) {
      space.MarkExplored(Tile{x, y});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.Frontier().size());
  }
}
BENCHMARK(BM_SearchSpaceFrontier);

void BM_ParseRunningExample(benchmark::State& state) {
  const std::string text =
      "select Movie11 as M, Theatre11 as T, Restaurant11 as R "
      "where Shows(M, T) and DinnerPlace(T, R) "
      "and M.Genres.Genre = INPUT1 and M.Openings.Country = INPUT2 "
      "and M.Openings.Date > INPUT3 and T.UAddress = INPUT4 "
      "and T.UCity = INPUT5 and T.UCountry = INPUT2 "
      "and R.Category.Name = INPUT6 rank by (0.3, 0.5, 0.2)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseQuery(text));
  }
}
BENCHMARK(BM_ParseRunningExample);

void BM_BindRunningExample(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BindQuery(parsed, *scenario.registry));
  }
}
BENCHMARK(BM_BindRunningExample);

void BM_FeasibilityRunningExample(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckFeasibility(query));
  }
}
BENCHMARK(BM_FeasibilityRunningExample);

void BM_PlanBuildAndAnnotate(benchmark::State& state) {
  Scenario scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  for (auto _ : state) {
    QueryPlan plan = Unwrap(BuildPlan(query, spec), "build");
    benchmark::DoNotOptimize(AnnotatePlan(&plan));
  }
}
BENCHMARK(BM_PlanBuildAndAnnotate);

}  // namespace
}  // namespace seco

BENCHMARK_MAIN();
