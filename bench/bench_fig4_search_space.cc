// Experiment E2: the join search space of Fig. 4 — tiles, exploration order,
// and the extraction-optimality properties of §4.1/§4.4.
//
// Traces the tile order of merge-scan/triangular and merge-scan/rectangular
// explorations, checks local extraction-optimality and the adjacency rule
// (adjacent tiles processed in increasing index-sum order), and reports how
// the exploration covers the Cartesian plane.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate KeyEquals() {
  return [](const Tuple& x, const Tuple& y) -> Result<bool> {
    return x.AtomicAt(0).AsInt() == y.AtomicAt(0).AsInt();
  };
}

JoinExecution RunJoin(JoinCompletion completion, int k, int max_calls) {
  SyntheticPairParams params;
  params.rows_x = 100;
  params.rows_y = 100;
  params.chunk_x = 10;
  params.chunk_y = 10;
  params.key_domain = 40;  // rare matches: exploration structure dominates
  SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = JoinInvocation::kMergeScan;
  config.strategy.completion = completion;
  config.k = k;
  config.max_calls = max_calls;
  ParallelJoinExecutor executor(&x, &y, KeyEquals(), config);
  return Unwrap(executor.Run(), "run");
}

void PrintGrid(const JoinExecution& exec) {
  // Render the exploration order as a grid of processing ranks.
  int max_x = 0, max_y = 0;
  for (const Tile& t : exec.tile_order) {
    max_x = std::max(max_x, t.x + 1);
    max_y = std::max(max_y, t.y + 1);
  }
  std::printf("  processing rank per tile (x right = SX chunks,"
              " y down = SY chunks, . = unprocessed):\n");
  for (int y = 0; y < max_y; ++y) {
    std::printf("    ");
    for (int x = 0; x < max_x; ++x) {
      int rank = -1;
      for (size_t i = 0; i < exec.tile_order.size(); ++i) {
        if (exec.tile_order[i].x == x && exec.tile_order[i].y == y) {
          rank = static_cast<int>(i);
        }
      }
      if (rank < 0) {
        std::printf("  . ");
      } else {
        std::printf("%3d ", rank);
      }
    }
    std::printf("\n");
  }
}

void Report() {
  Section("E2: join search space exploration (Fig. 4)");
  for (JoinCompletion completion :
       {JoinCompletion::kRectangular, JoinCompletion::kTriangular}) {
    JoinExecution exec = RunJoin(completion, /*k=*/12, /*max_calls=*/12);
    std::printf("\n  completion=%s: fetches X=%d Y=%d, tiles processed=%zu,"
                " results=%zu\n",
                JoinCompletionToString(completion), exec.calls_x, exec.calls_y,
                exec.tile_order.size(), exec.results.size());
    PrintGrid(exec);
    std::printf("  adjacency rule (smaller index sum first): %s\n",
                SatisfiesAdjacencyOrder(exec.tile_order) ? "HOLDS" : "violated");
    std::printf("  global extraction-optimality of tile order: %s\n",
                IsGloballyExtractionOptimal(exec.tile_order,
                                            exec.space.scores_x(),
                                            exec.space.scores_y())
                    ? "HOLDS"
                    : "violated (expected for deferred tiles)");
  }
  Section("tile score decreases along the processed order (first 12 tiles)");
  JoinExecution exec = RunJoin(JoinCompletion::kTriangular, 12, 12);
  for (size_t i = 0; i < exec.tile_order.size() && i < 12; ++i) {
    const Tile& t = exec.tile_order[i];
    std::printf("  #%zu %s score=%.3f\n", i, t.ToString().c_str(),
                exec.space.TileScore(t));
  }
}

void BM_SearchSpaceExploration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunJoin(JoinCompletion::kTriangular, 12, 12).results.size());
  }
}
BENCHMARK(BM_SearchSpaceExploration);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
