// Experiment E9: the §5.2 claim that branch-and-bound "finds reasonably good
// solutions in acceptable execution time".
//
// We scale the query from 2 to 6 chained search services and report: plans
// costed, branches pruned, topologies tried, optimizer wall time, and the
// anytime quality curve (cost of the best plan after a budget of 1, 2, 4, ...
// complete plans relative to the exhaustive optimum).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::MakeChainScenario;
using bench_util::Section;
using bench_util::Unwrap;

BoundQuery BindChain(const bench_util::ChainScenario& scenario) {
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  return Unwrap(BindQuery(parsed, *scenario.registry), "bind");
}

void Report() {
  Section("E9: branch-and-bound scaling with query size (call-count metric)");
  std::printf("  %-6s | %10s %10s %10s %12s %12s\n", "n", "plans", "pruned",
              "topologies", "time(ms)", "cost");
  for (int n = 2; n <= 6; ++n) {
    bench_util::ChainScenario scenario =
        Unwrap(MakeChainScenario(n), "scenario");
    BoundQuery query = BindChain(scenario);
    OptimizerOptions options;
    options.k = 10;
    options.metric = CostMetricKind::kCallCount;
    Optimizer optimizer(options);
    auto start = std::chrono::steady_clock::now();
    OptimizationResult result = Unwrap(optimizer.Optimize(query), "optimize");
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::printf("  %-6d | %10d %10d %10d %12.1f %12.1f\n", n,
                result.plans_costed, result.branches_pruned,
                result.topologies_tried, ms, result.cost);
  }
  std::printf("  shape expectation: the search space grows combinatorially\n"
              "  but pruning keeps costed plans far below it.\n");

  Section("anytime quality: best cost after a plan budget (n=5 tree,"
          " execution-time metric, selective-first)");
  bench_util::ChainScenario scenario = Unwrap(MakeChainScenario(5), "scenario");
  BoundQuery query = BindChain(scenario);
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kExecutionTime;
  options.topology_heuristic = TopologyHeuristic::kSelectiveFirst;
  Optimizer exhaustive(options);
  OptimizationResult best = Unwrap(exhaustive.Optimize(query), "optimize");
  std::printf("  exhaustive optimum: cost=%.1f from %d plans\n", best.cost,
              best.plans_costed);
  std::printf("  %-10s %12s %14s\n", "budget", "cost", "vs optimum");
  for (int budget : {1, 2, 4, 8, 16, 64}) {
    OptimizerOptions limited = options;
    limited.max_plans = budget;
    Optimizer optimizer(limited);
    OptimizationResult result = Unwrap(optimizer.Optimize(query), "optimize");
    std::printf("  %-10d %12.1f %13.2fx\n", budget, result.cost,
                result.cost / best.cost);
  }
  std::printf("  shape expectation: quality converges to 1.00x well before\n"
              "  the search space is exhausted (anytime behaviour, §5.2).\n");
}

void BM_OptimizeChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bench_util::ChainScenario scenario = Unwrap(MakeChainScenario(n), "scenario");
  BoundQuery query = BindChain(scenario);
  OptimizerOptions options;
  options.k = 10;
  options.metric = CostMetricKind::kCallCount;
  for (auto _ : state) {
    Optimizer optimizer(options);
    benchmark::DoNotOptimize(optimizer.Optimize(query));
  }
}
BENCHMARK(BM_OptimizeChain)->DenseRange(2, 6, 1);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
