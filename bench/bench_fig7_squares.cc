// Experiment E5: merge-scan + rectangular completion with ratio 1 explores
// squares of increasing size (Fig. 7, frames 1-4).
//
// We trace the explored region after each fetch round and verify that it
// stays square (|chunks_x - chunks_y| <= 1) and that every available tile is
// processed immediately (rectangular completion).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

JoinPredicate NeverMatches() {
  return [](const Tuple&, const Tuple&) -> Result<bool> { return false; };
}

JoinExecution RunSquares(int max_calls) {
  SyntheticPairParams params;
  params.rows_x = 200;
  params.rows_y = 200;
  params.chunk_x = 10;
  params.chunk_y = 10;
  SyntheticPair pair = Unwrap(MakeSyntheticPair(params), "pair");
  ChunkSource x(pair.x.interface, {});
  ChunkSource y(pair.y.interface, {});
  ParallelJoinConfig config;
  config.strategy.invocation = JoinInvocation::kMergeScan;
  config.strategy.completion = JoinCompletion::kRectangular;
  config.strategy.ratio_x = 1;
  config.strategy.ratio_y = 1;
  config.k = 1;  // never reached: NeverMatches
  config.max_calls = max_calls;
  ParallelJoinExecutor executor(&x, &y, NeverMatches(), config);
  return Unwrap(executor.Run(), "run");
}

void Report() {
  Section("E5: merge-scan/rectangular r=1 grows squares (Fig. 7)");
  JoinExecution exec = RunSquares(8);
  int cx = 0, cy = 0;
  size_t processed = 0;
  int frame = 0;
  bool all_square = true, all_caught_up = true;
  std::printf("  %-7s %8s %8s %10s %12s %8s\n", "frame", "chunks_x",
              "chunks_y", "tiles", "region", "square?");
  for (const JoinEvent& event : exec.events) {
    if (event.kind == JoinEventKind::kFetchX) ++cx;
    if (event.kind == JoinEventKind::kFetchY) ++cy;
    if (event.kind == JoinEventKind::kProcessTile) ++processed;
    // A "frame" closes when the processed tiles catch up with cx*cy.
    if (processed == static_cast<size_t>(cx) * cy && cx > 0 && cy > 0) {
      bool square = std::abs(cx - cy) <= 1;
      all_square = all_square && square;
      std::printf("  %-7d %8d %8d %10zu %7dx%-4d %8s\n", ++frame, cx, cy,
                  processed, cx, cy, square ? "yes" : "NO");
    }
  }
  // Rectangular completion: at the end everything available is processed.
  all_caught_up =
      processed == static_cast<size_t>(cx) * cy && exec.space.Frontier().empty();
  std::printf("\n  every frame square (|cx-cy|<=1): %s\n",
              all_square ? "HOLDS" : "violated");
  std::printf("  rectangular completion leaves no available tile: %s\n",
              all_caught_up ? "HOLDS" : "violated");
  std::printf("  final explored region: %dx%d = %zu tiles from %d calls\n", cx,
              cy, processed, exec.calls_x + exec.calls_y);
}

void BM_SquareGrowth(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSquares(8).tile_order.size());
  }
}
BENCHMARK(BM_SquareGrowth);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
