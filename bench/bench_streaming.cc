// Experiment E15 (extension): the §4.1 non-blocking dataflow made concrete —
// a pull-based streaming engine stops paying for request-responses the
// moment the k-th combination is assembled, whereas the materializing
// engine prepays every fetch its factors allow.
//
// We sweep k on the movie running example and a keyed two-service pipeline
// and report service calls under both engines.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/resumable.h"
#include "exec/streaming.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  QueryPlan plan;
};

Fixture MakeMovieFixture() {
  Fixture fx;
  fx.scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(fx.scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *fx.scenario.registry), "bind");
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  fx.plan = Unwrap(BuildPlan(query, spec), "build");
  CheckOk(AnnotatePlan(&fx.plan).status(), "annotate");
  return fx;
}

void Report(bench_util::BenchJsonWriter* json) {
  Section("E15: streaming vs materializing execution (movie example)");
  Fixture fx = MakeMovieFixture();
  std::printf("  %-6s | %18s %18s %14s\n", "k", "materializing calls",
              "streaming calls", "saved");
  for (int k : {1, 3, 5, 10, 20}) {
    ExecutionOptions mat_options;
    mat_options.k = k;
    mat_options.input_bindings = fx.scenario.inputs;
    mat_options.max_calls = 100000;
    ExecutionEngine materializing(mat_options);
    ExecutionResult mat = Unwrap(materializing.Execute(fx.plan), "mat");

    StreamingOptions stream_options;
    stream_options.k = k;
    stream_options.input_bindings = fx.scenario.inputs;
    stream_options.max_calls = 100000;
    StreamingEngine streaming(stream_options);
    StreamingResult stream = Unwrap(streaming.Execute(fx.plan), "stream");

    std::printf("  %-6d | %18d %18d %13.0f%%\n", k, mat.total_calls,
                stream.total_calls,
                100.0 * (mat.total_calls - stream.total_calls) /
                    std::max(mat.total_calls, 1));
    json->Record("streaming_calls", "k=" + std::to_string(k), "calls",
                 stream.total_calls);
    json->Record("materializing_calls", "k=" + std::to_string(k), "calls",
                 mat.total_calls);
  }
  std::printf(
      "\n  shape expectation: savings are largest at small k (the first\n"
      "  combinations need a fraction of the fetch schedule) and shrink as\n"
      "  k approaches what the full schedule yields.\n");

  Section("resumable execution: marginal cost of 'more results' (§3.2)");
  {
    ExecutionOptions options;
    options.input_bindings = fx.scenario.inputs;
    options.max_calls = 100000;
    ResumableExecution resumable(fx.plan, options);
    std::printf("  %-8s | %12s %12s\n", "batch", "new results", "novel calls");
    for (int batch = 1; batch <= 4; ++batch) {
      ResumeBatch result = Unwrap(resumable.FetchMore(10), "fetch more");
      std::printf("  #%-7d | %12zu %12lld\n", batch, result.combinations.size(),
                  static_cast<long long>(result.novel_calls));
      if (!result.may_have_more) break;
    }
    std::printf(
        "  shape expectation: the first batch pays the bulk; later batches\n"
        "  ride the response cache and only pay for deeper fetches.\n");
  }

  Section("time-to-first-combination (simulated latency until emission)");
  StreamingOptions first_options;
  first_options.k = 1;
  first_options.input_bindings = fx.scenario.inputs;
  first_options.max_calls = 100000;
  StreamingEngine first_engine(first_options);
  StreamingResult first = Unwrap(first_engine.Execute(fx.plan), "first");
  ExecutionOptions full_options;
  full_options.k = 10;
  full_options.input_bindings = fx.scenario.inputs;
  full_options.max_calls = 100000;
  ExecutionEngine full_engine(full_options);
  ExecutionResult full = Unwrap(full_engine.Execute(fx.plan), "full");
  std::printf("  first streamed combination after %.0f ms (%d calls);\n"
              "  materialized batch of 10 after %.0f ms (%d calls).\n",
              first.total_latency_ms, first.total_calls, full.elapsed_ms,
              full.total_calls);
}

/// Realtime wall-clock comparison of the speculative prefetcher on the
/// conference pipe: the same plan runs with blocking (paced) services,
/// once sequentially and once with 4 worker threads speculating 3 chunks
/// ahead. Results and charged calls must be identical; only the wall
/// clock may change.
void ReportPrefetchOverlap() {
  Section("speculative prefetch: realtime overlap on the conference pipe");
  Scenario scenario = Unwrap(MakeConferenceScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  TopologySpec spec;  // Fig. 3: Conference -> Weather -> (Flight || Hotel)
  spec.stages = {{0}, {1}, {2, 3}};
  spec.atom_settings[2].fetch_factor = 4;
  spec.atom_settings[3].fetch_factor = 4;
  QueryPlan plan = Unwrap(BuildPlan(query, spec), "build");
  CheckOk(AnnotatePlan(&plan).status(), "annotate");

  // Pace every backend so a service call blocks for 5% of its simulated
  // latency in real time, and let the engines cut pacing sleeps short at
  // teardown instead of waiting out abandoned speculation.
  auto interrupt = std::make_shared<InterruptFlag>();
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.1);
    backend->set_interrupt(interrupt);
  }

  auto run = [&](int num_threads, int prefetch_depth) {
    StreamingOptions options;
    options.k = 25;
    options.input_bindings = scenario.inputs;
    options.max_calls = 100000;
    options.num_threads = num_threads;
    options.prefetch_depth = prefetch_depth;
    options.interrupt = interrupt;
    StreamingEngine engine(options);
    return Unwrap(engine.Execute(plan), "stream");
  };
  StreamingResult sequential = run(1, 0);
  StreamingResult overlapped = run(4, 4);

  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(0.0);
    backend->set_interrupt(nullptr);
  }

  bool identical =
      sequential.combinations.size() == overlapped.combinations.size() &&
      sequential.total_calls == overlapped.total_calls;
  for (size_t i = 0; identical && i < sequential.combinations.size(); ++i) {
    identical = sequential.combinations[i].combined_score ==
                overlapped.combinations[i].combined_score;
  }
  double speedup = overlapped.wall_clock_ms > 0.0
                       ? sequential.wall_clock_ms / overlapped.wall_clock_ms
                       : 0.0;
  double waste_ratio =
      overlapped.speculative_calls > 0
          ? static_cast<double>(overlapped.speculative_wasted) /
                overlapped.speculative_calls
          : 0.0;
  std::printf("  %-34s | %10s %10s %8s\n", "configuration", "wall ms",
              "charged", "answers");
  std::printf("  %-34s | %10.1f %10d %8zu\n", "sequential (threads=1, depth=0)",
              sequential.wall_clock_ms, sequential.total_calls,
              sequential.combinations.size());
  std::printf("  %-34s | %10.1f %10d %8zu\n", "prefetch   (threads=4, depth=4)",
              overlapped.wall_clock_ms, overlapped.total_calls,
              overlapped.combinations.size());
  std::printf(
      "  wall-clock speedup: %.2fx   identical results & charges: %s\n"
      "  speculation: %d issued, %d wasted (waste ratio %.0f%%)\n",
      speedup, identical ? "yes" : "NO (BUG)", overlapped.speculative_calls,
      overlapped.speculative_wasted, 100.0 * waste_ratio);
  std::printf(
      "  shape expectation: the pipe's per-binding fetches overlap, so the\n"
      "  speculative run should finish at least ~2x sooner while charging\n"
      "  the same calls; wasted fetches stay cached for later runs.\n");
}

/// Columnar data plane inside the streaming JoinOp: the doctor plan's
/// WorksAt node (atomic string-equality join of two search services) runs
/// its equality group as key-scan kernels over the canonicalized partials.
/// Sweeps the kernel ISA (answers must be identical) and reports the
/// per-batch counters the engine now exposes. The movie fixture is NOT used
/// here on purpose: its join is a repeating-group predicate, which the
/// columnar gate correctly declines (the oracle keeps those).
void ReportColumnar(bench_util::BenchJsonWriter* json) {
  Section("streaming columnar data plane (doctor WorksAt join)");
  DoctorScenarioParams params;
  params.num_hospitals = 40;
  params.doctors_per_specialty = 200;
  Scenario scenario = Unwrap(MakeDoctorScenario(params), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *scenario.registry), "bind");
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 8;
  spec.atom_settings[1].fetch_factor = 8;
  QueryPlan plan = Unwrap(BuildPlan(query, spec), "build");
  CheckOk(AnnotatePlan(&plan).status(), "annotate");
  auto run = [&]() {
    StreamingOptions options;
    options.k = 50;
    options.input_bindings = scenario.inputs;
    options.max_calls = 100000;
    StreamingEngine engine(options);
    return Unwrap(engine.Execute(plan), "stream");
  };
  StreamingResult baseline;
  std::printf("  %-10s | %8s %13s %13s %12s %9s\n", "kernel", "answers",
              "kernel scans", "scalar scans", "rows", "Mrows/s");
  std::vector<simd::Kernel> variants = {simd::Kernel::kScalar,
                                        simd::Kernel::kSse2};
  if (simd::Avx2Available()) variants.push_back(simd::Kernel::kAvx2);
  bool identical = true;
  for (simd::Kernel k : variants) {
    simd::SetKernelOverride(k);
    if (simd::ActiveKernel() != k) continue;
    StreamingResult r = run();
    if (k == simd::Kernel::kScalar) {
      baseline = r;
    } else {
      identical = identical &&
                  r.combinations.size() == baseline.combinations.size();
      for (size_t i = 0; identical && i < r.combinations.size(); ++i) {
        identical = r.combinations[i].combined_score ==
                    baseline.combinations[i].combined_score;
      }
    }
    std::printf("  %-10s | %8zu %13lld %13lld %12lld %9.1f\n",
                simd::KernelName(k), r.combinations.size(),
                r.columnar.kernel_batches, r.columnar.scalar_batches,
                r.columnar.kernel_rows, r.columnar.KernelRowsPerSec() / 1e6);
    json->Record("streaming_kernel_rows_per_sec",
                 std::string("kernel=") + simd::KernelName(k), "rows_per_sec",
                 r.columnar.KernelRowsPerSec());
  }
  simd::SetKernelOverride(std::nullopt);
  std::printf("  answers identical across kernels: %s\n",
              identical ? "yes" : "NO (BUG)");
  json->Record("streaming_kernel_identical", "movie_k20", "bool",
               identical ? 1.0 : 0.0);
}

void BM_MaterializingK5(benchmark::State& state) {
  Fixture fx = MakeMovieFixture();
  ExecutionOptions options;
  options.k = 5;
  options.input_bindings = fx.scenario.inputs;
  options.max_calls = 100000;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_MaterializingK5);

void BM_StreamingK5(benchmark::State& state) {
  Fixture fx = MakeMovieFixture();
  StreamingOptions options;
  options.k = 5;
  options.input_bindings = fx.scenario.inputs;
  options.max_calls = 100000;
  for (auto _ : state) {
    StreamingEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_StreamingK5);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::bench_util::BenchJsonWriter json("streaming");
  seco::Report(&json);
  seco::ReportPrefetchOverlap();
  seco::ReportColumnar(&json);
  json.Flush();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
