// Experiment E15 (extension): the §4.1 non-blocking dataflow made concrete —
// a pull-based streaming engine stops paying for request-responses the
// moment the k-th combination is assembled, whereas the materializing
// engine prepays every fetch its factors allow.
//
// We sweep k on the movie running example and a keyed two-service pipeline
// and report service calls under both engines.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/resumable.h"
#include "exec/streaming.h"

namespace seco {
namespace {

using bench_util::CheckOk;
using bench_util::Section;
using bench_util::Unwrap;

struct Fixture {
  Scenario scenario;
  QueryPlan plan;
};

Fixture MakeMovieFixture() {
  Fixture fx;
  fx.scenario = Unwrap(MakeMovieScenario(), "scenario");
  ParsedQuery parsed = Unwrap(ParseQuery(fx.scenario.query_text), "parse");
  BoundQuery query = Unwrap(BindQuery(parsed, *fx.scenario.registry), "bind");
  TopologySpec spec;
  spec.stages = {{0, 1}, {2}};
  spec.parallel_strategy.completion = JoinCompletion::kRectangular;
  spec.atom_settings[0].fetch_factor = 5;
  spec.atom_settings[1].fetch_factor = 5;
  fx.plan = Unwrap(BuildPlan(query, spec), "build");
  CheckOk(AnnotatePlan(&fx.plan).status(), "annotate");
  return fx;
}

void Report() {
  Section("E15: streaming vs materializing execution (movie example)");
  Fixture fx = MakeMovieFixture();
  std::printf("  %-6s | %18s %18s %14s\n", "k", "materializing calls",
              "streaming calls", "saved");
  for (int k : {1, 3, 5, 10, 20}) {
    ExecutionOptions mat_options;
    mat_options.k = k;
    mat_options.input_bindings = fx.scenario.inputs;
    mat_options.max_calls = 100000;
    ExecutionEngine materializing(mat_options);
    ExecutionResult mat = Unwrap(materializing.Execute(fx.plan), "mat");

    StreamingOptions stream_options;
    stream_options.k = k;
    stream_options.input_bindings = fx.scenario.inputs;
    stream_options.max_calls = 100000;
    StreamingEngine streaming(stream_options);
    StreamingResult stream = Unwrap(streaming.Execute(fx.plan), "stream");

    std::printf("  %-6d | %18d %18d %13.0f%%\n", k, mat.total_calls,
                stream.total_calls,
                100.0 * (mat.total_calls - stream.total_calls) /
                    std::max(mat.total_calls, 1));
  }
  std::printf(
      "\n  shape expectation: savings are largest at small k (the first\n"
      "  combinations need a fraction of the fetch schedule) and shrink as\n"
      "  k approaches what the full schedule yields.\n");

  Section("resumable execution: marginal cost of 'more results' (§3.2)");
  {
    ExecutionOptions options;
    options.input_bindings = fx.scenario.inputs;
    options.max_calls = 100000;
    ResumableExecution resumable(fx.plan, options);
    std::printf("  %-8s | %12s %12s\n", "batch", "new results", "novel calls");
    for (int batch = 1; batch <= 4; ++batch) {
      ResumeBatch result = Unwrap(resumable.FetchMore(10), "fetch more");
      std::printf("  #%-7d | %12zu %12lld\n", batch, result.combinations.size(),
                  static_cast<long long>(result.novel_calls));
      if (!result.may_have_more) break;
    }
    std::printf(
        "  shape expectation: the first batch pays the bulk; later batches\n"
        "  ride the response cache and only pay for deeper fetches.\n");
  }

  Section("time-to-first-combination (simulated latency until emission)");
  StreamingOptions first_options;
  first_options.k = 1;
  first_options.input_bindings = fx.scenario.inputs;
  first_options.max_calls = 100000;
  StreamingEngine first_engine(first_options);
  StreamingResult first = Unwrap(first_engine.Execute(fx.plan), "first");
  ExecutionOptions full_options;
  full_options.k = 10;
  full_options.input_bindings = fx.scenario.inputs;
  full_options.max_calls = 100000;
  ExecutionEngine full_engine(full_options);
  ExecutionResult full = Unwrap(full_engine.Execute(fx.plan), "full");
  std::printf("  first streamed combination after %.0f ms (%d calls);\n"
              "  materialized batch of 10 after %.0f ms (%d calls).\n",
              first.total_latency_ms, first.total_calls, full.elapsed_ms,
              full.total_calls);
}

void BM_MaterializingK5(benchmark::State& state) {
  Fixture fx = MakeMovieFixture();
  ExecutionOptions options;
  options.k = 5;
  options.input_bindings = fx.scenario.inputs;
  options.max_calls = 100000;
  for (auto _ : state) {
    ExecutionEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_MaterializingK5);

void BM_StreamingK5(benchmark::State& state) {
  Fixture fx = MakeMovieFixture();
  StreamingOptions options;
  options.k = 5;
  options.input_bindings = fx.scenario.inputs;
  options.max_calls = 100000;
  for (auto _ : state) {
    StreamingEngine engine(options);
    benchmark::DoNotOptimize(engine.Execute(fx.plan));
  }
}
BENCHMARK(BM_StreamingK5);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
