// Experiment E13 (extension): empirical classification of opaque scoring
// functions (§4.1: "if the function is opaque, then classifying services
// and determining h is more difficult").
//
// We generate services across decay shapes and step depths, profile each
// with a bounded number of probe calls, and report classification accuracy,
// recovered h, and the probe budget spent — plus the effect of feeding the
// corrected statistics into the join-strategy chooser.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

BuiltService MakeService(ScoreDecay decay, int step_h, int rows, uint64_t seed) {
  SimServiceBuilder builder("Probe" + std::to_string(seed));
  builder
      .Schema({AttributeDef::Atomic("Key", ValueType::kInt),
               AttributeDef::Atomic("Relevance", ValueType::kDouble)})
      .Pattern({{"Key", Adornment::kOutput},
                {"Relevance", Adornment::kRanked}})
      .Kind(ServiceKind::kSearch)
      .Seed(seed);
  ServiceStats stats;
  stats.chunk_size = 10;
  stats.latency_ms = 80;
  stats.decay = decay;
  stats.step_h = step_h;
  builder.Stats(stats);
  SplitMix64 rng(seed);
  for (int i = 0; i < rows; ++i) {
    double quality = 1.0 - static_cast<double>(i) / rows;
    builder.AddRow(
        Tuple({Value(static_cast<int64_t>(rng.Uniform(16))), Value(quality)}),
        quality);
  }
  return Unwrap(builder.Build(), "service");
}

void Report() {
  Section("E13: profiling opaque scoring functions (8-probe budget)");
  std::printf("  %-18s | %-12s %6s %8s %8s\n", "ground truth", "classified",
              "h", "R^2", "correct");
  struct Case {
    const char* label;
    ScoreDecay decay;
    int h;
  };
  const Case cases[] = {
      {"linear", ScoreDecay::kLinear, 1},
      {"quadratic", ScoreDecay::kQuadratic, 1},
      {"step h=1", ScoreDecay::kStep, 1},
      {"step h=2", ScoreDecay::kStep, 2},
      {"step h=3", ScoreDecay::kStep, 3},
      {"step h=5", ScoreDecay::kStep, 5},
  };
  int correct = 0, total = 0;
  for (const Case& c : cases) {
    for (uint64_t seed : {11u, 22u, 33u}) {
      BuiltService svc = MakeService(c.decay, c.h, 200, seed);
      ServiceProfile profile =
          Unwrap(ProfileService(svc.interface, {}), "profile");
      bool ok = profile.decay == c.decay &&
                (c.decay != ScoreDecay::kStep || profile.step_h == c.h);
      ++total;
      if (ok) ++correct;
      if (seed == 11u) {
        std::printf("  %-18s | %-12s %6d %8.3f %8s\n", c.label,
                    ScoreDecayToString(profile.decay), profile.step_h,
                    profile.fit_r2, ok ? "yes" : "NO");
      }
    }
  }
  std::printf("\n  accuracy over %d service instances: %.0f%%\n", total,
              100.0 * correct / total);

  Section("probe budget sensitivity (step h=3 service)");
  std::printf("  %-10s %-12s %6s\n", "probes", "classified", "h");
  for (int probes : {2, 3, 4, 6, 10}) {
    BuiltService svc = MakeService(ScoreDecay::kStep, 3, 200, 44);
    ServiceProfile profile =
        Unwrap(ProfileService(svc.interface, {}, probes), "profile");
    std::printf("  %-10d %-12s %6d\n", probes, ScoreDecayToString(profile.decay),
                profile.step_h);
  }
  std::printf("  shape expectation: the step at h=3 only becomes visible\n"
              "  once probing reads past it (probes >= 4-5) — quantifying\n"
              "  the SS4.1 remark that determining h is hard when opaque.\n");
}

void BM_ProfileService(benchmark::State& state) {
  BuiltService svc = MakeService(ScoreDecay::kStep, 2, 200, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileService(svc.interface, {}));
  }
}
BENCHMARK(BM_ProfileService);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  seco::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
