// Experiment E16: real concurrency and the process-wide call cache.
//
// Unlike the other benches, which measure *simulated* time, this one measures
// wall-clock time: the simulated backends are switched into realtime mode
// (`set_realtime_factor`) so every service call actually blocks for a scaled
// fraction of its simulated latency. The thread-pool scheduler then overlaps
// the blocked calls, and the speedup at 1/2/4/8 threads is reported along
// with a bit-identity check against the sequential run (docs/CONCURRENCY.md:
// threads may only change the wall clock, never the results).
//
// The second section repeats a query against a shared ServiceCallCache and
// reports the warm-run hit rate.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace seco {
namespace {

using bench_util::Section;
using bench_util::Unwrap;

// A scaled-down realtime factor keeps the bench quick: a 140 ms simulated
// call blocks for 140 * kRealtimeFactor = 7 ms of real time.
constexpr double kRealtimeFactor = 0.05;

struct Fixture {
  Scenario scenario;
  QueryPlan plan;
};

// The fixture makers take defaulted parameter structs; these wrappers give
// them a uniform nullary signature.
Result<Scenario> MovieScenario() { return MakeMovieScenario(); }
Result<Scenario> ConferenceScenario() { return MakeConferenceScenario(); }

Fixture MakeFixture(Result<Scenario> (*make_scenario)()) {
  Fixture fx;
  fx.scenario = Unwrap(make_scenario(), "scenario");
  OptimizerOptions options;
  options.k = 10;
  QuerySession session(fx.scenario.registry, options);
  BoundQuery bound = Unwrap(session.Prepare(fx.scenario.query_text), "prepare");
  OptimizationResult optimized = Unwrap(session.Optimize(bound), "optimize");
  fx.plan = optimized.plan;
  return fx;
}

void SetRealtimeFactor(Scenario& scenario, double factor) {
  for (auto& [name, backend] : scenario.backends) {
    backend->set_realtime_factor(factor);
  }
}

ExecutionResult RunOnce(const Fixture& fx, int num_threads,
                        ServiceCallCache* cache = nullptr) {
  ExecutionOptions options;
  options.k = 10;
  options.input_bindings = fx.scenario.inputs;
  options.num_threads = num_threads;
  options.cache = cache;
  ExecutionEngine engine(options);
  return Unwrap(engine.Execute(fx.plan), "execute");
}

bool Identical(const ExecutionResult& a, const ExecutionResult& b) {
  if (a.total_calls != b.total_calls) return false;
  if (a.elapsed_ms != b.elapsed_ms) return false;
  if (a.total_latency_ms != b.total_latency_ms) return false;
  if (a.combinations.size() != b.combinations.size()) return false;
  for (size_t i = 0; i < a.combinations.size(); ++i) {
    if (a.combinations[i].combined_score != b.combinations[i].combined_score)
      return false;
    if (a.combinations[i].components.size() !=
        b.combinations[i].components.size())
      return false;
    for (size_t c = 0; c < a.combinations[i].components.size(); ++c) {
      if (!(a.combinations[i].components[c] == b.combinations[i].components[c]))
        return false;
    }
  }
  return true;
}

void ReportSpeedup(const char* title, Result<Scenario> (*make_scenario)()) {
  Section(title);
  Fixture fx = MakeFixture(make_scenario);
  SetRealtimeFactor(fx.scenario, kRealtimeFactor);

  ExecutionResult baseline = RunOnce(fx, 1);  // warms code paths, not data
  std::printf(
      "  plan executes %d calls, %.0f ms simulated latency, k=%zu answers\n",
      baseline.total_calls, baseline.total_latency_ms,
      baseline.combinations.size());

  // Three repeats per configuration, keep the fastest: sleep-based realtime
  // calls make each run noisy on a shared machine, the minimum is the stable
  // statistic. Speedup is against the best *sequential* time.
  const int kThreadCounts[] = {1, 2, 4, 8};
  double best_ms[4];
  bool identical[4];
  for (int i = 0; i < 4; ++i) {
    ExecutionResult best = RunOnce(fx, kThreadCounts[i]);
    for (int rep = 0; rep < 2; ++rep) {
      ExecutionResult result = RunOnce(fx, kThreadCounts[i]);
      if (result.wall_clock_ms < best.wall_clock_ms) {
        best.wall_clock_ms = result.wall_clock_ms;
      }
      if (!Identical(result, best)) {
        std::printf("  DIVERGENT RESULTS at %d threads\n", kThreadCounts[i]);
        return;
      }
    }
    best_ms[i] = best.wall_clock_ms;
    identical[i] = Identical(best, baseline);
  }

  std::printf("  %-8s %14s %9s %10s\n", "threads", "wall-clock ms", "speedup",
              "identical");
  for (int i = 0; i < 4; ++i) {
    std::printf("  %-8d %14.1f %8.2fx %10s\n", kThreadCounts[i], best_ms[i],
                best_ms[0] / best_ms[i], identical[i] ? "yes" : "NO");
  }
  SetRealtimeFactor(fx.scenario, 0.0);
}

void ReportCache() {
  Section("E16c: process-wide call cache, repeated identical query");
  Fixture fx = MakeFixture(MovieScenario);
  ServiceCallCache cache;

  ExecutionResult cold = RunOnce(fx, 2, &cache);
  ExecutionResult warm = RunOnce(fx, 2, &cache);
  double warm_lookups = warm.cache_hits + warm.cache_misses;
  double hit_rate = warm_lookups > 0 ? warm.cache_hits / warm_lookups : 0.0;
  std::printf("  cold run: %d service calls, %d cache hits\n", cold.total_calls,
              cold.cache_hits);
  std::printf("  warm run: %d service calls, %d cache hits, %d misses\n",
              warm.total_calls, warm.cache_hits, warm.cache_misses);
  std::printf("  warm hit rate: %.1f%%  (answers identical: %s)\n",
              100.0 * hit_rate,
              warm.combinations.size() == cold.combinations.size() ? "yes"
                                                                   : "NO");
  CallCacheStats stats = cache.stats();
  std::printf("  cache: %d entries, %lld bytes, %lld evictions\n",
              static_cast<int>(stats.entries),
              static_cast<long long>(stats.bytes),
              static_cast<long long>(stats.evictions));
}

void BM_ExecuteSequential(benchmark::State& state) {
  Fixture fx = MakeFixture(MovieScenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOnce(fx, 1));
  }
}
BENCHMARK(BM_ExecuteSequential);

void BM_ExecuteFourThreads(benchmark::State& state) {
  Fixture fx = MakeFixture(MovieScenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOnce(fx, 4));
  }
}
BENCHMARK(BM_ExecuteFourThreads);

void BM_ExecuteWarmCache(benchmark::State& state) {
  Fixture fx = MakeFixture(MovieScenario);
  ServiceCallCache cache;
  RunOnce(fx, 1, &cache);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOnce(fx, 1, &cache));
  }
}
BENCHMARK(BM_ExecuteWarmCache);

}  // namespace
}  // namespace seco

int main(int argc, char** argv) {
  // The conference plan pipes Weather/Flight/Hotel per distinct binding —
  // the fan-out the scheduler is built for. The Fig. 10 movie plan spends a
  // third of its time inside the parallel join, whose fetch schedule is
  // data-dependent and stays sequential (docs/CONCURRENCY.md), so its
  // speedup is Amdahl-limited — reported as the honest contrast.
  seco::ReportSpeedup("E16a: wall-clock speedup, realtime backends (conference pipe)",
                      seco::ConferenceScenario);
  seco::ReportSpeedup("E16b: wall-clock speedup, realtime backends (Fig. 10 example)",
                      seco::MovieScenario);
  seco::ReportCache();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
